"""The content-addressed object pool shared by every substrate.

One implementation of "bytes filed under their SHA-256" backs the VCS
object store, the artifact cache, and the data-package registry.  The
layout mirrors git's: ``objects/ab/cdef...`` shards by the first two hex
characters, writes are atomic and idempotent (a second write of the same
content is a no-op, which is what makes the pool a *deduplicating*
store), and reads verify that the stored buffer still hashes to the id
it was filed under.

Bit rot has a remediation path rather than a bare exception: a corrupt
object is moved into the sibling ``quarantine/`` directory and the
raised :class:`~repro.common.errors.CorruptObjectError` names the
quarantined file, so ``popper cache verify`` can report it (with its
referrers) and a re-run can repopulate the object.

Crash consistency: an ingest fsyncs the temp file before publishing and
the shard directory after (``durable=False`` opts hot disposable pools
out), and the publish step runs under the pool's optional
:class:`~repro.common.locking.RepoLock` so two *processes* sharing one
cache serialize exactly the way two threads already did.  A crash
mid-ingest leaves only an ``.ingest-*`` orphan temp — never a partial
object — which ``popper doctor`` sweeps.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.common.crash import SimulatedCrash, crashpoint
from repro.common.errors import CorruptObjectError, MissingObjectError, StoreError
from repro.common.hashing import sha256_bytes
from repro.common.fsutil import ensure_dir, fsync_path
from repro.common.locking import RepoLock

__all__ = ["IngestResult", "ContentStore"]

_CHUNK = 1 << 20


@dataclass(frozen=True)
class IngestResult:
    """Outcome of filing one payload into the pool."""

    oid: str
    size: int
    #: True when the object was already present (the write deduped).
    deduped: bool


class ContentStore:
    """A sharded, verifying, deduplicating pool of immutable objects.

    Safe for concurrent writers: every write lands under a unique
    temporary name first and is published with ``os.replace``, so two
    threads (or two sweeps sharing one cache) racing to store the same
    content cannot interleave partial writes.
    """

    def __init__(
        self,
        objects_dir: str | Path,
        quarantine_dir: str | Path | None = None,
        durable: bool = True,
        lock: RepoLock | None = None,
    ) -> None:
        self.objects_dir = Path(objects_dir)
        self.quarantine_dir = (
            Path(quarantine_dir)
            if quarantine_dir is not None
            else self.objects_dir.parent / "quarantine"
        )
        #: fsync objects (and their shard dir) as they are published.
        self.durable = bool(durable)
        #: Optional inter-process lock serializing publishes across
        #: processes sharing this pool (reentrant: safe to hold already).
        self.lock = lock
        ensure_dir(self.objects_dir)

    def _publish_guard(self):
        return self.lock if self.lock is not None else nullcontext()

    # -- paths ----------------------------------------------------------------
    def object_path(self, oid: str) -> Path:
        if len(oid) != 64:
            raise StoreError(f"not a full object id: {oid!r}")
        return self.objects_dir / oid[:2] / oid[2:]

    def quarantine_path(self, oid: str) -> Path:
        return self.quarantine_dir / oid

    # -- writing --------------------------------------------------------------
    def _publish(self, tmp: Path, target: Path) -> None:
        crashpoint("cas.ingest.tmp")
        with self._publish_guard():
            ensure_dir(target.parent)
            os.replace(tmp, target)
            if self.durable:
                fsync_path(target.parent)
        crashpoint("cas.ingest.publish")

    def put_bytes(self, data: bytes) -> IngestResult:
        """File a bytes payload; returns its id.  Idempotent."""
        oid = sha256_bytes(data)
        target = self.object_path(oid)
        if target.exists():
            return IngestResult(oid=oid, size=len(data), deduped=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".ingest-", dir=str(self.objects_dir)
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                if self.durable:
                    handle.flush()
                    os.fsync(handle.fileno())
            self._publish(Path(tmp_name), target)
        except SimulatedCrash:
            # An injected crash leaves the orphan temp a real kill would.
            raise
        except BaseException:
            Path(tmp_name).unlink(missing_ok=True)
            raise
        return IngestResult(oid=oid, size=len(data), deduped=False)

    def put_file(self, path: str | Path) -> IngestResult:
        """File a host file's contents, streamed and hashed in one pass."""
        source = Path(path)
        if not source.is_file():
            raise StoreError(f"cannot ingest non-file: {source}")
        digest = hashlib.sha256()
        size = 0
        fd, tmp_name = tempfile.mkstemp(
            prefix=".ingest-", dir=str(self.objects_dir)
        )
        try:
            with os.fdopen(fd, "wb") as out, source.open("rb") as handle:
                while True:
                    chunk = handle.read(_CHUNK)
                    if not chunk:
                        break
                    digest.update(chunk)
                    size += len(chunk)
                    out.write(chunk)
                if self.durable:
                    out.flush()
                    os.fsync(out.fileno())
            oid = digest.hexdigest()
            target = self.object_path(oid)
            if target.exists():
                Path(tmp_name).unlink(missing_ok=True)
                return IngestResult(oid=oid, size=size, deduped=True)
            self._publish(Path(tmp_name), target)
        except SimulatedCrash:
            raise
        except BaseException:
            Path(tmp_name).unlink(missing_ok=True)
            raise
        return IngestResult(oid=oid, size=size, deduped=False)

    # -- reading --------------------------------------------------------------
    def get_bytes(self, oid: str, verify: bool = True) -> bytes:
        """Load an object, integrity-checked (quarantines on mismatch)."""
        path = self.object_path(oid)
        if not path.exists():
            raise MissingObjectError(oid)
        buffer = path.read_bytes()
        if verify and sha256_bytes(buffer) != oid:
            quarantined = self.quarantine(oid)
            raise CorruptObjectError(oid, str(quarantined) if quarantined else None)
        return buffer

    def contains(self, oid: str) -> bool:
        try:
            return self.object_path(oid).exists()
        except StoreError:
            return False

    def __contains__(self, oid: str) -> bool:
        return self.contains(oid)

    def size_of(self, oid: str) -> int:
        path = self.object_path(oid)
        if not path.exists():
            raise MissingObjectError(oid)
        return path.stat().st_size

    def ids(self) -> Iterator[str]:
        """All stored object ids (sorted, for determinism)."""
        if not self.objects_dir.exists():
            return
        for shard in sorted(self.objects_dir.iterdir()):
            if not shard.is_dir() or len(shard.name) != 2:
                continue
            for item in sorted(shard.iterdir()):
                if len(shard.name + item.name) == 64:
                    yield shard.name + item.name

    # -- materialization ------------------------------------------------------
    def materialize(
        self,
        oid: str,
        dest: str | Path,
        link: bool = False,
        verify: bool = True,
    ) -> int:
        """Recreate an object's content at *dest*; returns bytes written.

        ``link=True`` publishes a hardlink to the stored object instead
        of copying (falling back to a copy when the filesystem refuses):
        cheap, but only safe for read-only consumers — a consumer that
        truncates the file in place would corrupt the pool.  Either way
        the destination is replaced atomically, so a half-materialized
        artifact is never observable.
        """
        data = self.get_bytes(oid, verify=verify) if verify else None
        path = self.object_path(oid)
        if not path.exists():
            raise MissingObjectError(oid)
        dest = Path(dest)
        ensure_dir(dest.parent)
        fd, tmp_name = tempfile.mkstemp(prefix=".mat-", dir=str(dest.parent))
        tmp = Path(tmp_name)
        try:
            if link:
                os.close(fd)
                tmp.unlink()
                try:
                    os.link(path, tmp)
                except OSError:
                    shutil.copyfile(path, tmp)
            elif data is not None:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
            else:
                os.close(fd)
                shutil.copyfile(path, tmp)
            os.replace(tmp, dest)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return path.stat().st_size

    # -- integrity ------------------------------------------------------------
    def quarantine(self, oid: str) -> Path | None:
        """Move a (presumably corrupt) object out of the pool."""
        path = self.object_path(oid)
        if not path.exists():
            return None
        target = self.quarantine_path(oid)
        ensure_dir(target.parent)
        os.replace(path, target)
        return target

    def quarantined(self) -> list[str]:
        """Object ids currently sitting in quarantine."""
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(p.name for p in self.quarantine_dir.iterdir() if p.is_file())

    def verify_all(self) -> tuple[int, list[str]]:
        """Re-hash every object; returns ``(healthy, quarantined-ids)``.

        Corrupt objects are moved to quarantine as they are found, so a
        single fsck pass both detects and contains the damage.
        """
        healthy = 0
        corrupt: list[str] = []
        for oid in list(self.ids()):
            try:
                self.get_bytes(oid)
            except CorruptObjectError:
                corrupt.append(oid)
            except MissingObjectError:  # pragma: no cover - races only
                corrupt.append(oid)
            else:
                healthy += 1
        return healthy, corrupt

    def delete(self, oid: str) -> bool:
        """Remove an object (gc); True when something was deleted."""
        path = self.object_path(oid)
        if not path.exists():
            return False
        path.unlink()
        return True

    def stats(self) -> dict:
        """Object count and total physical bytes in the pool."""
        count = 0
        total = 0
        for oid in self.ids():
            count += 1
            total += self.object_path(oid).stat().st_size
        return {
            "objects": count,
            "bytes": total,
            "quarantined": len(self.quarantined()),
        }
