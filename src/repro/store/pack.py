"""Packfiles: many small CAS objects folded into one indexed file.

The loose pool prices every object at one inode plus (when durable) one
fsync — ``BENCH_durability.json`` puts that at ~0.7 ms per small object,
which is the wrong cost model once ``popper serve`` and ``popper fuzz``
start writing millions of results.  A *pack* is the git answer: an
immutable, checksummed container holding whole object payloads
(optionally zlib-compressed, optionally delta-encoded against a similar
blob in the same pack) next to a JSON index mapping each oid to its
offset.  One pack = one publish = one fsync, however many objects it
folds.

Layout (all integers big-endian)::

    pack-<id>.pack           pack-<id>.idx
    ------------------       --------------------------------------
    b"PPCK"                  {"version": 1,
    u32 version (=1)          "pack": "pack-<id>.pack",
    u32 object count          "checksum": "<sha256 of pack body>",
    per object:               "objects": {oid: [offset, length,
      32B raw oid                           flags, base|null, size]}}
      u8  flags
      [32B base oid]
      u64 payload length
      payload bytes
    32B sha256 trailer

``<id>`` is derived from the sorted object ids, so packing the same set
twice produces the same file — repack is idempotent.  Flags: bit 0 =
payload is zlib-compressed, bit 1 = payload is an *affix delta*
(``u64 prefix, u64 suffix, middle bytes``) against ``base``: the object
is ``base[:prefix] + middle + base[len(base)-suffix:]``.  Affix deltas
are chosen greedily among size-neighbours — experiment outputs are
typically near-identical CSV/JSON blobs differing in a few cells, where
shared prefix+suffix captures most of the redundancy at ~zero encode
cost.

Crash safety mirrors the rest of the store: the pack body lands under a
unique temp name, is fsynced, renamed into place
(``pack.write.tmp`` / ``pack.publish`` crashpoints), and only then is
the index written (atomic, durable).  A crash leaves either an orphan
temp (doctor sweeps it), a pack without an index (doctor rebuilds the
index from the self-describing pack), or a complete pair.  Reads verify
each materialized object against its oid; a failed check quarantines
the *whole pack* — coarse, but a pack is one file and one re-run heals
the pool.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

from repro.common.crash import SimulatedCrash, crashpoint
from repro.common.errors import CorruptObjectError, StoreError
from repro.common.fsutil import atomic_write, ensure_dir, fsync_path
from repro.common.hashing import sha256_bytes

__all__ = [
    "PackError",
    "PACK_DIR",
    "PackedObject",
    "PackReader",
    "write_pack",
    "rebuild_index",
]

#: Directory (inside a pool's ``objects/``) holding packs.  Loose-shard
#: iteration skips it: shard directories are exactly two hex chars.
PACK_DIR = "pack"

_MAGIC = b"PPCK"
_VERSION = 1
_FLAG_ZLIB = 1
_FLAG_DELTA = 2

#: Delta policy knobs: how many size-neighbours to try as a base, the
#: longest base chain a new delta may extend, and the minimum saving
#: (bytes of shared affix) that justifies a delta at all.
_DELTA_WINDOW = 8
_DELTA_MAX_DEPTH = 8
_DELTA_MIN_AFFIX = 32

_TMP_PREFIX = ".pack-tmp-"


class PackError(StoreError):
    """A malformed, truncated or mis-indexed packfile."""


@dataclass(frozen=True)
class PackedObject:
    """One index entry: where an object lives inside its pack."""

    oid: str
    offset: int
    length: int
    flags: int
    base: str | None
    size: int

    def to_json(self) -> list:
        return [self.offset, self.length, self.flags, self.base, self.size]


def _affix_split(base: bytes, data: bytes) -> tuple[int, int, bytes]:
    """Longest shared prefix/suffix of *data* against *base*."""
    limit = min(len(base), len(data))
    prefix = 0
    while prefix < limit and base[prefix] == data[prefix]:
        prefix += 1
    suffix = 0
    rest = limit - prefix
    while (
        suffix < rest
        and base[len(base) - 1 - suffix] == data[len(data) - 1 - suffix]
    ):
        suffix += 1
    return prefix, suffix, data[prefix : len(data) - suffix]


def _encode_payload(
    data: bytes, candidates: list[tuple[str, bytes, int]]
) -> tuple[int, str | None, bytes]:
    """Best (flags, base, payload) encoding for *data*.

    *candidates* are ``(oid, raw bytes, chain depth)`` of potential
    delta bases.  The cheapest of {raw, zlib, delta+zlib} wins; ties
    break toward the simpler encoding so unpacking stays cheap.
    """
    plain = zlib.compress(data, 6)
    flags, base, payload = 0, None, data
    if len(plain) < len(payload):
        flags, payload = _FLAG_ZLIB, plain
    best_saving = _DELTA_MIN_AFFIX - 1
    for oid, raw, depth in candidates:
        if depth >= _DELTA_MAX_DEPTH or not raw:
            continue
        prefix, suffix, middle = _affix_split(raw, data)
        if prefix + suffix <= best_saving:
            continue
        encoded = zlib.compress(
            struct.pack(">QQ", prefix, suffix) + middle, 6
        )
        if len(encoded) < len(payload):
            best_saving = prefix + suffix
            flags, base, payload = _FLAG_ZLIB | _FLAG_DELTA, oid, encoded
    return flags, base, payload


def pack_name(oids: list[str]) -> str:
    """Deterministic pack basename for a set of object ids."""
    digest = hashlib.sha256("\n".join(sorted(oids)).encode("ascii"))
    return f"pack-{digest.hexdigest()[:16]}"


def write_pack(
    objects: Mapping[str, bytes],
    pack_dir: str | Path,
    delta: bool = True,
    durable: bool = True,
) -> tuple[Path, Path]:
    """Write one pack (+ index) holding *objects*; returns their paths.

    Idempotent: the pack name derives from the object ids, so packing
    the same set again just returns the existing pair.  Entries land in
    sorted-oid order; delta bases are picked among size-neighbours, so
    the output is deterministic for a given object set.
    """
    if not objects:
        raise PackError("refusing to write an empty pack")
    pack_dir = ensure_dir(pack_dir)
    name = pack_name(list(objects))
    pack_path = pack_dir / f"{name}.pack"
    idx_path = pack_dir / f"{name}.idx"
    if pack_path.is_file() and idx_path.is_file():
        return pack_path, idx_path

    # Delta selection walks size-neighbours (similar experiment outputs
    # have similar lengths); the file itself is laid out by oid.
    by_size = sorted(objects.items(), key=lambda kv: (len(kv[1]), kv[0]))
    chosen: dict[str, tuple[int, str | None, bytes]] = {}
    depth: dict[str, int] = {}
    window: list[tuple[str, bytes, int]] = []
    for oid, data in by_size:
        candidates = window[-_DELTA_WINDOW:] if delta else []
        flags, base, payload = _encode_payload(data, candidates)
        chosen[oid] = (flags, base, payload)
        depth[oid] = depth.get(base, 0) + 1 if base else 0
        window.append((oid, data, depth[oid]))

    body = bytearray()
    body += _MAGIC
    body += struct.pack(">II", _VERSION, len(objects))
    entries: dict[str, PackedObject] = {}
    for oid in sorted(objects):
        flags, base, payload = chosen[oid]
        body += bytes.fromhex(oid)
        body += struct.pack(">B", flags)
        if base is not None:
            body += bytes.fromhex(base)
        body += struct.pack(">Q", len(payload))
        offset = len(body)
        body += payload
        entries[oid] = PackedObject(
            oid=oid,
            offset=offset,
            length=len(payload),
            flags=flags,
            base=base,
            size=len(objects[oid]),
        )
    checksum = hashlib.sha256(bytes(body)).hexdigest()
    body += bytes.fromhex(checksum)

    tmp = pack_dir / f"{_TMP_PREFIX}{name}"
    try:
        with tmp.open("wb") as handle:
            handle.write(bytes(body))
            if durable:
                handle.flush()
                import os

                os.fsync(handle.fileno())
        crashpoint("pack.write.tmp")
        tmp.replace(pack_path)
        if durable:
            fsync_path(pack_dir)
        crashpoint("pack.publish")
    except SimulatedCrash:
        # Leave the debris a real kill would: orphan temp, or a pack
        # without its index — both in doctor's repair table.
        raise
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    index_doc = {
        "version": _VERSION,
        "pack": pack_path.name,
        "checksum": checksum,
        "objects": {oid: entry.to_json() for oid, entry in entries.items()},
    }
    atomic_write(
        idx_path,
        json.dumps(index_doc, sort_keys=True).encode("utf-8"),
        durable=durable,
    )
    return pack_path, idx_path


def _scan_pack(pack_path: Path) -> tuple[str, dict[str, PackedObject]]:
    """Parse a pack body sequentially; returns ``(checksum, entries)``.

    Verifies the trailer checksum — a truncated or bit-rotted pack
    raises :class:`PackError` before any entry is trusted.
    """
    raw = Path(pack_path).read_bytes()
    if len(raw) < len(_MAGIC) + 8 + 32 or raw[: len(_MAGIC)] != _MAGIC:
        raise PackError(f"{pack_path}: not a packfile")
    body, trailer = raw[:-32], raw[-32:]
    if hashlib.sha256(body).digest() != trailer:
        raise PackError(f"{pack_path}: checksum mismatch (truncated?)")
    version, count = struct.unpack_from(">II", body, len(_MAGIC))
    if version != _VERSION:
        raise PackError(f"{pack_path}: unknown pack version {version}")
    entries: dict[str, PackedObject] = {}
    pos = len(_MAGIC) + 8
    for _ in range(count):
        try:
            oid = body[pos : pos + 32].hex()
            pos += 32
            (flags,) = struct.unpack_from(">B", body, pos)
            pos += 1
            base = None
            if flags & _FLAG_DELTA:
                base = body[pos : pos + 32].hex()
                pos += 32
            (length,) = struct.unpack_from(">Q", body, pos)
            pos += 8
            offset = pos
            pos += length
            if pos > len(body):
                raise PackError(f"{pack_path}: entry overruns the body")
        except struct.error as exc:
            raise PackError(f"{pack_path}: malformed entry: {exc}") from exc
        entries[oid] = PackedObject(
            oid=oid, offset=offset, length=length, flags=flags, base=base, size=-1
        )
    if pos != len(body):
        raise PackError(f"{pack_path}: trailing garbage after last entry")
    return hashlib.sha256(body).hexdigest(), entries


def rebuild_index(pack_path: str | Path, durable: bool = True) -> Path:
    """Regenerate a pack's ``.idx`` from the pack itself.

    The doctor's repair for a crash between pack publish and index
    write.  Logical sizes require materializing each object, so the
    whole pack is resolved (and thereby integrity-checked) in memory.
    """
    pack_path = Path(pack_path)
    checksum, entries = _scan_pack(pack_path)
    raw = pack_path.read_bytes()
    resolved: dict[str, bytes] = {}

    def resolve(oid: str, seen: frozenset[str] = frozenset()) -> bytes:
        if oid in resolved:
            return resolved[oid]
        if oid in seen or oid not in entries:
            raise PackError(f"{pack_path}: unresolvable delta base {oid[:12]}")
        entry = entries[oid]
        payload = raw[entry.offset : entry.offset + entry.length]
        if entry.flags & _FLAG_ZLIB:
            payload = zlib.decompress(payload)
        if entry.flags & _FLAG_DELTA:
            base = resolve(entry.base, seen | {oid})
            prefix, suffix = struct.unpack_from(">QQ", payload, 0)
            middle = payload[16:]
            payload = base[:prefix] + middle + base[len(base) - suffix :]
        if sha256_bytes(payload) != oid:
            raise PackError(f"{pack_path}: object {oid[:12]} fails its hash")
        resolved[oid] = payload
        return payload

    for oid in entries:
        resolve(oid)
    index_doc = {
        "version": _VERSION,
        "pack": pack_path.name,
        "checksum": checksum,
        "objects": {
            oid: PackedObject(
                oid=oid,
                offset=entry.offset,
                length=entry.length,
                flags=entry.flags,
                base=entry.base,
                size=len(resolved[oid]),
            ).to_json()
            for oid, entry in entries.items()
        },
    }
    idx_path = pack_path.with_suffix(".idx")
    atomic_write(
        idx_path,
        json.dumps(index_doc, sort_keys=True).encode("utf-8"),
        durable=durable,
    )
    return idx_path


class PackReader:
    """Random access into one published pack via its JSON index."""

    def __init__(self, idx_path: str | Path) -> None:
        self.idx_path = Path(idx_path)
        try:
            doc = json.loads(self.idx_path.read_text(encoding="utf-8"))
            if not isinstance(doc, dict) or "objects" not in doc:
                raise ValueError("not a pack index")
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            raise PackError(f"unreadable pack index {self.idx_path}: {exc}") from exc
        self.pack_path = self.idx_path.parent / str(
            doc.get("pack", self.idx_path.with_suffix(".pack").name)
        )
        self.checksum = str(doc.get("checksum", ""))
        self.entries: dict[str, PackedObject] = {}
        for oid, row in doc["objects"].items():
            try:
                offset, length, flags, base, size = row
            except (TypeError, ValueError) as exc:
                raise PackError(
                    f"{self.idx_path}: bad entry for {oid[:12]}"
                ) from exc
            self.entries[str(oid)] = PackedObject(
                oid=str(oid),
                offset=int(offset),
                length=int(length),
                flags=int(flags),
                base=str(base) if base else None,
                size=int(size),
            )

    def __contains__(self, oid: str) -> bool:
        return oid in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def ids(self) -> Iterator[str]:
        yield from sorted(self.entries)

    def size_of(self, oid: str) -> int:
        return self.entries[oid].size

    @property
    def packed_bytes(self) -> int:
        try:
            return self.pack_path.stat().st_size
        except OSError:
            return 0

    def delta_count(self) -> int:
        return sum(
            1 for e in self.entries.values() if e.flags & _FLAG_DELTA
        )

    def get_bytes(self, oid: str, verify: bool = True) -> bytes:
        """Materialize one object (resolving its delta chain)."""
        data = self._resolve(oid, frozenset())
        if verify and sha256_bytes(data) != oid:
            raise CorruptObjectError(oid, str(self.pack_path))
        return data

    def _resolve(self, oid: str, seen: frozenset[str]) -> bytes:
        entry = self.entries.get(oid)
        if entry is None or oid in seen:
            raise PackError(
                f"{self.pack_path.name}: unresolvable object {oid[:12]}"
            )
        try:
            with self.pack_path.open("rb") as handle:
                handle.seek(entry.offset)
                payload = handle.read(entry.length)
        except OSError as exc:
            raise PackError(f"cannot read {self.pack_path}: {exc}") from exc
        if len(payload) != entry.length:
            raise PackError(f"{self.pack_path.name}: short read at {oid[:12]}")
        if entry.flags & _FLAG_ZLIB:
            try:
                payload = zlib.decompress(payload)
            except zlib.error as exc:
                raise PackError(
                    f"{self.pack_path.name}: bad zlib stream at {oid[:12]}"
                ) from exc
        if entry.flags & _FLAG_DELTA:
            base = self._resolve(entry.base, seen | {oid})
            if len(payload) < 16:
                raise PackError(
                    f"{self.pack_path.name}: short delta at {oid[:12]}"
                )
            prefix, suffix = struct.unpack_from(">QQ", payload, 0)
            if prefix + suffix > len(base):
                raise PackError(
                    f"{self.pack_path.name}: delta affixes overrun the base"
                )
            payload = base[:prefix] + payload[16:] + base[len(base) - suffix :]
        return payload

    def verify(self) -> list[str]:
        """Re-hash every object; returns the ids that fail.

        Also fails everything when the pack body itself no longer
        matches the recorded checksum (truncation, bit rot).
        """
        try:
            checksum, _ = _scan_pack(self.pack_path)
        except PackError:
            return sorted(self.entries)
        if self.checksum and checksum != self.checksum:
            return sorted(self.entries)
        bad: list[str] = []
        for oid in self.entries:
            try:
                self.get_bytes(oid)
            except (PackError, CorruptObjectError):
                bad.append(oid)
        return sorted(bad)
