"""The artifact store: a content pool plus a memoization index.

This is the layer that turns "this task already ran with these inputs"
into "materialize its outputs instead of executing it".  One store lives
under a repository's ``.pvcs/cache/`` and is shared by every substrate:

* the engine consults it before running a cache-aware task (see
  :mod:`repro.engine.cache`) — a hit materializes the recorded outputs
  (hardlink or copy) and the task completes as CACHED;
* the experiment pipeline and ``popper run --all`` sweeps store their
  stage outputs (``results.csv``, figures, baseline profiles) here;
* ``popper cache stats|verify|gc`` administers it.

GC policy: records group by *task id* (the logical task, across
fingerprints); ``gc(keep_last=N)`` keeps the N most recent records per
task and then sweeps objects no surviving record references.  The most
recent record per task is therefore never collected — which is exactly
the artifact set the latest run-state refers to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.common.errors import StoreError
from repro.common.locking import ScopedLock
from repro.store.cas import ContentStore
from repro.store.index import ArtifactIndex, ArtifactOutput, ArtifactRecord

__all__ = ["StoreOutcome", "GcReport", "VerifyReport", "ArtifactStore"]


@dataclass(frozen=True)
class StoreOutcome:
    """What one ``store()`` call did: the record plus byte accounting."""

    record: ArtifactRecord
    bytes_stored: int
    bytes_deduped: int


@dataclass(frozen=True)
class GcReport:
    """What one gc pass removed."""

    records_removed: int
    objects_removed: int
    bytes_reclaimed: int


@dataclass
class VerifyReport:
    """Outcome of an fsck pass over the artifact store."""

    healthy_objects: int = 0
    #: Quarantined object id -> referrer descriptions (task ids/keys).
    corrupt: dict[str, list[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.corrupt


class ArtifactStore:
    """Content pool + artifact index under one root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        # One inter-process lock for the whole store: ``store()`` holds
        # it across ingest + index publish (so a concurrent gc can never
        # sweep objects between those two steps) and the pool re-enters
        # it per object publish.  Lock file: <root>/locks/store.lock.
        self.lock = ScopedLock(self.root, "store")
        self.cas = ContentStore(
            self.root / "objects",
            quarantine_dir=self.root / "quarantine",
            lock=self.lock,
        )
        self.index = ArtifactIndex(self.root / "index")

    # -- memoization ------------------------------------------------------------
    def lookup(self, key: str) -> ArtifactRecord | None:
        """The record for *key*, if every referenced object is present."""
        record = self.index.lookup(key)
        if record is None:
            return None
        if not all(self.cas.contains(output.oid) for output in record.outputs):
            # A swept or quarantined object makes the record useless;
            # treat as a miss so the task re-runs and re-stores.
            return None
        return record

    def store(
        self,
        key: str,
        task: str,
        outputs: Mapping[str, Path],
        root: Path,
        meta: dict | None = None,
    ) -> StoreOutcome:
        """Ingest a finished task's output files and index them.

        *outputs* maps logical names to produced files; paths are
        recorded relative to *root* so materialization can land them in a
        different checkout of the same layout.
        """
        recorded: list[ArtifactOutput] = []
        stored = 0
        deduped = 0
        with self.lock:
            for name, path in sorted(outputs.items()):
                path = Path(path)
                try:
                    rel = path.resolve().relative_to(Path(root).resolve()).as_posix()
                except ValueError as exc:
                    raise StoreError(
                        f"output {name!r} ({path}) is outside the task root {root}"
                    ) from exc
                ingest = self.cas.put_file(path)
                recorded.append(
                    ArtifactOutput(
                        name=name, path=rel, oid=ingest.oid, bytes=ingest.size
                    )
                )
                if ingest.deduped:
                    deduped += ingest.size
                else:
                    stored += ingest.size
            record = self.index.record(key, task, tuple(recorded), meta=meta)
        return StoreOutcome(
            record=record, bytes_stored=stored, bytes_deduped=deduped
        )

    def materialize(
        self, record: ArtifactRecord, root: Path, link: bool = False
    ) -> int:
        """Recreate a record's outputs under *root*; returns bytes restored.

        Raises :class:`~repro.common.errors.StoreError` when an object is
        missing or corrupt — callers treat that as a cache miss.
        """
        restored = 0
        for output in record.outputs:
            restored += self.cas.materialize(
                output.oid, Path(root) / output.path, link=link
            )
        return restored

    # -- administration ----------------------------------------------------------
    def verify(self) -> VerifyReport:
        """fsck the pool; quarantine corrupt objects, report referrers."""
        healthy, corrupt = self.cas.verify_all()
        report = VerifyReport(healthy_objects=healthy)
        if not corrupt:
            return report
        referrers: dict[str, list[str]] = {oid: [] for oid in corrupt}
        for record in self.index.entries():
            for output in record.outputs:
                if output.oid in referrers:
                    referrers[output.oid].append(
                        f"{record.task} ({record.key[:12]}, {output.path})"
                    )
        report.corrupt = referrers
        return report

    def gc(self, keep_last: int = 1) -> GcReport:
        """Drop all but the newest *keep_last* records per task; sweep.

        Objects still referenced by any surviving record are never
        collected, so the artifacts of the latest run per task survive
        every gc.
        """
        if keep_last < 1:
            raise StoreError(f"gc keep_last must be >= 1, got {keep_last}")
        # gc is the one operation that can *lose* a concurrent writer's
        # work (sweeping objects between its ingest and its index
        # publish), so it excludes publishes for its whole span.
        with self.lock:
            return self._gc_locked(keep_last)

    def _gc_locked(self, keep_last: int) -> GcReport:
        by_task: dict[str, list[ArtifactRecord]] = {}
        for record in self.index.entries():  # oldest first
            by_task.setdefault(record.task, []).append(record)
        keep: list[ArtifactRecord] = []
        drop: list[ArtifactRecord] = []
        for records in by_task.values():
            keep.extend(records[-keep_last:])
            drop.extend(records[:-keep_last])
        referenced = {oid for record in keep for oid in record.oids()}
        removed_records = 0
        for record in drop:
            if self.index.remove(record.key):
                removed_records += 1
        removed_objects = 0
        reclaimed = 0
        for oid in list(self.cas.loose_ids()):
            if oid in referenced:
                continue
            size = self.cas.object_path(oid).stat().st_size
            if self.cas.delete(oid):
                removed_objects += 1
                reclaimed += size
        # Packs are immutable, so collection is all-or-nothing per pack:
        # a pack nothing references any more is dropped whole; one with
        # a single live object survives intact (the next repack folds
        # the survivors into a fresh pack and the garbage goes then).
        for reader in list(self.cas.pack_readers(refresh=True)):
            packed = list(reader.ids())
            if any(oid in referenced for oid in packed):
                continue
            removed_objects += sum(
                1
                for oid in packed
                if not self.cas.object_path(oid).exists()
            )
            reclaimed += self.cas.drop_pack(reader)
        return GcReport(
            records_removed=removed_records,
            objects_removed=removed_objects,
            bytes_reclaimed=reclaimed,
        )

    def repack(self, min_objects: int = 2, delta: bool = True):
        """Fold the pool's loose tail (and old packs) into one pack.

        Holds the store lock for the whole fold — a repack moves every
        object, so it excludes concurrent publishes the way gc does.
        """
        with self.lock:
            return self.cas.repack(min_objects=min_objects, delta=delta)

    def stats(self) -> dict:
        """Pool + index accounting for ``popper cache stats``.

        ``bytes_deduped`` measures logical-over-physical saving from
        *both* content dedup and pack delta compression: ``logical``
        counts every recorded output at full size, ``bytes`` is what
        the disk actually holds (loose files + pack files).
        """
        pool = self.cas.stats()
        records = self.index.entries()
        logical = sum(record.total_bytes for record in records)
        physical = pool["bytes"]
        return {
            **pool,
            "records": len(records),
            "tasks": len({record.task for record in records}),
            "logical_bytes": logical,
            "bytes_deduped": max(0, logical - physical),
            "dedup_ratio": (logical / physical) if physical else 1.0,
        }
