"""Metric collection: labeled samples feeding time series.

The paper's convention captures runtime performance metrics during every
experiment run ("many of the graphs included in the article can come
directly from running analysis scripts on top of this data").  A
:class:`MetricStore` plays the *collection* role of a Nagios/CollectD
deployment — an in-process, append-only sample store, not a network
monitoring daemon: experiments emit samples tagged with labels; analysis
pulls them out as :class:`~repro.common.tables.MetricsTable` rows (via
:meth:`MetricStore.to_table`) or as per-series :class:`SeriesSummary`
statistics (via :meth:`MetricStore.summary` / :meth:`MetricStore.summaries`).

Tracing spans (:mod:`repro.monitor.tracing`) feed the same store: every
closed span records a ``popper.span_seconds`` sample, so stage timings
are ordinary series to ``stats`` and ``figures``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.common.errors import MonitorError
from repro.common.tables import MetricsTable

__all__ = ["Sample", "SeriesSummary", "MetricStore"]


@dataclass(frozen=True)
class Sample:
    """One observation of one metric."""

    metric: str
    value: float
    timestamp: float
    labels: tuple[tuple[str, str], ...] = ()

    def labels_dict(self) -> dict[str, str]:
        return dict(self.labels)


@dataclass(frozen=True)
class SeriesSummary:
    """Descriptive statistics for one (metric, labels) series."""

    metric: str
    labels: tuple[tuple[str, str], ...]
    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    @property
    def cov(self) -> float:
        """Coefficient of variation (std / mean)."""
        return self.std / self.mean if self.mean else float("inf")


def _freeze_labels(labels: dict[str, Any] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricStore:
    """An append-only store of metric samples.

    Recording is lock-protected: one store collects samples from every
    task the execution engine runs, including tasks on worker threads
    (parallel pipeline stages, concurrent experiments), and the logical
    clock must stay monotonic under that concurrency.
    """

    def __init__(self) -> None:
        self._samples: list[Sample] = []
        self._clock = 0.0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._samples)

    # -- recording ---------------------------------------------------------------
    def record(
        self,
        metric: str,
        value: float,
        labels: dict[str, Any] | None = None,
        timestamp: float | None = None,
    ) -> Sample:
        """Append one sample (timestamps are a logical clock if omitted)."""
        if not metric:
            raise MonitorError("metric name required")
        value = float(value)
        if not np.isfinite(value):
            raise MonitorError(f"non-finite sample for {metric!r}: {value}")
        frozen = _freeze_labels(labels)
        with self._lock:
            if timestamp is None:
                self._clock += 1.0
                timestamp = self._clock
            else:
                self._clock = max(self._clock, float(timestamp))
            sample = Sample(
                metric=metric,
                value=value,
                timestamp=float(timestamp),
                labels=frozen,
            )
            self._samples.append(sample)
        return sample

    def timer(self, metric: str, labels: dict[str, Any] | None = None):
        """Context manager measuring wall time into *metric*."""
        store = self

        class _Timer:
            def __enter__(self):
                import time

                self._start = time.perf_counter()
                return self

            def __exit__(self, *exc):
                import time

                store.record(
                    metric, time.perf_counter() - self._start, labels=labels
                )

        return _Timer()

    # -- querying ------------------------------------------------------------------
    def metrics(self) -> list[str]:
        """Distinct metric names, sorted."""
        return sorted({s.metric for s in self._samples})

    def values(
        self, metric: str, labels: dict[str, Any] | None = None
    ) -> np.ndarray:
        """Sample values for a metric (filtered by label subset), in order."""
        want = dict(_freeze_labels(labels))
        out = [
            s.value
            for s in self._samples
            if s.metric == metric
            and all(s.labels_dict().get(k) == v for k, v in want.items())
        ]
        return np.asarray(out, dtype=np.float64)

    def summary(
        self, metric: str, labels: dict[str, Any] | None = None
    ) -> SeriesSummary:
        """Descriptive statistics for one series.

        *labels* matches by subset (like :meth:`values`): samples whose
        labels contain every given pair are included.  Use
        :meth:`summaries` for exact per-series grouping.
        """
        values = self.values(metric, labels)
        if values.size == 0:
            raise MonitorError(f"no samples for metric {metric!r} with {labels}")
        return SeriesSummary(
            metric=metric,
            labels=_freeze_labels(labels),
            count=int(values.size),
            mean=float(np.mean(values)),
            std=float(np.std(values, ddof=1)) if values.size > 1 else 0.0,
            minimum=float(np.min(values)),
            maximum=float(np.max(values)),
            p50=float(np.percentile(values, 50)),
            p95=float(np.percentile(values, 95)),
        )

    def series(
        self, metric: str | None = None
    ) -> dict[tuple[str, tuple[tuple[str, str], ...]], list[float]]:
        """Raw sample values per distinct ``(metric, labels)`` series.

        The exact-grouping companion to :meth:`summaries` that keeps the
        samples themselves: degradation detection needs whole series,
        not their summaries, so this is what profile harvesting
        (:mod:`repro.check.profiles`) reads.  Keys are sorted (metric
        name, then label tuple); values preserve recording order.
        """
        groups: dict[tuple[str, tuple[tuple[str, str], ...]], list[float]] = {}
        for sample in self._samples:
            if metric is not None and sample.metric != metric:
                continue
            groups.setdefault((sample.metric, sample.labels), []).append(sample.value)
        return dict(sorted(groups.items()))

    def summaries(self, metric: str | None = None) -> list[SeriesSummary]:
        """One :class:`SeriesSummary` per distinct ``(metric, labels)`` series.

        Ordered by metric name then label tuple; restrict to one metric
        name by passing *metric*.  Unlike :meth:`summary` (which matches
        any series containing the given labels), grouping here is exact:
        each sample contributes to exactly one summary.
        """
        groups: dict[tuple[str, tuple[tuple[str, str], ...]], list[float]] = {}
        for sample in self._samples:
            if metric is not None and sample.metric != metric:
                continue
            groups.setdefault((sample.metric, sample.labels), []).append(sample.value)
        out: list[SeriesSummary] = []
        for (name, labels), raw in sorted(groups.items()):
            values = np.asarray(raw, dtype=np.float64)
            out.append(
                SeriesSummary(
                    metric=name,
                    labels=labels,
                    count=int(values.size),
                    mean=float(np.mean(values)),
                    std=float(np.std(values, ddof=1)) if values.size > 1 else 0.0,
                    minimum=float(np.min(values)),
                    maximum=float(np.max(values)),
                    p50=float(np.percentile(values, 50)),
                    p95=float(np.percentile(values, 95)),
                )
            )
        return out

    def to_table(self, metric: str | None = None) -> MetricsTable:
        """Export samples as a results table (one row per sample).

        Label keys become columns; this is the bridge from monitoring to
        ``results.csv`` and hence to Aver validation.
        """
        samples = [
            s for s in self._samples if metric is None or s.metric == metric
        ]
        if not samples:
            raise MonitorError(f"no samples to export for {metric!r}")
        label_keys: list[str] = []
        for sample in samples:
            for key, _ in sample.labels:
                if key not in label_keys:
                    label_keys.append(key)
        table = MetricsTable(["metric", "timestamp", *label_keys, "value"])
        for sample in samples:
            row: dict[str, Any] = {
                "metric": sample.metric,
                "timestamp": sample.timestamp,
                "value": sample.value,
            }
            row.update({k: sample.labels_dict().get(k) for k in label_keys})
            table.append(row)
        return table

    def merge(self, other: "MetricStore") -> None:
        """Fold another store's samples into this one (multi-node collection)."""
        with other._lock:
            samples = list(other._samples)
        with self._lock:
            self._samples.extend(samples)
            if samples:
                self._clock = max(
                    self._clock, max(s.timestamp for s in samples)
                )
