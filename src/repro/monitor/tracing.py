"""Hierarchical tracing spans over experiment runs.

The paper's convention asks that every run leave behind enough runtime
provenance that "many of the graphs included in the article can come
directly from running analysis scripts on top of this data".  A
:class:`Tracer` produces that provenance as a tree of :class:`Span`
objects: the pipeline opens a root span (``pipeline/run/<experiment>``),
each stage opens a child, and instrumented substrates (runners,
playbooks, the CI server) nest further spans underneath whichever span
is currently active on their thread.

Three sinks can observe a tracer:

* its own in-memory span list (``tracer.finished()`` / ``span_tree()``),
* a :class:`~repro.monitor.metrics.MetricStore` — every closed span is
  recorded as a ``popper.span_seconds`` sample, so ``stats`` and
  ``figures`` consume timings as ordinary series,
* a :class:`~repro.monitor.journal.RunJournal` — ``span_start`` /
  ``span_end`` events land in the run's append-only JSONL journal.

Library code that cannot be handed a tracer explicitly (experiment
modules, playbook execution, runner dispatch) uses the *ambient* tracer:
:func:`activate` installs one for the duration of a ``with`` block and
:func:`current_tracer` returns it (or a no-op :class:`NullTracer`), so
instrumentation is free when nothing is listening.

Everything here is concurrency-aware, because the execution engine
(:mod:`repro.engine`) runs independent tasks on worker threads:

* span stacks are thread-local — a span opened on a worker thread
  becomes a root span for that thread rather than corrupting another
  thread's stack;
* the ambient-tracer stack is thread-local too, so two experiments
  running concurrently each journal into their own run (the engine
  re-activates the caller's tracer on its worker threads);
* :meth:`Tracer.span` accepts an explicit ``parent`` span, which is how
  the engine stitches worker-thread task spans into the calling thread's
  span tree — a parallel run still renders as one tree.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.common.errors import MonitorError

__all__ = [
    "SPAN_METRIC",
    "Span",
    "Tracer",
    "NullTracer",
    "activate",
    "current_tracer",
]

#: Metric name under which every closed span's wall time is recorded.
SPAN_METRIC = "popper.span_seconds"


@dataclass
class Span:
    """One timed, named region of a run.

    ``attributes`` are free-form key/value annotations (machine, node
    count, exit code, ...); instrumented code may add to them while the
    span is open.  ``status`` is ``"ok"`` unless the block raised, in
    which case it is ``"error"`` and ``error`` holds the exception text.
    """

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    status: str = "ok"
    error: str = ""
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Wall seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start


class Tracer:
    """Produces nested spans and fans them out to metrics and a journal."""

    def __init__(
        self,
        metrics=None,
        journal=None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.metrics = metrics
        self.journal = journal
        self._clock = clock
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 1
        self._spans: list[Span] = []

    # -- span lifecycle ----------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(
        self, name: str, parent: Span | None = None, **attributes: Any
    ) -> Iterator[Span]:
        """Open a child of the current span for the duration of the block.

        *parent* overrides the implicit (thread-local) parent; the
        execution engine uses it to nest worker-thread task spans under
        the span that was active where the graph was submitted.
        """
        if not name:
            raise MonitorError("span name required")
        stack = self._stack()
        if parent is None:
            parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent.span_id if parent else None,
            start=self._clock(),
            attributes=dict(attributes),
        )
        with self._lock:
            self._spans.append(span)
        stack.append(span)
        if self.journal is not None:
            self.journal.event(
                "span_start",
                span_id=span.span_id,
                parent_id=span.parent_id,
                name=span.name,
                attributes=span.attributes,
            )
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            span.end = self._clock()
            stack.pop()
            self._finish(span)

    def reserve_span_ids(self, count: int) -> int:
        """Claim *count* consecutive span ids; returns the first one.

        The process scheduler uses this when merging worker journal
        shards: each worker numbered its spans from 1 in its own
        process, and the merge remaps them into this tracer's id space
        so the combined journal has globally unique, collision-free
        span ids.
        """
        if count < 0:
            raise MonitorError(f"cannot reserve {count} span ids")
        with self._lock:
            first = self._next_id
            self._next_id += count
        return first

    def graft_span(self, span: Span) -> None:
        """Adopt an already-finished span produced elsewhere.

        The span joins :meth:`finished` / :meth:`span_tree` queries as
        if this tracer had produced it; nothing is journaled (the
        caller re-emits journal events itself) and nothing is recorded
        to metrics.  Used by the shard merge so in-memory span queries
        see one tree after a process-parallel run.
        """
        if not span.finished:
            raise MonitorError(f"cannot graft open span {span.name!r}")
        with self._lock:
            self._spans.append(span)

    @contextmanager
    def adopt(self, span: Span) -> Iterator[Span]:
        """Make an already-open *span* this thread's innermost span.

        The span itself is not closed or re-journaled — only the
        thread-local stack is touched.  The engine's deadline watchdog
        uses this: the payload runs on a fresh thread whose span stack
        is empty, and adopting the attempt span there re-anchors any
        spans the payload opens under the correct parent.
        """
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()

    def _finish(self, span: Span) -> None:
        if self.journal is not None:
            self.journal.event(
                "span_end",
                span_id=span.span_id,
                name=span.name,
                duration_s=span.duration,
                status=span.status,
                error=span.error,
                attributes=span.attributes,
            )
        if self.metrics is not None:
            self.metrics.record(
                SPAN_METRIC,
                span.duration,
                labels={"span": span.name, "status": span.status},
            )

    # -- queries -----------------------------------------------------------------
    def finished(self) -> list[Span]:
        """All closed spans, in start order."""
        with self._lock:
            return [s for s in self._spans if s.finished]

    def roots(self) -> list[Span]:
        return [s for s in self.finished() if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.finished() if s.parent_id == span.span_id]

    def span_tree(self) -> list[str]:
        """Indented ``name (status)`` lines, depth-first — handy in tests."""
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            lines.append("  " * depth + f"{span.name} ({span.status})")
            for child in self.children(span):
                walk(child, depth + 1)

        for root in self.roots():
            walk(root, 0)
        return lines


class NullTracer(Tracer):
    """A tracer that observes nothing — the ambient default.

    Spans are created (so ``with ... as span`` bodies can still annotate
    them) but never retained, exported or journaled.
    """

    def __init__(self) -> None:
        super().__init__()

    @contextmanager
    def span(
        self, name: str, parent: Span | None = None, **attributes: Any
    ) -> Iterator[Span]:
        yield Span(
            name=name, span_id=0, parent_id=None, start=0.0, end=0.0,
            attributes=dict(attributes),
        )

    def finished(self) -> list[Span]:
        return []


_NULL = NullTracer()
_ambient = threading.local()


def _ambient_stack() -> list[Tracer]:
    stack = getattr(_ambient, "stack", None)
    if stack is None:
        stack = _ambient.stack = []
    return stack


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Install *tracer* as this thread's ambient tracer for the block.

    The ambient stack is per-thread: activating a tracer on one thread
    never leaks it into another (two concurrent pipeline runs must not
    journal into each other's run).  Code that fans work out to worker
    threads and wants instrumentation there must re-activate the tracer
    on each worker — the execution engine's schedulers do exactly that.
    """
    stack = _ambient_stack()
    stack.append(tracer)
    try:
        yield tracer
    finally:
        stack.pop()


def current_tracer() -> Tracer:
    """This thread's innermost :func:`activate`-d tracer, or a no-op."""
    stack = getattr(_ambient, "stack", None)
    return stack[-1] if stack else _NULL
