"""Performance-monitoring substrate (the Nagios/CollectD substitution):
labeled metric samples, series summaries and export to results tables.
"""

from repro.monitor.metrics import MetricStore, Sample, SeriesSummary

__all__ = ["MetricStore", "Sample", "SeriesSummary"]
