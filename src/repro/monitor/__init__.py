"""Observability substrate: metrics, tracing spans, run journals, reports.

Three cooperating layers replace the paper's Nagios/CollectD-style
monitoring stack:

* :mod:`repro.monitor.metrics` — labeled metric samples, per-series
  summaries and export to results tables;
* :mod:`repro.monitor.tracing` — hierarchical spans over pipeline runs,
  feeding the metric store and the journal;
* :mod:`repro.monitor.journal` / :mod:`repro.monitor.report` — the
  per-run append-only JSONL journal and its renderer (``popper trace``).
"""

from repro.monitor.journal import (
    EVENT_KINDS,
    JOURNAL_FILE,
    RunJournal,
    load_journal,
    read_journal,
)
from repro.monitor.metrics import MetricStore, Sample, SeriesSummary
from repro.monitor.report import (
    SpanRecord,
    critical_path,
    render_report,
    spans_from_events,
    stage_table,
)
from repro.monitor.tracing import (
    SPAN_METRIC,
    NullTracer,
    Span,
    Tracer,
    activate,
    current_tracer,
)

__all__ = [
    # metrics
    "MetricStore",
    "Sample",
    "SeriesSummary",
    # tracing
    "SPAN_METRIC",
    "Span",
    "Tracer",
    "NullTracer",
    "activate",
    "current_tracer",
    # journal
    "JOURNAL_FILE",
    "EVENT_KINDS",
    "RunJournal",
    "load_journal",
    "read_journal",
    # report
    "SpanRecord",
    "spans_from_events",
    "stage_table",
    "critical_path",
    "render_report",
]
