"""The per-run journal: append-only JSONL provenance of one run.

Every pipeline run (and every CI build) writes a journal — one JSON
object per line, flushed as events happen so a crashed run still leaves
a record up to the failure point.  The journal is the inspectable
provenance the HotOS panel and Keahey et al. identify as the gap between
"re-runnable" and "reproducible": what executed, in what order, how
long each piece took, what the environment fingerprint said, and what
the Aver verdicts were.

Event kinds and their fields are documented in ``docs/observability.md``;
the common envelope is::

    {"seq": <int>, "ts": <unix seconds>, "event": "<kind>", ...fields}

``seq`` is a per-journal monotonic counter (total order even when ``ts``
ties); ``ts`` is wall-clock time.  Everything else is kind-specific.

:func:`read_journal` parses a journal back into event dicts;
:mod:`repro.monitor.report` renders them into timing tables and a
critical-path summary.
"""

from __future__ import annotations

import json
import threading
import time
import warnings
from pathlib import Path
from typing import Any, Callable

from repro.common.errors import MonitorError
from repro.common.groupcommit import GroupCommitWriter

__all__ = [
    "JOURNAL_FILE",
    "EVENT_KINDS",
    "RunJournal",
    "load_journal",
    "read_journal",
    "replay_events",
]

#: Default journal file name inside an experiment directory.
JOURNAL_FILE = "journal.jsonl"

#: Every event kind the toolchain emits (open set: readers must ignore
#: kinds they do not know).
EVENT_KINDS = (
    "run_start",
    "span_start",
    "span_end",
    "metric",
    "baseline",
    "aver_verdict",
    "attempt",
    "task_restored",
    "task_aborted",
    "cache",
    "scheduler_fallback",
    "degradation",
    "profile_attached",
    "profile_error",
    "fuzz_variant",
    "fuzz_minimized",
    # serve: the persistent job queue's state machine (see docs/serve.md)
    "job_submitted",
    "job_leased",
    "job_heartbeat",
    "job_done",
    "job_failed",
    "job_requeued",
    "job_dead",
    "job_shed",
    "run_end",
)


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of *value* into JSON-serializable form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Path):
        return str(value)
    # numpy scalars and anything else numeric-like
    try:
        return float(value)
    except (TypeError, ValueError):
        return repr(value)


#: Event kinds that commit the journal's group-commit window when they
#: land: the run/span boundaries after which a reader (or a durability
#: contract) expects everything earlier to be on disk.
FLUSH_KINDS = frozenset({"run_start", "span_end", "run_end"})


class RunJournal:
    """Appends events to one JSONL file through a group-commit writer.

    A journal is *per run*: constructing one truncates any journal a
    previous run left at the same path (pass ``fresh=False`` to resume
    appending instead, e.g. across CI retries).  Use as a context
    manager or call :meth:`close` explicitly.

    Writes are lock-protected: the execution engine runs independent
    tasks (pipeline stages, CI jobs) on worker threads that share one
    run's journal, and each event must land as one intact line with a
    unique ``seq``.

    Durability is group-committed: every event is written and flushed
    as it happens (a killed run keeps its record up to the failure
    point), but durable journals fsync once per bounded window rather
    than per event, with an explicit commit at span/run boundaries
    (:data:`FLUSH_KINDS`) and on :meth:`close`.  Bulk replays (journal
    shard merges) wrap themselves in :meth:`batched` to also batch the
    write syscalls.
    """

    def __init__(
        self,
        path: str | Path,
        fresh: bool = True,
        clock: Callable[[], float] = time.time,
        durable: bool = False,
        crash_label: str = "journal.append",
        start_seq: int = 0,
    ) -> None:
        self.path = Path(path)
        self._clock = clock
        # ``start_seq`` lets a journal that survives process restarts
        # (``fresh=False``, e.g. the serve queue's) continue its
        # monotonic sequence instead of restarting at 1.
        self._seq = int(start_seq)
        self._lock = threading.Lock()
        self.durable = bool(durable)
        self._writer: GroupCommitWriter | None = GroupCommitWriter(
            self.path,
            durable=self.durable,
            fresh=fresh,
            crash_label=crash_label,
        )

    # -- writing -----------------------------------------------------------------
    def event(self, kind: str, **fields: Any) -> dict[str, Any]:
        """Append one event; returns the full record as written."""
        if not kind:
            raise MonitorError("journal event kind required")
        record: dict[str, Any] = {"event": kind}
        for key, value in fields.items():
            record[key] = _jsonable(value)
        with self._lock:
            if self._writer is None:
                raise MonitorError(f"journal {self.path} is closed")
            self._seq += 1
            record = {"seq": self._seq, "ts": self._clock(), **record}
            self._writer.append(json.dumps(record, sort_keys=False))
            # Inside a batched bulk replay the window bounds govern; a
            # boundary flush per replayed span would defeat the batch.
            if kind in FLUSH_KINDS and not self._writer.in_batch:
                self._writer.flush()
        return record

    def flush(self) -> None:
        """Commit the open group-commit window (fsync when durable)."""
        with self._lock:
            if self._writer is not None:
                self._writer.flush()

    def batched(self):
        """Context manager batching a bulk append loop's writes.

        Used by the journal-shard merge of the process scheduler, which
        replays thousands of worker events through :meth:`event`.
        """
        with self._lock:
            if self._writer is None:
                raise MonitorError(f"journal {self.path} is closed")
            return self._writer.batched()

    def close(self) -> None:
        with self._lock:
            if self._writer is not None:
                self._writer.close()
                self._writer = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return self._seq


def load_journal(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Parse a JSONL journal; returns ``(events, torn-lines-skipped)``.

    A journal's only legitimate damage is a torn *trailing* line — the
    single write a crash interrupted — so that line is skipped with a
    warning and counted.  Garbage anywhere else means the file was
    edited or corrupted and raises :class:`MonitorError` as before.
    """
    path = Path(path)
    if not path.is_file():
        raise MonitorError(f"no run journal at {path}")
    events: list[dict[str, Any]] = []
    skipped = 0
    lines = path.read_text(encoding="utf-8").splitlines()
    last = len(lines)
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == last:
                warnings.warn(
                    f"{path}: skipping torn trailing journal line "
                    f"{lineno} (crashed append)",
                    stacklevel=2,
                )
                skipped += 1
                continue
            raise MonitorError(f"{path}:{lineno}: bad journal line: {exc}") from exc
        if not isinstance(record, dict) or "event" not in record:
            raise MonitorError(f"{path}:{lineno}: journal line is not an event")
        events.append(record)
    return events, skipped


def read_journal(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL journal back into its event records, in order."""
    return load_journal(path)[0]


def replay_events(
    journal: RunJournal,
    events: list[dict[str, Any]],
    span_id_map: dict[int, int] | None = None,
    default_parent_id: int | None = None,
    **extra_fields: Any,
) -> int:
    """Re-emit *events* (from another journal) into *journal*.

    The workhorse of journal-shard merging: each worker process of the
    process scheduler journals into its own shard file, and at join the
    parent replays every shard's events into the run's real journal.
    Replayed events get a fresh monotonic ``seq`` from the target journal
    but keep their original ``ts`` (wall-clock time is meaningful across
    processes; ``seq`` is not).  ``span_id_map`` remaps shard-local
    ``span_id``/``parent_id`` values into the target's id space; a
    ``parent_id`` with no mapping (a shard-root span) is re-parented to
    ``default_parent_id``.  ``extra_fields`` (e.g. ``worker=3``) are
    stamped onto every replayed event.  Returns the number of events
    written.
    """
    span_id_map = span_id_map or {}
    written = 0
    for event in events:
        fields = {k: v for k, v in event.items() if k not in ("seq", "event")}
        if "span_id" in fields and fields["span_id"] in span_id_map:
            fields["span_id"] = span_id_map[fields["span_id"]]
        if "parent_id" in fields:
            fields["parent_id"] = span_id_map.get(
                fields["parent_id"], default_parent_id
            )
        fields.update(extra_fields)
        # ``ts`` survives because explicit fields override the target
        # journal's clock stamp; ``seq`` is always freshly assigned.
        journal.event(event.get("event", "?"), **fields)
        written += 1
    return written
