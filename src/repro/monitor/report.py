"""Render a run journal into timing tables and a critical-path summary.

This is the analysis half of the observability layer: given the JSONL
events a :class:`~repro.monitor.journal.RunJournal` recorded, rebuild
the span tree and produce

* a per-stage timing table (the root span's direct children, with wall
  seconds and share of the run),
* the critical path — from each root, repeatedly descend into the
  slowest child — which names the chain of work that bounded the run,
* cache, verdict and metric counts, so ``popper trace`` answers "what
  happened, what was memoized and where did the time go" without
  re-running anything.

The per-stage table is also exposed as a
:class:`~repro.common.tables.MetricsTable` so analysis scripts and
figures can consume journal timings like any other results series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import MonitorError
from repro.common.tables import MetricsTable

__all__ = [
    "SpanRecord",
    "spans_from_events",
    "stage_table",
    "critical_path",
    "render_report",
    "render_fuzz_summary",
    "render_serve_summary",
]

#: Kinds :func:`render_report` gives dedicated treatment; anything else
#: (a newer toolchain's journal, a serve queue event in a merged file)
#: is summarized generically rather than dropped or crashed on — the
#: journal format is an open set and the renderer must outlive it.
_HANDLED_KINDS = frozenset(
    {
        "run_start",
        "run_end",
        "span_start",
        "span_end",
        "baseline",
        "cache",
        "aver_verdict",
        "degradation",
        "metric",
    }
)


@dataclass
class SpanRecord:
    """One span reconstructed from ``span_start`` / ``span_end`` events."""

    span_id: int
    parent_id: int | None
    name: str
    duration: float = 0.0
    status: str = "open"
    error: str = ""
    attributes: dict[str, Any] = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)


def spans_from_events(events: list[dict[str, Any]]) -> list[SpanRecord]:
    """Rebuild the span forest (roots only; children nested inside).

    Spans with a ``span_start`` but no ``span_end`` (a crashed run) are
    kept with ``status="open"`` so the report shows where it died.
    """
    by_id: dict[int, SpanRecord] = {}
    roots: list[SpanRecord] = []
    for event in events:
        kind = event.get("event")
        if kind == "span_start":
            record = SpanRecord(
                span_id=int(event["span_id"]),
                parent_id=event.get("parent_id"),
                name=str(event.get("name", "")),
                attributes=dict(event.get("attributes") or {}),
            )
            by_id[record.span_id] = record
            parent = by_id.get(record.parent_id) if record.parent_id else None
            if parent is not None:
                parent.children.append(record)
            else:
                roots.append(record)
        elif kind == "span_end":
            record = by_id.get(int(event["span_id"]))
            if record is None:
                raise MonitorError(
                    f"journal has span_end for unknown span {event.get('span_id')}"
                )
            record.duration = float(event.get("duration_s", 0.0))
            record.status = str(event.get("status", "ok"))
            record.error = str(event.get("error", ""))
            record.attributes.update(event.get("attributes") or {})
    return roots


def stage_table(events: list[dict[str, Any]]) -> MetricsTable:
    """Per-stage timings: the root span's direct children, in order."""
    roots = spans_from_events(events)
    table = MetricsTable(["stage", "seconds", "share", "status"])
    for root in roots:
        total = root.duration or sum(c.duration for c in root.children)
        for child in root.children:
            table.append(
                {
                    "stage": child.name,
                    "seconds": child.duration,
                    "share": child.duration / total if total else 0.0,
                    "status": child.status,
                }
            )
    return table


def critical_path(events: list[dict[str, Any]]) -> list[SpanRecord]:
    """The slowest-child chain from the first root span downwards."""
    roots = spans_from_events(events)
    if not roots:
        return []
    path = [roots[0]]
    while path[-1].children:
        path.append(max(path[-1].children, key=lambda s: s.duration))
    return path


def _fmt_seconds(seconds: float) -> str:
    return f"{seconds:.3f}s"


def _text_table(rows: list[tuple[str, ...]], header: tuple[str, ...]) -> list[str]:
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(header)).rstrip()]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return lines


def render_report(events: list[dict[str, Any]], skipped: int = 0) -> str:
    """The human-readable report behind ``popper trace``.

    *skipped* is the torn-trailing-line count from
    :func:`~repro.monitor.journal.load_journal`; a non-zero value is
    surfaced so a crashed run's trace says the record is incomplete.
    """
    if not events:
        raise MonitorError("journal is empty; nothing to render")

    run_start = next((e for e in events if e.get("event") == "run_start"), None)
    run_end = next((e for e in events if e.get("event") == "run_end"), None)
    roots = spans_from_events(events)
    subject = (run_start or {}).get("experiment") or (
        roots[0].name if roots else "<unknown>"
    )
    status = (run_end or {}).get("status", "incomplete")
    total = sum(r.duration for r in roots)

    lines = [f"== run journal: {subject} " + "=" * max(0, 46 - len(str(subject)))]
    spans = sum(1 for e in events if e.get("event") == "span_end")
    header = f"status: {status}   spans: {spans}   wall: {_fmt_seconds(total)}"
    # Surface which execution backend drove the run (recorded in the
    # run_start header by the sweep layer) — essential context when
    # comparing timings across runs.
    backend = (run_start or {}).get("backend")
    if backend:
        workers = (run_start or {}).get("workers")
        header += f"   backend: {backend}"
        if workers:
            header += f" ({workers} workers)"
    lines.append(header)
    if skipped:
        lines.append(
            f"warning: {skipped} torn trailing line skipped (crashed append)"
        )
    lines.append("")

    stages = stage_table(events)
    if len(stages):
        rows = [
            (
                str(row["stage"]),
                _fmt_seconds(float(row["seconds"])),
                f"{float(row['share']):.1%}",
                str(row["status"]),
            )
            for row in stages
        ]
        lines.extend(_text_table(rows, ("stage", "seconds", "share", "status")))
        lines.append("")

    path = critical_path(events)
    if path:
        lines.append("critical path:")
        for depth, span in enumerate(path):
            marker = "-> " if depth else ""
            detail = f" [{span.error}]" if span.status == "error" else ""
            lines.append(
                "  " * (depth + 1)
                + f"{marker}{span.name} ({_fmt_seconds(span.duration)}){detail}"
            )
        lines.append("")

    baselines = [e for e in events if e.get("event") == "baseline"]
    for event in baselines:
        lines.append(f"baseline: {event.get('message', event.get('machine', ''))}")
    cache_events = [e for e in events if e.get("event") == "cache"]
    if cache_events:
        hits = [e for e in cache_events if e.get("hit")]
        misses = [e for e in cache_events if not e.get("hit")]
        saved = sum(int(e.get("bytes_saved", 0)) for e in hits)
        stored = sum(int(e.get("bytes_stored", 0)) for e in misses)
        deduped = sum(int(e.get("bytes_deduped", 0)) for e in misses)
        lines.append(
            f"cache: {len(hits)} hits, {len(misses)} misses"
            f" ({saved} bytes saved, {stored} stored, {deduped} deduped)"
        )
    verdicts = [e for e in events if e.get("event") == "aver_verdict"]
    if verdicts:
        passed = sum(1 for v in verdicts if v.get("passed"))
        lines.append(f"validations: {passed} passed, {len(verdicts) - passed} failed")
    degradations = [
        e for e in events if e.get("event") == "degradation" and e.get("change")
    ]
    if degradations:
        firm = sum(1 for d in degradations if d.get("change") == "degradation")
        lines.append(
            f"degradation checks: {len(degradations)} detector verdicts, "
            f"{firm} firm"
        )
    metrics = sum(1 for e in events if e.get("event") == "metric")
    if metrics:
        lines.append(f"metric samples: {metrics}")
    other: dict[str, int] = {}
    for event in events:
        kind = str(event.get("event", "?"))
        if kind not in _HANDLED_KINDS:
            other[kind] = other.get(kind, 0) + 1
    if other:
        lines.append(
            "other events: "
            + ", ".join(f"{k}={v}" for k, v in sorted(other.items()))
        )
    return "\n".join(lines).rstrip() + "\n"


def render_fuzz_summary(events: list[dict[str, Any]], skipped: int = 0) -> str:
    """The report behind ``popper trace --fuzz``: what the last fuzz
    campaign generated, how each variant was judged, and which failures
    were delta-debugged into minimal reproducers."""
    if not events:
        raise MonitorError("fuzz journal is empty; nothing to render")

    run_start = next((e for e in events if e.get("event") == "run_start"), None)
    variants = [e for e in events if e.get("event") == "fuzz_variant"]
    minimized = [e for e in events if e.get("event") == "fuzz_minimized"]

    lines = ["== fuzz campaign " + "=" * 46]
    if run_start is not None:
        lines.append(
            f"seed: {run_start.get('seed', '?')}   "
            f"iterations: {run_start.get('iterations', '?')}   "
            f"experiments: {', '.join(run_start.get('experiments') or []) or '?'}"
        )
    if skipped:
        lines.append(
            f"warning: {skipped} torn trailing line skipped (crashed append)"
        )
    lines.append("")

    if variants:
        outcomes: dict[str, int] = {}
        severities: dict[str, int] = {}
        novel = 0
        for event in variants:
            outcome = str(event.get("outcome", "?"))
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
            severity = str(event.get("severity", "?"))
            severities[severity] = severities.get(severity, 0) + 1
            novel += int(event.get("novel", 0))
        lines.append(
            f"variants: {len(variants)} executed, "
            f"{novel} novel coverage key(s)"
        )
        lines.append(
            "outcomes: "
            + ", ".join(f"{k}={v}" for k, v in sorted(outcomes.items()))
        )
        lines.append(
            "verdicts: "
            + ", ".join(f"{k}={v}" for k, v in sorted(severities.items()))
        )
        rows = [
            (
                str(event.get("variant", ""))[:16],
                str(event.get("outcome", "?")),
                str(event.get("severity", "?")),
                "/".join(event.get("kinds") or []) or "-",
                str(event.get("chain", "?")),
                str(event.get("novel", 0)),
            )
            for event in variants
            if event.get("severity") != "boring" or int(event.get("novel", 0))
        ]
        if rows:
            lines.append("")
            lines.extend(
                _text_table(
                    rows,
                    ("variant", "outcome", "severity", "kinds", "chain", "novel"),
                )
            )
    else:
        lines.append("variants: none recorded")

    if minimized:
        lines.append("")
        lines.append("minimized reproducers:")
        for event in minimized:
            lines.append(
                f"  {str(event.get('variant', ''))[:16]} -> "
                f"{str(event.get('minimal', ''))[:16]} "
                f"(chain {event.get('chain', '?')} -> "
                f"{event.get('minimal_chain', '?')}, "
                f"{event.get('executions', '?')} execution(s))"
            )
    return "\n".join(lines).rstrip() + "\n"


def render_serve_summary(events: list[dict[str, Any]], skipped: int = 0) -> str:
    """The report behind ``popper trace --serve``: the queue journal's
    state machine summarized — admissions, completions (and how many
    were cache-served), requeues by reason, dead letters, shed load."""
    if not events:
        raise MonitorError("serve queue journal is empty; nothing to render")

    by_kind: dict[str, list[dict[str, Any]]] = {}
    for event in events:
        by_kind.setdefault(str(event.get("event", "?")), []).append(event)

    submitted = by_kind.get("job_submitted", [])
    done = by_kind.get("job_done", [])
    requeued = by_kind.get("job_requeued", [])
    dead = by_kind.get("job_dead", [])
    shed = by_kind.get("job_shed", [])

    lines = ["== serve queue " + "=" * 48]
    tenants = sorted({str(e.get("tenant", "default")) for e in submitted})
    lines.append(
        f"submitted: {len(submitted)}   done: {len(done)} "
        f"({sum(1 for e in done if e.get('cached'))} cache-served)   "
        f"dead: {len(dead)}   shed: {len(shed)}"
    )
    if tenants:
        lines.append(f"tenants: {', '.join(tenants)}")
    if skipped:
        lines.append(
            f"warning: {skipped} torn trailing line skipped (crashed append)"
        )
    if requeued:
        reasons: dict[str, int] = {}
        for event in requeued:
            reason = str(event.get("reason", "?"))
            reasons[reason] = reasons.get(reason, 0) + 1
        lines.append(
            "requeues: "
            + ", ".join(f"{k}={v}" for k, v in sorted(reasons.items()))
        )
    busy = sum(float(e.get("seconds", 0.0)) for e in done)
    if done:
        lines.append(f"worker seconds: {busy:.3f}")
    if dead:
        lines.append("")
        lines.append("dead letters:")
        for event in dead:
            lines.append(
                f"  {event.get('job', '?')} after "
                f"{event.get('attempts', '?')} attempt(s): "
                f"{str(event.get('error', ''))[:60]}"
            )
    return "\n".join(lines).rstrip() + "\n"
