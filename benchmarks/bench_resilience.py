"""Resilience overhead: what fault tolerance costs when nothing fails.

Measures three things against a plain (no-options) scheduler run of the
same task graph and records them to ``BENCH_resilience.json`` at the
repository root:

* ``retry_policy`` — the retry loop + per-attempt bookkeeping with a
  multi-attempt policy attached but zero failures (the common case:
  policies should be nearly free when unused);
* ``fault_matching`` — a fault plan whose clauses match no task, i.e.
  the per-task glob-matching cost of running under ``--inject-faults``;
* ``checkpoint_resume`` — a fingerprinted run that writes run-state,
  then a ``resume`` pass that restores every task, with the
  restore-vs-execute speedup.

Payloads do a small fixed amount of arithmetic so the baseline is not
pure scheduler overhead.  Run standalone
(``python benchmarks/bench_resilience.py``) or via pytest
(``pytest benchmarks/bench_resilience.py``).
"""

import json
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_resilience.json"

TASKS = 200
WORK = 2_000


def build_graph(fingerprinted=False):
    from repro.engine import TaskGraph, task_fingerprint

    def payload(ctx):
        return sum(range(WORK))

    graph = TaskGraph()
    for i in range(TASKS):
        extra = {}
        if fingerprinted:
            extra = {
                "fingerprint": task_fingerprint(f"t{i}", {"work": WORK}),
                "checkpoint": lambda value: {"value": value},
                "restore": lambda detail: detail["value"],
            }
        graph.add(f"t{i}", payload, **extra)
    return graph


def timed_run(options=None) -> float:
    from repro.engine import SerialScheduler

    graph = build_graph()
    started = time.perf_counter()
    recap = SerialScheduler().run(graph, options=options)
    seconds = time.perf_counter() - started
    assert recap.ok
    return seconds


def run_bench(base: Path) -> dict:
    from repro.engine import (
        FaultPlan,
        RetryPolicy,
        RunOptions,
        RunStateStore,
        SerialScheduler,
    )

    baseline_s = timed_run()
    retry_s = timed_run(
        RunOptions(retry=RetryPolicy(max_attempts=3, backoff_s=0.0, jitter=0.0))
    )
    faults_s = timed_run(
        RunOptions(faults=FaultPlan.parse("flaky:no-such-task:1"))
    )

    state_path = base / "run-state.jsonl"
    started = time.perf_counter()
    with RunStateStore(state_path) as store:
        recap = SerialScheduler().run(
            build_graph(fingerprinted=True), options=RunOptions(run_state=store)
        )
    first_s = time.perf_counter() - started
    assert recap.ok

    started = time.perf_counter()
    with RunStateStore(state_path, resume=True) as store:
        recap = SerialScheduler().run(
            build_graph(fingerprinted=True), options=RunOptions(run_state=store)
        )
    resume_s = time.perf_counter() - started
    assert recap.ok
    restored = sum(1 for o in recap.outcomes.values() if o.restored)
    assert restored == TASKS, f"expected all {TASKS} restored, got {restored}"

    report = {
        "benchmark": "engine-resilience",
        "tasks": TASKS,
        "modes": {
            "baseline": {"wall_seconds": round(baseline_s, 4)},
            "retry_policy": {
                "wall_seconds": round(retry_s, 4),
                "overhead_pct": round(100 * (retry_s / baseline_s - 1), 1),
            },
            "fault_matching": {
                "wall_seconds": round(faults_s, 4),
                "overhead_pct": round(100 * (faults_s / baseline_s - 1), 1),
            },
            "checkpoint_resume": {
                "first_run_seconds": round(first_s, 4),
                "resume_seconds": round(resume_s, 4),
                "restore_speedup": round(first_s / resume_s, 2) if resume_s else None,
                "tasks_restored": restored,
            },
        },
    }
    BENCH_FILE.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def test_bench_resilience(tmp_path):
    report = run_bench(tmp_path)
    assert report["modes"]["baseline"]["wall_seconds"] > 0
    assert report["modes"]["checkpoint_resume"]["tasks_restored"] == TASKS
    assert BENCH_FILE.is_file()


if __name__ == "__main__":
    import sys
    import tempfile

    sys.path.insert(0, str(REPO_ROOT / "src"))
    with tempfile.TemporaryDirectory() as tmp:
        out = run_bench(Path(tmp))
    print(json.dumps(out, indent=2))
