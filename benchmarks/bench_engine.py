"""Engine throughput: the four-experiment sweep across all backends.

Runs the four paper experiments (`gassyfs`, `torpor`,
`mpi-comm-variability`, `jupyter-bww`) through ``popper run --all``
three ways — serial (``-j 1``), threaded (``-j 4``) and process
(``--backend process -j 4``) — and records wall seconds plus a
per-mode ``speedup_vs_serial`` to ``BENCH_engine.json`` at the
repository root — the repo's perf-trajectory data point for the
execution engine.

Also asserts the engine's correctness contract while it is at it: all
three modes must produce byte-identical ``results.csv`` files.

The speedups are hardware-dependent: the experiment payloads are
CPU-bound Python, so threading is GIL-bounded everywhere and the
process backend only wins on a multi-core host (it clamps its pool to
``cpu_count``, so on one core it degenerates to serial plus fork
overhead).  ``cpu_count`` and each parallel mode's requested vs
effective worker counts are recorded alongside the timings so the
numbers can be read in context.

Run standalone (``python benchmarks/bench_engine.py``) or via pytest
(``pytest benchmarks/bench_engine.py``).
"""

import json
import os
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_engine.json"

#: The four paper experiments, shrunk to a seconds-scale budget.
EXPERIMENTS = {
    "exp-gassyfs": (
        "gassyfs",
        {
            "node_counts": [1, 2, 4],
            "sites": ["cloudlab-wisc"],
            "workloads": ["git-compile"],
            "workload_scale": 0.1,
            "seed": 7,
        },
    ),
    "exp-torpor": ("torpor", {"runs": 2, "seed": 7}),
    "exp-mpi": ("mpi-comm-variability", {"iterations": 10, "runs": 5, "seed": 7}),
    "exp-bww": ("jupyter-bww", {"seed": 7}),
}

#: (mode name, extra ``popper run`` arguments) for each backend.
MODES = [
    ("serial_j1", ["-j", "1"]),
    ("threaded_j4", ["-j", "4"]),
    ("process_j4", ["--backend", "process", "-j", "4"]),
]


def build_repo(root: Path):
    from repro.common import minyaml
    from repro.common.fsutil import write_text
    from repro.core.repo import PopperRepository

    repo = PopperRepository.init(root)
    for experiment, (template, overrides) in EXPERIMENTS.items():
        repo.add_experiment(template, experiment, commit=False)
        vars_path = repo.experiment_dir(experiment) / "vars.yml"
        doc = minyaml.load_file(vars_path)
        doc.update(overrides)
        write_text(vars_path, minyaml.dumps(doc))
    repo.vcs.add_all()
    repo.vcs.commit("instantiate the four paper experiments")
    return repo


def sweep(repo, extra_args: list[str]) -> float:
    """Run the full sweep; returns wall seconds (exit code must be 0)."""
    from repro.core.cli import main

    started = time.perf_counter()
    code = main(["-C", str(repo.root), "run", "--all", *extra_args])
    seconds = time.perf_counter() - started
    assert code == 0, f"sweep with {extra_args} exited {code}"
    return seconds


def run_bench(base: Path) -> dict:
    cpus = os.cpu_count() or 1
    repos = {mode: build_repo(base / mode) for mode, _ in MODES}
    seconds = {
        mode: sweep(repos[mode], extra) for mode, extra in MODES
    }

    reference = None
    for experiment in EXPERIMENTS:
        blobs = {
            mode: (
                repos[mode].experiment_dir(experiment) / "results.csv"
            ).read_bytes()
            for mode, _ in MODES
        }
        reference = blobs["serial_j1"]
        for mode, blob in blobs.items():
            assert blob == reference, f"{experiment}: {mode} results differ"
    assert reference is not None

    serial_s = seconds["serial_j1"]
    modes = {"serial_j1": {"wall_seconds": round(serial_s, 4)}}
    for mode, requested in (("threaded_j4", 4), ("process_j4", 4)):
        wall = seconds[mode]
        modes[mode] = {
            "wall_seconds": round(wall, 4),
            "speedup_vs_serial": round(serial_s / wall, 3) if wall else None,
            "workers_requested": requested,
            # Threading never clamps (oversubscription just time-shares
            # the GIL); the process pool clamps to the core count.
            "workers_effective": (
                min(requested, cpus) if mode == "process_j4" else requested
            ),
        }

    report = {
        "benchmark": "engine-sweep",
        "experiments": sorted(EXPERIMENTS),
        "modes": modes,
        "cpu_count": cpus,
        "results_identical": True,
    }
    BENCH_FILE.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def test_bench_engine_sweep(tmp_path):
    report = run_bench(tmp_path)
    assert report["results_identical"]
    for mode, _ in MODES:
        assert report["modes"][mode]["wall_seconds"] > 0
    assert report["modes"]["process_j4"]["workers_effective"] >= 1
    assert BENCH_FILE.is_file()


if __name__ == "__main__":
    import sys
    import tempfile

    sys.path.insert(0, str(REPO_ROOT / "src"))
    with tempfile.TemporaryDirectory() as tmp:
        out = run_bench(Path(tmp))
    print(json.dumps(out, indent=2))
