"""Engine throughput: the four-experiment sweep, serial vs threaded.

Runs the four paper experiments (`gassyfs`, `torpor`,
`mpi-comm-variability`, `jupyter-bww`) through ``popper run --all`` with
``-j 1`` and ``-j 4`` and records wall seconds per mode plus the speedup
to ``BENCH_engine.json`` at the repository root — the repo's
perf-trajectory data point for the execution engine.

Also asserts the engine's correctness contract while it is at it: both
modes must produce byte-identical ``results.csv`` files.

The speedup is hardware-dependent: the experiment payloads are
CPU-bound Python, so on a single-core host (or any host, under the GIL)
the threaded sweep's benefit is bounded; ``cpu_count`` is recorded
alongside the timings so the number can be read in context.

Run standalone (``python benchmarks/bench_engine.py``) or via pytest
(``pytest benchmarks/bench_engine.py``).
"""

import json
import os
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_engine.json"

#: The four paper experiments, shrunk to a seconds-scale budget.
EXPERIMENTS = {
    "exp-gassyfs": (
        "gassyfs",
        {
            "node_counts": [1, 2, 4],
            "sites": ["cloudlab-wisc"],
            "workloads": ["git-compile"],
            "workload_scale": 0.1,
            "seed": 7,
        },
    ),
    "exp-torpor": ("torpor", {"runs": 2, "seed": 7}),
    "exp-mpi": ("mpi-comm-variability", {"iterations": 10, "runs": 5, "seed": 7}),
    "exp-bww": ("jupyter-bww", {"seed": 7}),
}


def build_repo(root: Path):
    from repro.common import minyaml
    from repro.common.fsutil import write_text
    from repro.core.repo import PopperRepository

    repo = PopperRepository.init(root)
    for experiment, (template, overrides) in EXPERIMENTS.items():
        repo.add_experiment(template, experiment, commit=False)
        vars_path = repo.experiment_dir(experiment) / "vars.yml"
        doc = minyaml.load_file(vars_path)
        doc.update(overrides)
        write_text(vars_path, minyaml.dumps(doc))
    repo.vcs.add_all()
    repo.vcs.commit("instantiate the four paper experiments")
    return repo


def sweep(repo, jobs: int) -> float:
    """Run the full sweep; returns wall seconds (exit code must be 0)."""
    from repro.core.cli import main

    started = time.perf_counter()
    code = main(["-C", str(repo.root), "run", "--all", "-j", str(jobs)])
    seconds = time.perf_counter() - started
    assert code == 0, f"sweep with -j {jobs} exited {code}"
    return seconds


def run_bench(base: Path) -> dict:
    serial_repo = build_repo(base / "serial")
    threaded_repo = build_repo(base / "threaded")

    serial_s = sweep(serial_repo, jobs=1)
    threaded_s = sweep(threaded_repo, jobs=4)

    for experiment in EXPERIMENTS:
        a = (serial_repo.experiment_dir(experiment) / "results.csv").read_bytes()
        b = (threaded_repo.experiment_dir(experiment) / "results.csv").read_bytes()
        assert a == b, f"{experiment}: -j 1 and -j 4 results differ"

    report = {
        "benchmark": "engine-sweep",
        "experiments": sorted(EXPERIMENTS),
        "modes": {
            "serial_j1": {"wall_seconds": round(serial_s, 4)},
            "threaded_j4": {"wall_seconds": round(threaded_s, 4)},
        },
        "speedup": round(serial_s / threaded_s, 3) if threaded_s else None,
        "cpu_count": os.cpu_count(),
        "results_identical": True,
    }
    BENCH_FILE.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def test_bench_engine_sweep(tmp_path):
    report = run_bench(tmp_path)
    assert report["results_identical"]
    assert report["modes"]["serial_j1"]["wall_seconds"] > 0
    assert report["modes"]["threaded_j4"]["wall_seconds"] > 0
    assert BENCH_FILE.is_file()


if __name__ == "__main__":
    import sys
    import tempfile

    sys.path.insert(0, str(REPO_ROOT / "src"))
    with tempfile.TemporaryDirectory() as tmp:
        out = run_bench(Path(tmp))
    print(json.dumps(out, indent=2))
