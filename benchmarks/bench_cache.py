"""Artifact-cache payoff: the four-experiment sweep, cold vs warm.

Runs the four paper experiments (`gassyfs`, `torpor`,
`mpi-comm-variability`, `jupyter-bww`) through ``popper run --all``
twice against one artifact store and records wall seconds for the cold
pass (every stage executes, outputs are filed into the content pool)
and the warm pass (every experiment is served from cache) to
``BENCH_cache.json`` at the repository root — the perf-trajectory data
point for cross-run memoization.

Asserts the memoization contract while it is at it: the warm pass must
leave every ``results.csv`` byte-identical, must report cache hits for
all experiments, and must finish in under half the cold pass's wall
time (the artifacts here are small, so materialization is cheap; real
workloads only widen the gap).

Run standalone (``python benchmarks/bench_cache.py``) or via pytest
(``pytest benchmarks/bench_cache.py``).
"""

import contextlib
import io
import json
import os
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_cache.json"

#: The four paper experiments, shrunk to a seconds-scale budget.
EXPERIMENTS = {
    "exp-gassyfs": (
        "gassyfs",
        {
            "node_counts": [1, 2, 4],
            "sites": ["cloudlab-wisc"],
            "workloads": ["git-compile"],
            "workload_scale": 0.1,
            "seed": 7,
        },
    ),
    "exp-torpor": ("torpor", {"runs": 2, "seed": 7}),
    "exp-mpi": ("mpi-comm-variability", {"iterations": 10, "runs": 5, "seed": 7}),
    "exp-bww": ("jupyter-bww", {"seed": 7}),
}


def build_repo(root: Path):
    from repro.common import minyaml
    from repro.common.fsutil import write_text
    from repro.core.repo import PopperRepository

    repo = PopperRepository.init(root)
    for experiment, (template, overrides) in EXPERIMENTS.items():
        repo.add_experiment(template, experiment, commit=False)
        vars_path = repo.experiment_dir(experiment) / "vars.yml"
        doc = minyaml.load_file(vars_path)
        doc.update(overrides)
        write_text(vars_path, minyaml.dumps(doc))
    repo.vcs.add_all()
    repo.vcs.commit("instantiate the four paper experiments")
    return repo


def sweep(repo) -> tuple[float, str]:
    """Run the full sweep; returns (wall seconds, captured stdout)."""
    from repro.core.cli import main

    buffer = io.StringIO()
    started = time.perf_counter()
    with contextlib.redirect_stdout(buffer):
        code = main(["-C", str(repo.root), "run", "--all"])
    seconds = time.perf_counter() - started
    assert code == 0, f"sweep exited {code}:\n{buffer.getvalue()}"
    return seconds, buffer.getvalue()


def run_bench(base: Path) -> dict:
    repo = build_repo(base / "repo")

    cold_s, cold_out = sweep(repo)
    assert "(cached)" not in cold_out
    results_cold = {
        experiment: (repo.experiment_dir(experiment) / "results.csv").read_bytes()
        for experiment in EXPERIMENTS
    }

    warm_s, warm_out = sweep(repo)
    hits = warm_out.count("(cached)")
    assert hits == len(EXPERIMENTS), (
        f"warm sweep had {hits}/{len(EXPERIMENTS)} cache hits:\n{warm_out}"
    )
    for experiment, before in results_cold.items():
        after = (repo.experiment_dir(experiment) / "results.csv").read_bytes()
        assert after == before, f"{experiment}: warm results differ from cold"

    stats = repo.artifact_store.stats()
    report = {
        "benchmark": "cache-warm-sweep",
        "experiments": sorted(EXPERIMENTS),
        "modes": {
            "cold": {"wall_seconds": round(cold_s, 4)},
            "warm": {"wall_seconds": round(warm_s, 4), "cache_hits": hits},
        },
        "speedup": round(cold_s / warm_s, 3) if warm_s else None,
        "warm_fraction_of_cold": round(warm_s / cold_s, 4) if cold_s else None,
        "store": {
            "objects": stats["objects"],
            "physical_bytes": stats["bytes"],
            "logical_bytes": stats["logical_bytes"],
            "bytes_deduped": stats["bytes_deduped"],
        },
        "cpu_count": os.cpu_count(),
        "results_identical": True,
    }
    BENCH_FILE.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def test_bench_cache_warm_sweep(tmp_path):
    report = run_bench(tmp_path)
    assert report["results_identical"]
    assert report["modes"]["warm"]["cache_hits"] == len(EXPERIMENTS)
    # The acceptance bar: a warm sweep costs less than half a cold one.
    assert report["warm_fraction_of_cold"] < 0.5, report
    assert BENCH_FILE.is_file()


if __name__ == "__main__":
    import sys
    import tempfile

    sys.path.insert(0, str(REPO_ROOT / "src"))
    with tempfile.TemporaryDirectory() as tmp:
        out = run_bench(Path(tmp))
    print(json.dumps(out, indent=2))
