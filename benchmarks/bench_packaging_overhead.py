"""The "hypervisor tax" claim (§"Common Experimental Practices").

Paper: VMs carry performance and management overheads that "can be high
and, in some cases, cannot be accounted for easily", while OS-level
virtualization (containers) has essentially none — the reason Popper
templates package experiments in containers.  The bench reproduces the
comparison: the same workload under bare-metal, container and VM
packaging.
"""

import pytest

from conftest import save_figure_data

from repro.common.tables import MetricsTable
from repro.container import BARE_METAL, CONTAINER, VIRTUAL_MACHINE, packaged_time
from repro.platform import KernelDemand, execution_time, get_machine

MODES = (BARE_METAL, CONTAINER, VIRTUAL_MACHINE)


def _table() -> MetricsTable:
    machine = get_machine("cloudlab-c220g1")
    workload = KernelDemand(
        ops=2e10, mem_bytes=6e9, working_set_kib=1 << 18, parallel_fraction=0.9
    )
    native = execution_time(workload, machine, threads=8)
    table = MetricsTable(
        ["mode", "startup_s", "runtime_s", "total_s", "overhead_pct", "image_weight"]
    )
    for mode in MODES:
        runtime = packaged_time(native, mode, include_startup=False)
        total = packaged_time(native, mode, include_startup=True)
        table.append(
            {
                "mode": mode.name,
                "startup_s": mode.startup_s,
                "runtime_s": runtime,
                "total_s": total,
                "overhead_pct": 100 * (runtime / native - 1),
                "image_weight": mode.image_size_factor,
            }
        )
    return table


@pytest.fixture(scope="module")
def overhead_table():
    return _table()


class TestHypervisorTax:
    def test_container_tax_negligible(self, overhead_table):
        row = overhead_table.where_equals(mode="container")[0]
        assert row["overhead_pct"] < 2.0

    def test_vm_tax_significant(self, overhead_table):
        row = overhead_table.where_equals(mode="vm")[0]
        assert row["overhead_pct"] > 5.0

    def test_vm_startup_dominates_short_runs(self, overhead_table):
        vm = overhead_table.where_equals(mode="vm")[0]
        container = overhead_table.where_equals(mode="container")[0]
        assert vm["startup_s"] > 50 * container["startup_s"]

    def test_image_weight_ordering(self, overhead_table):
        weights = {r["mode"]: r["image_weight"] for r in overhead_table}
        assert weights["bare"] < weights["container"] < weights["vm"]


def test_bench_packaging_overhead(benchmark, output_dir):
    table = benchmark.pedantic(_table, rounds=3, iterations=1)
    path = save_figure_data(table, "table_packaging_overhead")
    rows = {r["mode"]: round(r["overhead_pct"], 2) for r in table}
    benchmark.extra_info["overhead_pct"] = rows
    benchmark.extra_info["series_csv"] = str(path)
