"""ASPLOS §5.3 figure (promised for the final version) — MPI
communication variability under noisy neighbors.

Shape: with noise injection the run-to-run coefficient of variation of
wall time is several times the quiet baseline, the MPI share of
aggregate time rises sharply, and mpiP pins the increase on the global
dt-reduction Allreduce.
"""

import pytest

from conftest import save_figure_data

from repro.aver import check
from repro.mpicomm import LuleshConfig, run_noise_experiment, variability_stats

CONFIG = LuleshConfig(side=3, iterations=40)


def _experiment():
    return run_noise_experiment(CONFIG, runs=10, seed=42)


@pytest.fixture(scope="module")
def noise_table():
    return _experiment()


class TestFigureShape:
    def test_noise_amplifies_cov(self, noise_table):
        clean = variability_stats(noise_table, noise=False)
        noisy = variability_stats(noise_table, noise=True)
        assert noisy.cov_wall > 3 * clean.cov_wall

    def test_mpi_fraction_rises(self, noise_table):
        clean = variability_stats(noise_table, noise=False)
        noisy = variability_stats(noise_table, noise=True)
        assert noisy.mean_mpi_fraction > 2 * clean.mean_mpi_fraction

    def test_blame_lands_on_allreduce(self, noise_table):
        noisy = noise_table.where_equals(noise=True)
        assert all("dtcourant" in c for c in noisy.column("dominant_callsite"))

    def test_aver_assertions_on_results(self, noise_table):
        assert check("when noise=* expect count() >= 5", noise_table).passed
        assert check("expect wall_time > 0", noise_table).passed


def test_bench_mpi_noise_experiment(benchmark, output_dir):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    path = save_figure_data(table, "fig_mpi_variability")
    clean = variability_stats(table, noise=False)
    noisy = variability_stats(table, noise=True)
    benchmark.extra_info["cov_clean"] = round(clean.cov_wall, 5)
    benchmark.extra_info["cov_noisy"] = round(noisy.cov_wall, 5)
    benchmark.extra_info["series_csv"] = str(path)
