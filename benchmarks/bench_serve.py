"""Service-core benchmark: what ``popper serve`` costs per request.

Drives a real daemon — HTTP API thread, background scheduler tick,
worker processes — against a scratch repository and records the
service-level numbers to ``BENCH_serve.json`` at the repository root:

* ``cold_seconds`` — one uncached experiment run through the full
  submit -> queue -> worker -> artifact-pool path;
* ``warm_latency_ms`` — p50/p99 submit-to-done round trip for
  cache-served submissions (the request never touches a worker);
* ``warm_qps`` — sustained cache-served submissions per second over a
  timed window;
* ``saturation`` — a burst of cold submissions against a small queue
  bound: how many were accepted (202), how many shed (429), whether a
  cache-served request still succeeded mid-saturation (the
  degrade-to-cache-only contract), and — the invariant the queue
  exists for — that *every accepted job completed*; none lost.

Run standalone (``python benchmarks/bench_serve.py``) or via pytest
(``pytest benchmarks/bench_serve.py``).
"""

import json
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_serve.json"

WARM_REQUESTS = 40
QPS_WINDOW_S = 1.0
BURST_EXPERIMENTS = 4
BURST_PER_EXPERIMENT = 3


def _post_job(api: str, experiment: str) -> tuple[int, dict]:
    request = urllib.request.Request(
        f"{api}/v1/jobs",
        data=json.dumps({"experiment": experiment}).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(int(len(ordered) * q), len(ordered) - 1)
    return ordered[index]


def _make_repo(base: Path):
    from repro.common import minyaml
    from repro.core.repo import PopperRepository

    repo = PopperRepository.init(base / "repo")
    names = ["bench"] + [f"burst-{i}" for i in range(BURST_EXPERIMENTS)]
    for name in names:
        repo.add_experiment("torpor", name)
        vars_path = repo.experiment_dir(name) / "vars.yml"
        doc = minyaml.load_file(vars_path)
        doc["runs"] = 2  # keep each cold pipeline run cheap
        minyaml.dump_file(doc, vars_path)
    return repo


def run_bench(base: Path) -> dict:
    from repro.serve import PopperServer

    repo = _make_repo(Path(base))
    daemon = PopperServer(repo, workers=2, max_queue=BURST_EXPERIMENTS)
    report: dict = {"benchmark": "serve-service-core"}
    try:
        daemon.start(api=True, loop=True)
        api = f"http://127.0.0.1:{daemon.port}"

        # Cold path: submit -> queue -> worker -> pool, end to end.
        started = time.perf_counter()
        status, doc = _post_job(api, "bench")
        assert status == 202, f"cold submit answered {status}"
        job_id = doc["id"]
        while daemon.queue.get(job_id).state not in ("done", "dead"):
            time.sleep(0.02)
        report["cold_seconds"] = round(time.perf_counter() - started, 3)
        assert daemon.queue.get(job_id).state == "done"

        # Warm path: every request is served from the artifact pool at
        # admission; the round trip *is* the submit-to-done latency.
        latencies = []
        for _ in range(WARM_REQUESTS):
            started = time.perf_counter()
            status, doc = _post_job(api, "bench")
            latencies.append((time.perf_counter() - started) * 1e3)
            assert status == 200 and doc["cached"], "warm request missed cache"
        report["warm_latency_ms"] = {
            "requests": WARM_REQUESTS,
            "p50": round(_percentile(latencies, 0.50), 2),
            "p99": round(_percentile(latencies, 0.99), 2),
        }

        deadline = time.perf_counter() + QPS_WINDOW_S
        served = 0
        while time.perf_counter() < deadline:
            status, _ = _post_job(api, "bench")
            assert status == 200
            served += 1
        report["warm_qps"] = round(served / QPS_WINDOW_S, 1)

        # Saturation: burst more cold jobs than the queue bound admits.
        accepted: list[str] = []
        shed = 0
        for round_no in range(BURST_PER_EXPERIMENT):
            for i in range(BURST_EXPERIMENTS):
                status, doc = _post_job(api, f"burst-{i}")
                if status == 202:
                    accepted.append(doc["id"])
                elif status == 429:
                    shed += 1
                else:
                    raise AssertionError(
                        f"burst submit answered {status}: {doc}"
                    )
        # Degradation contract: cache-servable work still succeeds
        # while the queue is at its bound.
        status, doc = _post_job(api, "bench")
        mid_saturation_ok = status == 200 and bool(doc.get("cached"))

        # The durability invariant: every accepted job completes.
        deadline = time.monotonic() + 120
        lost: list[str] = []
        while time.monotonic() < deadline:
            states = {j: daemon.queue.get(j).state for j in accepted}
            if all(s in ("done", "dead") for s in states.values()):
                lost = [j for j, s in states.items() if s != "done"]
                break
            time.sleep(0.05)
        else:
            raise AssertionError("accepted burst jobs never settled")

        report["saturation"] = {
            "queue_bound": BURST_EXPERIMENTS,
            "submitted": BURST_EXPERIMENTS * BURST_PER_EXPERIMENT,
            "accepted": len(accepted),
            "shed_429": shed,
            "cache_served_mid_saturation": mid_saturation_ok,
            "accepted_jobs_lost": len(lost),
        }
        report["queue_stats"] = daemon.stats()
    finally:
        daemon.drain()

    BENCH_FILE.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def test_bench_serve(tmp_path):
    report = run_bench(tmp_path)
    assert report["cold_seconds"] > 0
    warm = report["warm_latency_ms"]
    assert 0 < warm["p50"] <= warm["p99"]
    assert report["warm_qps"] > 0
    saturated = report["saturation"]
    assert saturated["accepted"] >= 1
    assert saturated["shed_429"] >= 1, "the queue bound never shed load"
    assert saturated["cache_served_mid_saturation"]
    assert saturated["accepted_jobs_lost"] == 0, "an accepted job was lost"
    assert BENCH_FILE.is_file()


if __name__ == "__main__":
    import sys
    import tempfile

    sys.path.insert(0, str(REPO_ROOT / "src"))
    with tempfile.TemporaryDirectory() as tmp:
        out = run_bench(Path(tmp))
    print(json.dumps(out, indent=2))
