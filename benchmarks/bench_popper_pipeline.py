"""End-to-end Popper pipeline cost (Listings 1-3 combined).

Times the full author loop — init repository, bootstrap an experiment
from a template, run it, validate — the "overhead of following the
convention" that the paper's practicality claim is about.
"""

import pytest

from repro.common.fsutil import write_text
from repro.core import ExperimentPipeline, PopperRepository
from repro.core.check import check_repository

FAST_VARS = "runner: torpor-variability\nruns: 2\nseed: 7\n"


def test_bench_popper_init(benchmark, tmp_path):
    counter = [0]

    def init():
        counter[0] += 1
        return PopperRepository.init(tmp_path / f"repo-{counter[0]}")

    repo = benchmark.pedantic(init, rounds=10, iterations=1)
    assert (repo.root / ".popper.yml").is_file()


def test_bench_popper_add_template(benchmark, tmp_path):
    repo = PopperRepository.init(tmp_path / "repo")
    counter = [0]

    def add():
        counter[0] += 1
        return repo.add_experiment("gassyfs", f"exp{counter[0]}")

    target = benchmark.pedantic(add, rounds=10, iterations=1)
    assert (target / "vars.yml").is_file()


def test_bench_popper_full_pipeline(benchmark, tmp_path):
    """init -> add -> shrink -> run -> validate, timed as one unit."""
    counter = [0]

    def full():
        counter[0] += 1
        repo = PopperRepository.init(tmp_path / f"paper-{counter[0]}")
        repo.add_experiment("torpor", "myexp")
        write_text(repo.experiment_dir("myexp") / "vars.yml", FAST_VARS)
        return ExperimentPipeline(repo, "myexp").run()

    result = benchmark.pedantic(full, rounds=3, iterations=1)
    assert result.validated


def test_bench_popper_check(benchmark, tmp_path):
    repo = PopperRepository.init(tmp_path / "repo")
    for i, template in enumerate(("gassyfs", "torpor", "jupyter-bww")):
        repo.add_experiment(template, f"exp{i}")
    report = benchmark(check_repository, repo)
    assert report.compliant
