"""Scenario-fuzzer throughput and memoization characterization.

Measures what ``popper fuzz`` costs and what the feedback loop buys,
recording the result to ``BENCH_fuzz.json`` at the repository root:

* variants/second end-to-end (mutation + sandbox materialization +
  pipeline execution + oracle + coverage bookkeeping),
* the artifact-cache hit rate *across mutants* — most mutations leave
  most stages' inputs untouched, so the memoized DAG engine should
  serve a growing share of stage executions from cache as the campaign
  proceeds,
* the corpus and coverage growth curve per round — coverage-guided
  generation should keep finding novelty early and saturate later.

Run standalone (``python benchmarks/bench_fuzz.py``) or via pytest
(``pytest benchmarks/bench_fuzz.py``).
"""

import json
import tempfile
import time
from pathlib import Path

from conftest import save_figure_data

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_fuzz.json"

SEED = 1234
ROUNDS = 4
ITERATIONS_PER_ROUND = 6


def _fresh_repo(base: Path):
    from repro.common import minyaml
    from repro.core.repo import PopperRepository

    repo = PopperRepository.init(base / "repo")
    repo.add_experiment("torpor", "bench")
    vars_path = repo.experiment_dir("bench") / "vars.yml"
    doc = minyaml.load_file(vars_path)
    doc["runs"] = 2  # keep each sandboxed pipeline run cheap
    minyaml.dump_file(doc, vars_path)
    return repo


def run_bench() -> dict:
    from repro.fuzz import FuzzCampaign

    rounds = []
    executed = hits = misses = 0
    with tempfile.TemporaryDirectory(prefix="bench-fuzz-") as scratch:
        repo = _fresh_repo(Path(scratch))
        started = time.perf_counter()
        for rnd in range(ROUNDS):
            campaign = FuzzCampaign(
                repo,
                seed=SEED + rnd,
                iterations=ITERATIONS_PER_ROUND,
                do_minimize=False,
            )
            report = campaign.run()
            executed += report.executed
            hits += report.cache_hits
            misses += report.cache_misses
            total = report.cache_hits + report.cache_misses
            rounds.append(
                {
                    "round": rnd,
                    "executed": report.executed,
                    "duplicates": report.duplicates,
                    "novel_keys": report.novel_keys,
                    "coverage_size": report.coverage_size,
                    "corpus_size": report.corpus_size,
                    "cache_hit_rate": report.cache_hits / total if total else 0.0,
                }
            )
        elapsed = time.perf_counter() - started

    overall = hits + misses
    report = {
        "benchmark": "scenario-fuzzer",
        "seed": SEED,
        "rounds": ROUNDS,
        "iterations_per_round": ITERATIONS_PER_ROUND,
        "variants_executed": executed,
        "wall_seconds": round(elapsed, 3),
        "variants_per_sec": round(executed / elapsed, 2) if elapsed else 0.0,
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_rate_across_mutants": round(hits / overall, 3)
        if overall
        else 0.0,
        "growth": rounds,
    }
    BENCH_FILE.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    save_figure_data(_growth_table(rounds), "table_fuzz_growth")
    return report


def _growth_table(rounds):
    from repro.common.tables import MetricsTable

    table = MetricsTable(
        ["round", "executed", "novel_keys", "coverage_size", "corpus_size",
         "cache_hit_rate"]
    )
    for row in rounds:
        table.append({k: row[k] for k in table.columns})
    return table


def test_bench_fuzz_campaign():
    report = run_bench()
    assert report["variants_executed"] > 0
    assert report["variants_per_sec"] > 0
    growth = report["growth"]
    # coverage and corpus are cumulative across rounds (persistent
    # .pvcs/fuzz/ state): the curves never go backwards
    for a, b in zip(growth, growth[1:]):
        assert b["coverage_size"] >= a["coverage_size"]
        assert b["corpus_size"] >= a["corpus_size"]
    # the first round discovers the baseline behaviours
    assert growth[0]["novel_keys"] > 0
    # memoization pays across mutants: once the store is warm, some
    # stage executions are served from cache
    assert report["cache_hits"] > 0
    assert BENCH_FILE.is_file()


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    print(json.dumps(run_bench(), indent=2))
