"""Shared helpers for the benchmark harness.

Every ``bench_fig_*`` module regenerates one of the paper's figures:
it runs the experiment, asserts the figure's *shape* (who wins, by what
rough factor, where the curve bends — absolute numbers are simulator
outputs), saves the underlying series to ``benchmarks/output/*.csv``
and registers headline numbers in the pytest-benchmark ``extra_info``
so they appear in ``--benchmark-json`` exports.
"""

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def save_figure_data(table, name: str) -> Path:
    """Persist a figure's underlying rows as a CSV artifact."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.csv"
    table.save_csv(path)
    return path
