"""Automated performance-regression testing (§"Automated Validation").

Characterizes the full ``repro.check`` detector battery under realistic
run-to-run noise and records the result to ``BENCH_regression.json`` at
the repository root:

* per-detector recall across injected slowdown magnitudes (does a 30 %
  slowdown actually get caught, and by whom?),
* per-detector false-positive rate on clean commit pairs (how often
  would an innocent commit be flagged?),
* per-detector latency of one verdict (paid on every CI build and every
  ``no_regression`` assertion).

The firm-verdict rate is what is measured — a CI gate acts on firm
degradations only — while ``suspicious_rate`` (firm + maybe) shows how
much extra signal the graded vocabulary surfaces.  Run standalone
(``python benchmarks/bench_ci_regression.py``) or via pytest
(``pytest benchmarks/bench_ci_regression.py``).
"""

import json
import time
from pathlib import Path

from conftest import save_figure_data

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_regression.json"

NOISE_COV = 0.03
SAMPLES = 10
TRIALS = 60
SLOWDOWNS = (0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50)
LATENCY_ROUNDS = 50


def _detectors():
    from repro.check.detectors import default_detectors

    return default_detectors(threshold=0.10)


def _trial_series(rng, mean):
    return mean * (1.0 + NOISE_COV * rng.standard_normal(SAMPLES))


def _characterize() -> dict:
    """Firm / suspicious verdict rates per detector per slowdown."""
    from repro.common.rng import derive_rng

    rates: dict[str, dict[float, dict[str, float]]] = {}
    for detector in _detectors():
        per_slowdown = {}
        for slowdown in SLOWDOWNS:
            rng = derive_rng(99, "gate", detector.name, str(slowdown))
            firm = suspicious = 0
            for _ in range(TRIALS):
                baseline = _trial_series(rng, 10.0)
                current = _trial_series(rng, 10.0 * (1.0 + slowdown))
                verdict = detector.detect(baseline, current)
                firm += verdict.regressed
                suspicious += verdict.suspicious
            per_slowdown[slowdown] = {
                "detection_rate": firm / TRIALS,
                "suspicious_rate": suspicious / TRIALS,
            }
        rates[detector.name] = per_slowdown
    return rates


def _latencies() -> dict[str, float]:
    """Seconds per single verdict, per detector (median of rounds)."""
    from repro.common.rng import derive_rng

    out = {}
    for detector in _detectors():
        rng = derive_rng(1, "latency", detector.name)
        baseline = _trial_series(rng, 10.0)
        current = _trial_series(rng, 10.5)
        detector.detect(baseline, current)  # warm-up (imports, caches)
        samples = []
        for _ in range(LATENCY_ROUNDS):
            started = time.perf_counter()
            detector.detect(baseline, current)
            samples.append(time.perf_counter() - started)
        samples.sort()
        out[detector.name] = samples[len(samples) // 2]
    return out


def _roc_table(rates: dict):
    from repro.common.tables import MetricsTable

    table = MetricsTable(
        ["detector", "slowdown_pct", "detection_rate", "suspicious_rate"]
    )
    for detector, per_slowdown in rates.items():
        for slowdown, entry in per_slowdown.items():
            table.append(
                {
                    "detector": detector,
                    "slowdown_pct": 100 * slowdown,
                    "detection_rate": entry["detection_rate"],
                    "suspicious_rate": entry["suspicious_rate"],
                }
            )
    return table


def run_bench() -> dict:
    rates = _characterize()
    latencies = _latencies()
    report = {
        "benchmark": "regression-detector-suite",
        "trials_per_point": TRIALS,
        "samples_per_series": SAMPLES,
        "noise_cov": NOISE_COV,
        "threshold": 0.10,
        "detectors": {
            name: {
                "false_positive_rate": per_slowdown[0.0]["detection_rate"],
                "suspicious_false_positive_rate": per_slowdown[0.0][
                    "suspicious_rate"
                ],
                "recall_at_30pct": per_slowdown[0.30]["detection_rate"],
                "recall_at_50pct": per_slowdown[0.50]["detection_rate"],
                "suspicious_at_30pct": per_slowdown[0.30]["suspicious_rate"],
                "suspicious_at_50pct": per_slowdown[0.50]["suspicious_rate"],
                "micros_per_check": round(latencies[name] * 1e6, 1),
                "roc": {
                    f"{100 * slowdown:.0f}%": entry["detection_rate"]
                    for slowdown, entry in per_slowdown.items()
                },
            }
            for name, per_slowdown in rates.items()
        },
    }
    BENCH_FILE.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    save_figure_data(_roc_table(rates), "table_ci_regression_roc")
    return report


def test_bench_detector_suite():
    report = run_bench()
    detectors = report["detectors"]
    assert set(detectors) == {
        "average-amount",
        "best-model",
        "integral",
        "exclusive-time-outliers",
    }
    # the gating detector keeps the historical contract: quiet on clean
    # pairs, near-certain on a 30% slowdown
    gate = detectors["average-amount"]
    assert gate["false_positive_rate"] < 0.05
    assert gate["recall_at_30pct"] > 0.95
    # no detector fires firm on identical distributions more than rarely
    assert all(d["false_positive_rate"] <= 0.10 for d in detectors.values())
    # every detector at least suspects a 50% slowdown most of the time
    # (best-model is shape-focused and grades level moves as "maybe",
    # so firm recall is asserted only on the location detectors)
    assert all(d["suspicious_at_50pct"] > 0.6 for d in detectors.values())
    for name in ("integral", "exclusive-time-outliers"):
        assert detectors[name]["recall_at_50pct"] > 0.6
    # a verdict is cheap enough to run on every build
    assert all(d["micros_per_check"] < 100_000 for d in detectors.values())
    assert BENCH_FILE.is_file()


def test_gate_detection_curve_is_monotone():
    """More slowdown, more detections — per detector, modulo noise."""
    rates = _characterize()
    for name, per_slowdown in rates.items():
        curve = [per_slowdown[s]["detection_rate"] for s in SLOWDOWNS]
        assert all(
            b >= a - 0.10 for a, b in zip(curve, curve[1:])
        ), f"{name} detection curve not monotone: {curve}"


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    print(json.dumps(run_bench(), indent=2))
