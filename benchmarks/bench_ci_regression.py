"""Automated performance-regression testing (§"Automated Validation").

Measures the regression gate's operating characteristics under realistic
run-to-run noise: recall on injected slowdowns of various magnitudes and
false-positive rate on clean commits — the numbers that justify wiring
the gate into CI.
"""

import numpy as np
import pytest

from conftest import save_figure_data

from repro.common.rng import derive_rng
from repro.common.tables import MetricsTable
from repro.ci.regression import RegressionGate

NOISE_COV = 0.03
SAMPLES = 10
TRIALS = 60


def _trial_series(rng, mean):
    return mean * (1.0 + NOISE_COV * rng.standard_normal(SAMPLES))


def _characterize() -> MetricsTable:
    gate = RegressionGate(threshold=0.10, alpha=0.05)
    table = MetricsTable(["slowdown_pct", "detection_rate"])
    for slowdown in (0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50):
        rng = derive_rng(99, "gate", str(slowdown))
        hits = 0
        for _ in range(TRIALS):
            baseline = _trial_series(rng, 10.0)
            current = _trial_series(rng, 10.0 * (1.0 + slowdown))
            if gate.check(baseline, current).regressed:
                hits += 1
        table.append(
            {"slowdown_pct": 100 * slowdown, "detection_rate": hits / TRIALS}
        )
    return table


@pytest.fixture(scope="module")
def roc_table():
    return _characterize()


class TestGateCharacteristics:
    def test_low_false_positive_rate(self, roc_table):
        clean = roc_table.where_equals(slowdown_pct=0.0)[0]
        assert clean["detection_rate"] < 0.05

    def test_high_recall_on_large_regressions(self, roc_table):
        big = roc_table.where_equals(slowdown_pct=30.0)[0]
        assert big["detection_rate"] > 0.95

    def test_monotone_detection_curve(self, roc_table):
        rates = roc_table.sort_by("slowdown_pct").column("detection_rate")
        assert all(b >= a - 0.05 for a, b in zip(rates, rates[1:]))

    def test_threshold_region_soft(self, roc_table):
        """Right at the threshold, detection is genuinely uncertain —
        noise at cov=3% straddles a 10% cut."""
        edge = roc_table.where_equals(slowdown_pct=10.0)[0]
        assert 0.05 < edge["detection_rate"] <= 1.0


def test_bench_regression_gate(benchmark, output_dir):
    table = benchmark.pedantic(_characterize, rounds=1, iterations=1)
    path = save_figure_data(table, "table_ci_regression_roc")
    benchmark.extra_info["series_csv"] = str(path)
    benchmark.extra_info["roc"] = {
        f"{r['slowdown_pct']:.0f}%": r["detection_rate"] for r in table
    }


def test_bench_single_gate_check(benchmark):
    """Latency of one gate decision (runs on every CI build)."""
    rng = derive_rng(1, "latency")
    baseline = _trial_series(rng, 10.0)
    current = _trial_series(rng, 10.5)
    gate = RegressionGate()
    benchmark(lambda: gate.check(baseline, current))
