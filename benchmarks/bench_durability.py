"""Durability overhead: what crash consistency costs per write.

Measures the write primitives the crash-consistency layer hardened and
records them to ``BENCH_durability.json`` at the repository root:

* ``atomic_write`` — durable (fsync temp + parent directory) vs
  non-durable (flush only, the ``durable=False`` hot path checkouts
  use), microseconds per write;
* ``journal_append`` — durable vs non-durable appends to one open
  JSONL handle (run-state checkpoints default durable, journals flush
  only);
* ``repo_lock`` — one uncontended RepoLock acquire/release round trip,
  the per-critical-section cost every store publish now pays.

Payload sizes mirror the real call sites: refs and index records are
tiny, journal lines are a few hundred bytes.  Run standalone
(``python benchmarks/bench_durability.py``) or via pytest
(``pytest benchmarks/bench_durability.py``).
"""

import json
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_durability.json"

WRITES = 300
PAYLOAD = b'{"task": "run", "outputs": ["results.csv"], "seconds": 1.25}\n' * 4
LINE = json.dumps({"seq": 1, "event": "task_finished", "task": "exp-one"})


def bench_atomic_write(base: Path, durable: bool) -> float:
    from repro.common.fsutil import atomic_write

    target = base / ("durable" if durable else "fast") / "record.json"
    target.parent.mkdir(parents=True)
    started = time.perf_counter()
    for _ in range(WRITES):
        atomic_write(target, PAYLOAD, durable=durable)
    return (time.perf_counter() - started) / WRITES


def bench_journal_append(base: Path, durable: bool) -> float:
    from repro.common.fsutil import journal_append

    path = base / f"journal-{'durable' if durable else 'fast'}.jsonl"
    with open(path, "a", encoding="utf-8") as handle:
        started = time.perf_counter()
        for _ in range(WRITES):
            journal_append(handle, LINE, durable=durable)
        elapsed = time.perf_counter() - started
    return elapsed / WRITES


def bench_lock(base: Path) -> float:
    from repro.common.locking import RepoLock

    lock = RepoLock(base / "bench.lock", label="bench")
    started = time.perf_counter()
    for _ in range(WRITES):
        with lock:
            pass
    return (time.perf_counter() - started) / WRITES


def run_bench(base: Path) -> dict:
    def mode(seconds_per_write, baseline=None):
        entry = {"micros_per_write": round(seconds_per_write * 1e6, 1)}
        if baseline:
            entry["cost_vs_fast"] = round(seconds_per_write / baseline, 1)
        return entry

    aw_fast = bench_atomic_write(base, durable=False)
    aw_durable = bench_atomic_write(base, durable=True)
    ja_fast = bench_journal_append(base, durable=False)
    ja_durable = bench_journal_append(base, durable=True)
    lock_s = bench_lock(base)

    report = {
        "benchmark": "crash-consistency-durability",
        "writes_per_mode": WRITES,
        "modes": {
            "atomic_write": {
                "fast": mode(aw_fast),
                "durable": mode(aw_durable, baseline=aw_fast),
            },
            "journal_append": {
                "fast": mode(ja_fast),
                "durable": mode(ja_durable, baseline=ja_fast),
            },
            "repo_lock_round_trip": mode(lock_s),
        },
    }
    BENCH_FILE.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def test_bench_durability(tmp_path):
    report = run_bench(tmp_path)
    modes = report["modes"]
    assert modes["atomic_write"]["durable"]["micros_per_write"] > 0
    assert modes["journal_append"]["fast"]["micros_per_write"] > 0
    assert modes["repo_lock_round_trip"]["micros_per_write"] > 0
    assert BENCH_FILE.is_file()


if __name__ == "__main__":
    import sys
    import tempfile

    sys.path.insert(0, str(REPO_ROOT / "src"))
    with tempfile.TemporaryDirectory() as tmp:
        out = run_bench(Path(tmp))
    print(json.dumps(out, indent=2))
