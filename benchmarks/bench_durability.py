"""Durability overhead: what crash consistency costs per write.

Measures the write primitives the crash-consistency layer hardened and
records them to ``BENCH_durability.json`` at the repository root:

* ``atomic_write`` — durable (fsync temp + parent directory) vs
  non-durable (flush only, the ``durable=False`` hot path checkouts
  use), microseconds per write;
* ``journal_append`` — durable vs non-durable appends to one open
  JSONL handle (run-state checkpoints default durable, journals flush
  only);
* ``group_commit`` — the same durable append stream through a
  :class:`~repro.common.groupcommit.GroupCommitWriter`, whose windowed
  fsync is the whole point of the storage hot-path work: durable
  appends must land under 10x the buffered cost;
* ``repo_lock`` — one uncontended RepoLock acquire/release round trip,
  the per-critical-section cost every store publish now pays;
* ``object_store_10k`` — ingest 10 000 small objects into a
  ContentStore, read them all back, repack them into one packfile and
  read them all again: the loose-vs-packed cost model at the scale
  ``popper fuzz`` and result sweeps actually write.

Payload sizes mirror the real call sites: refs and index records are
tiny, journal lines are a few hundred bytes.  Run standalone
(``python benchmarks/bench_durability.py``) or via pytest
(``pytest benchmarks/bench_durability.py``).
"""

import json
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_durability.json"

WRITES = 300
PAYLOAD = b'{"task": "run", "outputs": ["results.csv"], "seconds": 1.25}\n' * 4
LINE = json.dumps({"seq": 1, "event": "task_finished", "task": "exp-one"})


def bench_atomic_write(base: Path, durable: bool) -> float:
    from repro.common.fsutil import atomic_write

    target = base / ("durable" if durable else "fast") / "record.json"
    target.parent.mkdir(parents=True)
    started = time.perf_counter()
    for _ in range(WRITES):
        atomic_write(target, PAYLOAD, durable=durable)
    return (time.perf_counter() - started) / WRITES


def bench_journal_append(base: Path, durable: bool) -> float:
    from repro.common.fsutil import journal_append

    path = base / f"journal-{'durable' if durable else 'fast'}.jsonl"
    with open(path, "a", encoding="utf-8") as handle:
        started = time.perf_counter()
        for _ in range(WRITES):
            journal_append(handle, LINE, durable=durable)
        elapsed = time.perf_counter() - started
    return elapsed / WRITES


def bench_group_commit(base: Path, batched: bool) -> float:
    from repro.common.groupcommit import GroupCommitWriter

    path = base / f"group-{'batched' if batched else 'stream'}.jsonl"
    writer = GroupCommitWriter(path, durable=True)
    started = time.perf_counter()
    if batched:
        with writer.batched():
            for _ in range(WRITES):
                writer.append(LINE)
    else:
        for _ in range(WRITES):
            writer.append(LINE)
    writer.flush()
    elapsed = time.perf_counter() - started
    writer.close()
    return elapsed / WRITES


OBJECTS_10K = 10_000


def bench_object_store(base: Path) -> dict:
    """10k-object ingest/read/repack/read suite (microseconds each)."""
    import hashlib

    from repro.store.cas import ContentStore

    store = ContentStore(base / "pool-10k" / "objects", durable=False)
    affix = hashlib.sha256(b"bench-affix").digest() * 8  # 256B shared
    payloads = [
        affix + f"row,{i},{i * 0.25:.2f}\n".encode("ascii") + affix
        for i in range(OBJECTS_10K)
    ]

    started = time.perf_counter()
    oids = [store.put_bytes(p).oid for p in payloads]
    ingest = time.perf_counter() - started

    started = time.perf_counter()
    for oid in oids:
        store.get_bytes(oid)
    read_loose = time.perf_counter() - started

    started = time.perf_counter()
    report = store.repack()
    repack = time.perf_counter() - started

    started = time.perf_counter()
    for oid in oids:
        store.get_bytes(oid)
    read_packed = time.perf_counter() - started

    return {
        "objects": OBJECTS_10K,
        "ingest_micros_per_object": round(ingest / OBJECTS_10K * 1e6, 1),
        "read_loose_micros_per_object": round(
            read_loose / OBJECTS_10K * 1e6, 1
        ),
        "repack_seconds": round(repack, 2),
        "read_packed_micros_per_object": round(
            read_packed / OBJECTS_10K * 1e6, 1
        ),
        "delta_objects": report.deltas,
        "bytes_loose": report.bytes_before,
        "bytes_packed": report.bytes_after,
    }


def bench_lock(base: Path) -> float:
    from repro.common.locking import RepoLock

    lock = RepoLock(base / "bench.lock", label="bench")
    started = time.perf_counter()
    for _ in range(WRITES):
        with lock:
            pass
    return (time.perf_counter() - started) / WRITES


def run_bench(base: Path) -> dict:
    def mode(seconds_per_write, baseline=None):
        entry = {"micros_per_write": round(seconds_per_write * 1e6, 1)}
        if baseline:
            entry["cost_vs_fast"] = round(seconds_per_write / baseline, 1)
        return entry

    aw_fast = bench_atomic_write(base, durable=False)
    aw_durable = bench_atomic_write(base, durable=True)
    ja_fast = bench_journal_append(base, durable=False)
    ja_durable = bench_journal_append(base, durable=True)
    gc_stream = bench_group_commit(base, batched=False)
    gc_batched = bench_group_commit(base, batched=True)
    lock_s = bench_lock(base)
    store_10k = bench_object_store(base)

    report = {
        "benchmark": "crash-consistency-durability",
        "writes_per_mode": WRITES,
        "modes": {
            "atomic_write": {
                "fast": mode(aw_fast),
                "durable": mode(aw_durable, baseline=aw_fast),
            },
            "journal_append": {
                "fast": mode(ja_fast),
                "durable": mode(ja_durable, baseline=ja_fast),
            },
            "group_commit": {
                # Same durability contract as journal_append/durable
                # (at most one unsynced window lost to a power cut),
                # priced against the same buffered baseline.
                "durable_stream": mode(gc_stream, baseline=ja_fast),
                "durable_batched": mode(gc_batched, baseline=ja_fast),
            },
            "repo_lock_round_trip": mode(lock_s),
            "object_store_10k": store_10k,
        },
    }
    BENCH_FILE.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def test_bench_durability(tmp_path):
    report = run_bench(tmp_path)
    modes = report["modes"]
    assert modes["atomic_write"]["durable"]["micros_per_write"] > 0
    assert modes["journal_append"]["fast"]["micros_per_write"] > 0
    assert modes["repo_lock_round_trip"]["micros_per_write"] > 0
    # The acceptance bar for the group-commit work: durable appends at
    # under 10x the buffered cost (per-line fsync paid >100x).
    assert modes["group_commit"]["durable_stream"]["cost_vs_fast"] < 10
    store = modes["object_store_10k"]
    assert store["objects"] == OBJECTS_10K
    assert store["bytes_packed"] < store["bytes_loose"]
    assert BENCH_FILE.is_file()


if __name__ == "__main__":
    import sys
    import tempfile

    sys.path.insert(0, str(REPO_ROOT / "src"))
    with tempfile.TemporaryDirectory() as tmp:
        out = run_bench(Path(tmp))
    print(json.dumps(out, indent=2))
