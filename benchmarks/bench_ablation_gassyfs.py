"""Ablation: GassyFS design choices (DESIGN.md).

Quantifies the two knobs the FS exposes that the paper's mount-option
discussion motivates: the block-placement policy and the block size.
Shape expectations: striping (round-robin/hash) beats local-first for a
remote-heavy parallel workload at scale, and pathologically small blocks
pay per-message latency.
"""

import pytest

from conftest import save_figure_data

from repro.common.rng import SeedSequenceFactory
from repro.common.tables import MetricsTable
from repro.gassyfs import (
    GassyFS,
    GasnetCluster,
    MountOptions,
    SequentialIO,
    make_policy,
)
from repro.gassyfs.experiment import ScalabilityConfig, run_point
from repro.gassyfs.workloads import CompileWorkload
from repro.platform.sites import default_sites

WORKLOAD = CompileWorkload(
    name="ablation", files=60, source_kib=128, object_kib=128,
    compile_ops=3e8, configure_ops=5e8, link_ops=1e9,
)
POLICIES = ("round-robin", "local-first", "hash", "least-used")
BLOCK_SIZES = (1 << 12, 1 << 16, 1 << 20, 1 << 22)


def _policy_table() -> MetricsTable:
    table = MetricsTable(["policy", "nodes", "time"])
    for policy in POLICIES:
        for nodes in (2, 4, 8):
            sites = default_sites(42)
            config = ScalabilityConfig(
                node_counts=(nodes,), sites=("cloudlab-wisc",),
                workloads=(WORKLOAD,), placement=policy, seed=42,
            )
            elapsed = run_point(
                sites["cloudlab-wisc"], nodes, WORKLOAD, config,
                SeedSequenceFactory(42),
            )
            table.append({"policy": policy, "nodes": nodes, "time": elapsed})
    return table


def _blocksize_table() -> MetricsTable:
    table = MetricsTable(["block_size", "write_s", "read_s"])
    for block_size in BLOCK_SIZES:
        sites = default_sites(42)
        with sites["cloudlab-wisc"].allocate(4) as allocation:
            fs = GassyFS(
                GasnetCluster(allocation),
                options=MountOptions(block_size=block_size),
                policy=make_policy("round-robin"),
            )
            write_s, read_s = SequentialIO(total_bytes=1 << 26).run(
                fs, SeedSequenceFactory(42)
            )
        table.append(
            {"block_size": block_size, "write_s": write_s, "read_s": read_s}
        )
    return table


@pytest.fixture(scope="module")
def policy_table():
    return _policy_table()


@pytest.fixture(scope="module")
def blocksize_table():
    return _blocksize_table()


class TestPlacementAblation:
    def test_striping_beats_local_first_at_scale(self, policy_table):
        rr = policy_table.where_equals(policy="round-robin", nodes=8)
        lf = policy_table.where_equals(policy="local-first", nodes=8)
        assert rr.column("time")[0] < lf.column("time")[0]

    def test_all_policies_complete(self, policy_table):
        assert len(policy_table) == len(POLICIES) * 3
        assert all(t > 0 for t in policy_table.column("time"))


class TestBlockSizeAblation:
    def test_tiny_blocks_pay_latency(self, blocksize_table):
        ordered = blocksize_table.sort_by("block_size")
        reads = ordered.column("read_s")
        assert reads[0] > 1.5 * reads[-1]

    def test_diminishing_returns_past_1mib(self, blocksize_table):
        one_mib = blocksize_table.where_equals(block_size=1 << 20).column("read_s")[0]
        four_mib = blocksize_table.where_equals(block_size=1 << 22).column("read_s")[0]
        assert abs(one_mib - four_mib) / one_mib < 0.25


def test_bench_placement_ablation(benchmark, output_dir):
    table = benchmark.pedantic(_policy_table, rounds=1, iterations=1)
    save_figure_data(table, "ablation_gassyfs_placement")
    at8 = {
        r["policy"]: round(r["time"], 3)
        for r in table.where_equals(nodes=8)
    }
    benchmark.extra_info["time_at_8_nodes"] = at8


def test_bench_blocksize_ablation(benchmark, output_dir):
    table = benchmark.pedantic(_blocksize_table, rounds=1, iterations=1)
    save_figure_data(table, "ablation_gassyfs_blocksize")
    benchmark.extra_info["read_s_by_block"] = {
        str(r["block_size"]): round(r["read_s"], 4) for r in table
    }


def _replication_table() -> MetricsTable:
    """Write cost and fault-survival across replication factors."""
    from repro.common.errors import FSError

    table = MetricsTable(["replicas", "write_s", "survives_one_failure"])
    for replicas in (1, 2, 3):
        sites = default_sites(42)
        with sites["cloudlab-wisc"].allocate(4) as allocation:
            fs = GassyFS(
                GasnetCluster(allocation),
                options=MountOptions(block_size=1 << 20, replicas=replicas),
                policy=make_policy("round-robin"),
            )
            payload = b"x" * (1 << 24)
            fs.create("/data")
            fs.write("/data", payload)
            write_s = fs.last_op_elapsed
            fs.fail_node(1)
            try:
                fs.read("/data")
                survives = True
            except FSError:
                survives = False
        table.append(
            {
                "replicas": replicas,
                "write_s": write_s,
                "survives_one_failure": survives,
            }
        )
    return table


@pytest.fixture(scope="module")
def replication_table():
    return _replication_table()


class TestReplicationAblation:
    def test_durability_costs_write_bandwidth(self, replication_table):
        ordered = replication_table.sort_by("replicas")
        writes = ordered.column("write_s")
        assert writes[0] < writes[1] < writes[2]

    def test_single_copy_is_fragile(self, replication_table):
        by_replicas = {
            r["replicas"]: r["survives_one_failure"] for r in replication_table
        }
        assert by_replicas[1] is False
        assert by_replicas[2] is True and by_replicas[3] is True


def test_bench_replication_ablation(benchmark, output_dir):
    table = benchmark.pedantic(_replication_table, rounds=1, iterations=1)
    save_figure_data(table, "ablation_gassyfs_replication")
    benchmark.extra_info["write_s_by_replicas"] = {
        str(r["replicas"]): round(r["write_s"], 4) for r in table
    }
