"""Fig. `gassyfs-git` — GassyFS scalability compiling Git.

Paper: runtime decreases with GASNet cluster size, sublinearly, on every
platform; the Listing 3 Aver assertion holds on the results.  The bench
regenerates the full sweep, checks that shape, and times one sweep.
"""

import pytest

from conftest import save_figure_data

from repro.aver import check
from repro.gassyfs import ScalabilityConfig, run_scalability_experiment

NODE_COUNTS = (1, 2, 4, 8, 16)
SITES = ("cloudlab-wisc", "ec2")


def _sweep():
    config = ScalabilityConfig(
        node_counts=NODE_COUNTS, sites=SITES, placement="round-robin", seed=42
    )
    return run_scalability_experiment(config)


@pytest.fixture(scope="module")
def figure_table():
    return _sweep()


class TestFigureShape:
    """Shape assertions for the regenerated figure."""

    def test_monotone_decreasing_on_every_platform(self, figure_table):
        for machine in SITES:
            series = figure_table.where_equals(machine=machine).sort_by("nodes")
            times = series.column("time")
            assert all(a > b for a, b in zip(times, times[1:])), machine

    def test_sublinear_listing3_assertion(self, figure_table):
        result = check(
            "when workload=* and machine=* expect sublinear(nodes, time)",
            figure_table,
        )
        assert result.passed

    def test_curve_flattens(self, figure_table):
        series = figure_table.where_equals(machine="cloudlab-wisc").sort_by("nodes")
        times = series.column("time")
        first_gain = times[0] / times[1]
        last_gain = times[-2] / times[-1]
        assert first_gain > last_gain

    def test_virtualized_platform_slower(self, figure_table):
        for nodes in NODE_COUNTS:
            cl = figure_table.where_equals(machine="cloudlab-wisc", nodes=nodes)
            ec2 = figure_table.where_equals(machine="ec2", nodes=nodes)
            assert ec2.column("time")[0] > cl.column("time")[0]


def test_bench_gassyfs_sweep(benchmark, output_dir):
    """Time the full figure regeneration and export the series."""
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    path = save_figure_data(table, "fig_gassyfs_git")
    one = table.where_equals(machine="cloudlab-wisc", nodes=1).column("time")[0]
    sixteen = table.where_equals(machine="cloudlab-wisc", nodes=16).column("time")[0]
    benchmark.extra_info["speedup_at_16_nodes"] = round(one / sixteen, 2)
    benchmark.extra_info["series_csv"] = str(path)
    assert one / sixteen > 4  # scaling pays off, but far from 16x (sublinear)
