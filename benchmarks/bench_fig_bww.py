"""Fig. `bww-airtemp` — Big-Weather-Web air-temperature analysis.

Shape: seasonal zonal-mean temperature shows the equator-to-pole
gradient; the hemispheres' seasonal cycles are anti-phased (NH warm in
JJA, SH warm in DJF); the seasonal amplitude grows poleward.
"""

import numpy as np
import pytest

from conftest import save_figure_data

from repro.weather import analyze_air_temperature, generate_air_temperature


def _analysis():
    air = generate_air_temperature(seed=42, years=1, lat_step=5.0, lon_step=5.0)
    return analyze_air_temperature(air)


@pytest.fixture(scope="module")
def analysis():
    return _analysis()


class TestFigureShape:
    def test_equator_to_pole_gradient(self, analysis):
        assert analysis.equator_minus_pole_k > 30

    def test_antiphased_hemispheres(self, analysis):
        lats, jja = analysis.zonal_series("JJA")
        _, djf = analysis.zonal_series("DJF")
        assert np.all(jja[lats > 30] > djf[lats > 30])
        assert np.all(djf[lats < -30] > jja[lats < -30])

    def test_amplitude_grows_poleward(self, analysis):
        table = analysis.seasonal_amplitude_by_lat
        tropics = np.mean([r["amplitude"] for r in table if abs(r["lat"]) < 15])
        poles = np.mean([r["amplitude"] for r in table if abs(r["lat"]) > 60])
        assert poles > 3 * tropics

    def test_global_mean_earthlike(self, analysis):
        assert 270 < analysis.global_mean_k < 295


def test_bench_bww_analysis(benchmark, output_dir):
    analysis = benchmark.pedantic(_analysis, rounds=1, iterations=1)
    path = save_figure_data(analysis.seasonal_zonal, "fig_bww_airtemp")
    benchmark.extra_info["global_mean_k"] = round(analysis.global_mean_k, 2)
    benchmark.extra_info["series_csv"] = str(path)
