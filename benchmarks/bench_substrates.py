"""Substrate micro-benchmarks: the fixed costs of the toolchain itself.

The paper's practicality argument rests on the DevOps plumbing being
cheap relative to experiments.  These benches keep that claim honest for
this implementation: Aver evaluation, VCS snapshot/commit, container
image builds and playbook fan-out.
"""

import pytest

from repro.aver import check, parse_statement
from repro.common.tables import MetricsTable
from repro.container import ImageBuilder, Registry
from repro.orchestration import (
    ContainerConnection,
    Inventory,
    Playbook,
    PlaybookRunner,
)
from repro.vcs import Repository


# --- Aver ------------------------------------------------------------------

@pytest.fixture(scope="module")
def big_results_table():
    table = MetricsTable(["workload", "machine", "nodes", "time"])
    for workload in range(4):
        for machine in range(8):
            for nodes in (1, 2, 4, 8, 16):
                for run in range(5):
                    table.append(
                        {
                            "workload": f"w{workload}",
                            "machine": f"m{machine}",
                            "nodes": nodes,
                            "time": 100.0 / nodes**0.6 + run * 0.01,
                        }
                    )
    return table


def test_bench_aver_parse(benchmark):
    benchmark(
        parse_statement,
        "when workload=* and machine=* expect sublinear(nodes, time) "
        "and within(time, 0, 1000) and count() >= 5",
    )


def test_bench_aver_eval_wildcard_groups(benchmark, big_results_table):
    """Evaluate Listing 3 over 32 wildcard groups x 25 rows."""
    result = benchmark(
        check,
        "when workload=* and machine=* expect sublinear(nodes, time)",
        big_results_table,
    )
    assert result.passed
    assert len(result.groups) == 32


# --- VCS ----------------------------------------------------------------------

def test_bench_vcs_snapshot_commit(benchmark, tmp_path):
    """Stage-and-commit a 100-file tree (the per-iteration cost of
    keeping every experiment artifact versioned)."""
    repo = Repository.init(tmp_path / "repo")
    for i in range(100):
        path = repo.root / f"dir{i % 10}" / f"file{i}.txt"
        path.parent.mkdir(exist_ok=True)
        path.write_text(f"content {i}\n")

    counter = [0]

    def snapshot():
        counter[0] += 1
        (repo.root / "dir0" / "file0.txt").write_text(f"rev {counter[0]}\n")
        repo.add_all()
        return repo.commit(f"rev {counter[0]}")

    oid = benchmark.pedantic(snapshot, rounds=20, iterations=1)
    assert len(oid) == 64


def test_bench_vcs_log_walk(benchmark, tmp_path):
    repo = Repository.init(tmp_path / "repo")
    for i in range(50):
        (repo.root / "f.txt").write_text(f"v{i}")
        repo.add("f.txt")
        repo.commit(f"v{i}")
    entries = benchmark(repo.log)
    assert len(entries) == 50


# --- container builds ------------------------------------------------------------

CONTAINERFILE = """\
FROM scratch
RUN pkg install gassyfs stress-ng openmpi
ENV MODE=experiment
WORKDIR /exp
RUN echo ready > /exp/status
LABEL popper=true
"""


def test_bench_image_build(benchmark):
    def build():
        return ImageBuilder(Registry()).build(CONTAINERFILE)

    image = benchmark(build)
    assert "/exp/status" in image.flatten()


# --- orchestration fan-out ----------------------------------------------------------

PLAYBOOK = """\
- hosts: all
  gather_facts: false
  tasks:
    - name: install
      package: {name: [git, make]}
    - name: configure
      copy: {dest: /etc/exp.conf, content: 'nodes={{ n }}'}
    - name: verify
      command: {cmd: cat /etc/exp.conf}
"""


@pytest.mark.parametrize("hosts", [4, 16])
def test_bench_playbook_fanout(benchmark, hosts):
    playbook = Playbook.from_yaml(PLAYBOOK)

    def run():
        inventory = Inventory()
        for i in range(hosts):
            inventory.add_host(
                f"node{i}", connection=ContainerConnection(name=f"node{i}")
            )
        return PlaybookRunner(inventory, extra_vars={"n": hosts}).run(playbook)

    recap = benchmark.pedantic(run, rounds=5, iterations=1)
    assert recap.ok


# --- minyaml ----------------------------------------------------------------------

_BIG_PLAYBOOK = "\n".join(
    (
        "- name: play {i}\n"
        "  hosts: all\n"
        "  vars: {{n: {i}, flag: true}}\n"
        "  tasks:\n"
        "    - name: install\n"
        "      package: {{name: [git, make, gcc]}}\n"
        "    - name: write\n"
        "      copy: {{dest: /etc/conf{i}, content: 'value={i}'}}\n"
    ).format(i=i)
    for i in range(40)
)


def test_bench_minyaml_parse_playbook(benchmark):
    from repro.common import minyaml

    doc = benchmark(minyaml.loads, _BIG_PLAYBOOK)
    assert len(doc) == 40


# --- GassyFS op latency --------------------------------------------------------------

def test_bench_gassyfs_small_file_ops(benchmark):
    """Create/write/read/unlink of a small file (metadata-path cost)."""
    from repro.common.rng import SeedSequenceFactory
    from repro.gassyfs import GassyFS, GasnetCluster
    from repro.platform.sites import Site

    site = Site("bench", "cloudlab-c220g1", capacity=4,
                seeds=SeedSequenceFactory(1))
    fs = GassyFS(GasnetCluster(site.allocate(4)))
    payload = b"x" * 4096
    counter = [0]

    def op_cycle():
        counter[0] += 1
        path = f"/f{counter[0]}"
        fs.create(path)
        fs.write(path, payload)
        data = fs.read(path)
        fs.unlink(path)
        return data

    data = benchmark(op_cycle)
    assert data == payload


# --- statistical comparison -------------------------------------------------------------

def test_bench_bootstrap_comparison(benchmark):
    from repro.common.rng import derive_rng
    from repro.stats import statistical_comparison

    rng = derive_rng(3, "bench")
    a = 10.0 * (1 + 0.05 * rng.standard_normal(20))
    b = 8.0 * (1 + 0.05 * rng.standard_normal(20))
    estimate = benchmark(
        statistical_comparison, a, b, 0.95, 2000, 1
    )
    assert estimate.significant
