"""Fig. `torpor-variability` — cross-platform variability profile.

Paper (ASPLOS §5.1): histogram of stress-ng stressor speedups of a
CloudLab node vs a 10-year-old Xeon, bucketed at 0.1; the text calls out
"7 stressors ... within the (2.2, 2.3] range".  The bench regenerates
the histogram, checks the mode bucket and the class separation, and
times the full two-machine battery.
"""

import pytest

from conftest import save_figure_data

from repro.torpor import run_torpor_experiment


def _experiment():
    return run_torpor_experiment(seed=42, runs=3)


@pytest.fixture(scope="module")
def torpor_result():
    return _experiment()


class TestFigureShape:
    def test_mode_bucket_matches_paper(self, torpor_result):
        lo, hi, count = torpor_result.speedups.mode_bucket(bin_width=0.1)
        assert (lo, hi) == pytest.approx((2.2, 2.3))
        assert count >= 7  # the paper: 7 stressors in this bucket

    def test_histogram_multimodal(self, torpor_result):
        buckets = [
            c for _, _, c in torpor_result.speedups.histogram(0.1) if c > 0
        ]
        assert len(buckets) >= 4  # CPU / FP / memory / storage bands

    def test_class_bands_ordered(self, torpor_result):
        profile = torpor_result.variability
        cpu = profile.range_for("cpu")
        fp = profile.range_for("fp")
        mem = profile.range_for("memory")
        assert cpu.high < fp.low < mem.low

    def test_every_stressor_speeds_up(self, torpor_result):
        assert torpor_result.speedups.values().min() > 1.0


def test_bench_torpor_battery(benchmark, output_dir):
    result = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    path = save_figure_data(result.speedup_table(), "fig_torpor_variability")
    save_figure_data(result.histogram_table(0.1), "fig_torpor_histogram")
    lo, hi, count = result.speedups.mode_bucket(0.1)
    benchmark.extra_info["mode_bucket"] = f"({lo}, {hi}] x{count}"
    benchmark.extra_info["series_csv"] = str(path)
