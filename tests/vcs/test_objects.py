"""Tests for object serialization and the content-addressed store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ObjectNotFound, VcsError
from repro.vcs.objects import (
    MODE_DIR,
    Blob,
    Commit,
    Tag,
    Tree,
    TreeEntry,
    deserialize,
    serialize,
)
from repro.vcs.store import ObjectStore


class TestSerialization:
    def test_blob_round_trip(self):
        oid, buf = serialize(Blob(b"hello"))
        obj = deserialize(buf)
        assert isinstance(obj, Blob) and obj.data == b"hello"
        assert len(oid) == 64

    def test_identical_content_identical_id(self):
        assert serialize(Blob(b"x"))[0] == serialize(Blob(b"x"))[0]

    def test_different_content_different_id(self):
        assert serialize(Blob(b"x"))[0] != serialize(Blob(b"y"))[0]

    def test_tree_round_trip(self):
        oid_a = serialize(Blob(b"a"))[0]
        tree = Tree((TreeEntry("f.txt", oid_a),))
        _, buf = serialize(tree)
        again = deserialize(buf)
        assert again == tree

    def test_tree_entries_sorted_automatically(self):
        oid = serialize(Blob(b""))[0]
        tree = Tree((TreeEntry("b", oid), TreeEntry("a", oid)))
        assert [e.name for e in tree.entries] == ["a", "b"]

    def test_tree_duplicate_names_rejected(self):
        oid = serialize(Blob(b""))[0]
        with pytest.raises(VcsError):
            Tree((TreeEntry("a", oid), TreeEntry("a", oid)))

    def test_tree_entry_name_validation(self):
        oid = serialize(Blob(b""))[0]
        for bad in ("", ".", "..", "a/b"):
            with pytest.raises(VcsError):
                TreeEntry(bad, oid)

    def test_tree_entry_mode_validation(self):
        oid = serialize(Blob(b""))[0]
        with pytest.raises(VcsError):
            TreeEntry("f", oid, mode="777")

    def test_commit_round_trip(self):
        tree_oid = serialize(Tree())[0]
        commit = Commit(
            tree=tree_oid,
            parents=(serialize(Blob(b"p"))[0],),
            author="a <a@b>",
            message="subject\n\nbody line",
            timestamp=42,
        )
        _, buf = serialize(commit)
        assert deserialize(buf) == commit

    def test_commit_without_parents(self):
        commit = Commit(serialize(Tree())[0], (), "x", "root", 1)
        assert deserialize(serialize(commit)[1]).parents == ()

    def test_tag_round_trip(self):
        tag = Tag(target=serialize(Blob(b"t"))[0], name="v1.0", message="rel")
        assert deserialize(serialize(tag)[1]) == tag

    def test_corrupt_buffer_rejected(self):
        with pytest.raises(VcsError):
            deserialize(b"not an object")

    def test_size_mismatch_rejected(self):
        _, buf = serialize(Blob(b"abc"))
        with pytest.raises(VcsError):
            deserialize(buf + b"extra")

    @given(st.binary(max_size=256))
    def test_blob_round_trip_property(self, data):
        _, buf = serialize(Blob(data))
        assert deserialize(buf) == Blob(data)


class TestObjectStore:
    def test_put_get(self, tmp_path):
        store = ObjectStore(tmp_path)
        oid = store.put(Blob(b"payload"))
        assert store.get_blob(oid).data == b"payload"

    def test_put_idempotent(self, tmp_path):
        store = ObjectStore(tmp_path)
        assert store.put(Blob(b"x")) == store.put(Blob(b"x"))

    def test_missing_object(self, tmp_path):
        store = ObjectStore(tmp_path)
        with pytest.raises(ObjectNotFound):
            store.get("0" * 64)

    def test_contains(self, tmp_path):
        store = ObjectStore(tmp_path)
        oid = store.put(Blob(b"x"))
        assert oid in store
        assert "f" * 64 not in store

    def test_corruption_detected(self, tmp_path):
        store = ObjectStore(tmp_path)
        oid = store.put(Blob(b"good"))
        path = store._path(oid)
        path.write_bytes(b"blob 3\x00bad")
        with pytest.raises(VcsError, match="corrupt"):
            store.get(oid)

    def test_corrupt_object_moved_to_quarantine(self, tmp_path):
        store = ObjectStore(tmp_path)
        oid = store.put(Blob(b"good"))
        store._path(oid).write_bytes(b"rotten")
        with pytest.raises(VcsError, match="corrupt"):
            store.get(oid)
        # Bit rot is contained, not just reported: the object left the
        # pool for quarantine/, where `popper cache verify` finds it.
        assert oid not in store
        assert store.quarantined() == [oid]
        assert (tmp_path / "quarantine" / oid).read_bytes() == b"rotten"

    def test_typed_accessor_mismatch(self, tmp_path):
        store = ObjectStore(tmp_path)
        oid = store.put(Blob(b"x"))
        with pytest.raises(VcsError, match="expected tree"):
            store.get_tree(oid)

    def test_ids_enumerates_all(self, tmp_path):
        store = ObjectStore(tmp_path)
        oids = {store.put(Blob(bytes([i]))) for i in range(10)}
        assert set(store.ids()) == oids

    def test_resolve_prefix(self, tmp_path):
        store = ObjectStore(tmp_path)
        oid = store.put(Blob(b"unique"))
        assert store.resolve_prefix(oid[:10]) == oid

    def test_resolve_prefix_unknown(self, tmp_path):
        store = ObjectStore(tmp_path)
        with pytest.raises(ObjectNotFound):
            store.resolve_prefix("abcd1234")

    def test_resolve_prefix_too_short(self, tmp_path):
        store = ObjectStore(tmp_path)
        with pytest.raises(VcsError, match="too short"):
            store.resolve_prefix("ab")


class TestTreeWalking:
    def _build(self, store):
        f1 = store.put(Blob(b"one"))
        f2 = store.put(Blob(b"two"))
        inner = store.put(Tree((TreeEntry("nested.txt", f2),)))
        root = store.put(
            Tree(
                (
                    TreeEntry("a.txt", f1),
                    TreeEntry("sub", inner, mode=MODE_DIR),
                )
            )
        )
        return root

    def test_walk_tree(self, tmp_path):
        store = ObjectStore(tmp_path)
        root = self._build(store)
        paths = [p for p, _ in store.walk_tree(root)]
        assert paths == ["a.txt", "sub/nested.txt"]

    def test_read_path(self, tmp_path):
        store = ObjectStore(tmp_path)
        root = self._build(store)
        assert store.read_path(root, "sub/nested.txt") == b"two"
        assert store.read_path(root, "a.txt") == b"one"

    def test_read_path_missing(self, tmp_path):
        store = ObjectStore(tmp_path)
        root = self._build(store)
        with pytest.raises(ObjectNotFound):
            store.read_path(root, "sub/ghost.txt")

    def test_read_path_through_file(self, tmp_path):
        store = ObjectStore(tmp_path)
        root = self._build(store)
        with pytest.raises(VcsError):
            store.read_path(root, "a.txt/deeper")

    def test_read_path_directory(self, tmp_path):
        store = ObjectStore(tmp_path)
        root = self._build(store)
        with pytest.raises(VcsError, match="directory"):
            store.read_path(root, "sub")
