"""Tests for repository porcelain: add/commit/branch/checkout/log/status."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import VcsError
from repro.vcs.repository import Repository


@pytest.fixture
def repo(tmp_path):
    return Repository.init(tmp_path / "work")


def write(repo, rel, text):
    path = repo.root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return rel


class TestInitOpen:
    def test_init_creates_meta(self, tmp_path):
        repo = Repository.init(tmp_path / "r")
        assert (repo.root / ".pvcs").is_dir()

    def test_double_init_rejected(self, tmp_path):
        Repository.init(tmp_path / "r")
        with pytest.raises(VcsError):
            Repository.init(tmp_path / "r")

    def test_open_from_subdirectory(self, repo):
        sub = repo.root / "a" / "b"
        sub.mkdir(parents=True)
        again = Repository.open(sub)
        assert again.root == repo.root

    def test_open_missing(self, tmp_path):
        with pytest.raises(VcsError):
            Repository.open(tmp_path)

    def test_is_repository(self, repo, tmp_path):
        assert Repository.is_repository(repo.root)
        assert not Repository.is_repository(tmp_path)


class TestCommitFlow:
    def test_add_commit_log(self, repo):
        write(repo, "file.txt", "v1")
        repo.add("file.txt")
        oid = repo.commit("first")
        history = repo.log()
        assert [e.oid for e in history] == [oid]
        assert history[0].subject == "first"

    def test_commit_empty_message_rejected(self, repo):
        write(repo, "f", "x")
        repo.add("f")
        with pytest.raises(VcsError):
            repo.commit("   ")

    def test_commit_unchanged_tree_rejected(self, repo):
        write(repo, "f", "x")
        repo.add("f")
        repo.commit("one")
        with pytest.raises(VcsError, match="nothing to commit"):
            repo.commit("two")

    def test_history_chain(self, repo):
        write(repo, "f", "1")
        repo.add("f")
        first = repo.commit("c1")
        write(repo, "f", "2")
        repo.add("f")
        second = repo.commit("c2")
        history = repo.log()
        assert [e.oid for e in history] == [second, first]
        assert history[0].timestamp > history[1].timestamp

    def test_log_limit(self, repo):
        for i in range(5):
            write(repo, "f", str(i))
            repo.add("f")
            repo.commit(f"c{i}")
        assert len(repo.log(limit=2)) == 2

    def test_log_on_unborn_head(self, repo):
        assert repo.log() == []

    def test_cat_and_ls(self, repo):
        write(repo, "dir/inner.txt", "inner")
        write(repo, "top.txt", "top")
        repo.add_all()
        repo.commit("snapshot")
        assert repo.cat("HEAD", "dir/inner.txt") == b"inner"
        assert repo.ls() == ["dir/inner.txt", "top.txt"]

    def test_add_directory_recurses(self, repo):
        write(repo, "exp/a.txt", "a")
        write(repo, "exp/sub/b.txt", "b")
        staged = repo.add("exp")
        assert sorted(staged) == ["exp/a.txt", "exp/sub/b.txt"]

    def test_add_missing_path(self, repo):
        with pytest.raises(VcsError):
            repo.add("ghost.txt")

    def test_metadata_never_tracked(self, repo):
        write(repo, "f", "x")
        repo.add_all()
        assert all(not p.startswith(".pvcs") for p in repo.index.entries)

    def test_resolve_prefix(self, repo):
        write(repo, "f", "x")
        repo.add("f")
        oid = repo.commit("c")
        assert repo.resolve(oid[:12]) == oid

    def test_commits_between_walks_first_parent_oldest_first(self, repo):
        oids = []
        for i in range(4):
            write(repo, "f", str(i))
            repo.add("f")
            oids.append(repo.commit(f"c{i}"))
        assert repo.commits_between(oids[0]) == oids[1:]
        assert repo.commits_between(oids[1], oids[2]) == [oids[2]]
        assert repo.commits_between(oids[3], oids[3]) == []

    def test_commits_between_rejects_non_ancestor(self, repo):
        write(repo, "f", "x")
        repo.add("f")
        first = repo.commit("c1")
        write(repo, "f", "y")
        repo.add("f")
        second = repo.commit("c2")
        with pytest.raises(VcsError):
            repo.commits_between(second, first)


class TestBranchesAndTags:
    def test_branch_and_checkout(self, repo):
        write(repo, "f", "main1")
        repo.add("f")
        repo.commit("on main")
        repo.branch("feature")
        repo.checkout("feature")
        write(repo, "f", "feature change")
        repo.add("f")
        feature_oid = repo.commit("on feature")
        repo.checkout("main")
        assert (repo.root / "f").read_text() == "main1"
        repo.checkout("feature")
        assert (repo.root / "f").read_text() == "feature change"
        assert repo.head_commit() == feature_oid

    def test_duplicate_branch_rejected(self, repo):
        write(repo, "f", "x")
        repo.add("f")
        repo.commit("c")
        repo.branch("b")
        with pytest.raises(VcsError):
            repo.branch("b")

    def test_tag_resolves_to_commit(self, repo):
        write(repo, "f", "x")
        repo.add("f")
        oid = repo.commit("c")
        repo.tag("v1.0", message="release")
        assert repo.resolve("v1.0") == oid

    def test_duplicate_tag_rejected(self, repo):
        write(repo, "f", "x")
        repo.add("f")
        repo.commit("c")
        repo.tag("v1")
        with pytest.raises(VcsError):
            repo.tag("v1")

    def test_detached_checkout(self, repo):
        write(repo, "f", "1")
        repo.add("f")
        first = repo.commit("c1")
        write(repo, "f", "2")
        repo.add("f")
        repo.commit("c2")
        repo.checkout(first)
        branch, oid = repo.refs.head()
        assert branch is None and oid == first
        assert (repo.root / "f").read_text() == "1"

    def test_checkout_refuses_dirty_tree(self, repo):
        write(repo, "f", "1")
        repo.add("f")
        repo.commit("c1")
        repo.branch("other")
        write(repo, "f", "dirty")
        with pytest.raises(VcsError, match="uncommitted"):
            repo.checkout("other")

    def test_checkout_removes_vanished_files(self, repo):
        write(repo, "keep.txt", "k")
        write(repo, "old.txt", "o")
        repo.add_all()
        first = repo.commit("both")
        repo.rm("old.txt")
        repo.commit("drop old")
        repo.checkout(first)
        assert (repo.root / "old.txt").exists()
        repo.checkout("main")
        assert not (repo.root / "old.txt").exists()


class TestStatusAndDiff:
    def test_clean_after_commit(self, repo):
        write(repo, "f", "x")
        repo.add("f")
        repo.commit("c")
        assert repo.status().clean

    def test_untracked(self, repo):
        write(repo, "new.txt", "x")
        assert repo.status().untracked == ["new.txt"]

    def test_modified(self, repo):
        write(repo, "f", "1")
        repo.add("f")
        repo.commit("c")
        write(repo, "f", "2")
        assert repo.status().modified == ["f"]

    def test_deleted(self, repo):
        write(repo, "f", "1")
        repo.add("f")
        repo.commit("c")
        (repo.root / "f").unlink()
        assert repo.status().deleted == ["f"]

    def test_staged_changes_listed(self, repo):
        write(repo, "f", "1")
        repo.add("f")
        status = repo.status()
        assert [str(c) for c in status.staged] == ["A f"]

    def test_diff_between_commits(self, repo):
        write(repo, "f", "old line\n")
        repo.add("f")
        first = repo.commit("c1")
        write(repo, "f", "new line\n")
        repo.add("f")
        repo.commit("c2")
        text = repo.diff(first)
        assert "-old line" in text and "+new line" in text

    def test_diff_from_root(self, repo):
        write(repo, "f", "content\n")
        repo.add("f")
        repo.commit("c")
        assert "+content" in repo.diff(None)


class TestCloneAndFsck:
    def test_clone_preserves_history_and_tree(self, repo, tmp_path):
        write(repo, "a.txt", "alpha")
        repo.add_all()
        repo.commit("c1")
        write(repo, "b.txt", "beta")
        repo.add_all()
        repo.commit("c2")
        repo.tag("v1")
        other = repo.clone(tmp_path / "clone")
        assert [e.subject for e in other.log()] == ["c2", "c1"]
        assert (other.root / "a.txt").read_text() == "alpha"
        assert other.resolve("v1") == repo.resolve("v1")

    def test_clone_into_nonempty_rejected(self, repo, tmp_path):
        target = tmp_path / "dst"
        target.mkdir()
        (target / "junk").write_text("x")
        with pytest.raises(VcsError):
            repo.clone(target)

    def test_fsck_healthy(self, repo):
        write(repo, "f", "x")
        repo.add("f")
        repo.commit("c")
        assert repo.fsck() == []

    def test_fsck_detects_corruption(self, repo):
        write(repo, "f", "x")
        repo.add("f")
        oid = repo.commit("c")
        path = repo.store._path(oid)
        path.write_bytes(b"garbage")
        assert oid in repo.fsck()


@settings(suppress_health_check=[HealthCheck.function_scoped_fixture], deadline=None, max_examples=20)
@given(
    contents=st.lists(
        st.text(alphabet="abc\n", min_size=0, max_size=20), min_size=1, max_size=6
    )
)
def test_history_round_trips_every_version(tmp_path_factory, contents):
    """Property: after N commits of a file, checking out commit i restores
    exactly the i-th content."""
    root = tmp_path_factory.mktemp("prop")
    repo = Repository.init(root)
    oids = []
    previous = None
    for i, text in enumerate(contents):
        (repo.root / "data.txt").write_text(text, encoding="utf-8")
        repo.add("data.txt")
        try:
            oids.append((repo.commit(f"v{i}"), text))
            previous = text
        except VcsError:
            # identical consecutive contents produce "nothing to commit"
            assert text == previous
    for oid, text in oids:
        repo.checkout(oid)
        assert (repo.root / "data.txt").read_text(encoding="utf-8") == text
