"""Tests for merge-base, three-way content merge and branch merging."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import VcsError
from repro.vcs.merge import MergeConflict, merge_base, merge_lines
from repro.vcs.repository import Repository


@pytest.fixture
def repo(tmp_path):
    return Repository.init(tmp_path / "work")


def write(repo, rel, text):
    path = repo.root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")


def commit(repo, rel, text, message):
    write(repo, rel, text)
    repo.add_all()
    return repo.commit(message)


class TestMergeLines:
    def test_disjoint_edits_combine(self):
        base = ["a\n", "b\n", "c\n", "d\n"]
        ours = ["A\n", "b\n", "c\n", "d\n"]      # edits line 1
        theirs = ["a\n", "b\n", "c\n", "D\n"]    # edits line 4
        merged, conflicted = merge_lines(base, ours, theirs)
        assert not conflicted
        assert merged == ["A\n", "b\n", "c\n", "D\n"]

    def test_identical_edits_deduplicate(self):
        base = ["x\n"]
        both = ["y\n"]
        merged, conflicted = merge_lines(base, both, both)
        assert not conflicted and merged == ["y\n"]

    def test_conflicting_edits_marked(self):
        base = ["line\n"]
        merged, conflicted = merge_lines(
            base, ["ours\n"], ["theirs\n"], ours_label="main", theirs_label="dev"
        )
        assert conflicted
        text = "".join(merged)
        assert "<<<<<<< main" in text and ">>>>>>> dev" in text
        assert "ours\n" in text and "theirs\n" in text

    def test_insertion_vs_distant_edit(self):
        base = ["a\n", "b\n", "c\n"]
        ours = ["a\n", "new\n", "b\n", "c\n"]
        theirs = ["a\n", "b\n", "C!\n"]
        merged, conflicted = merge_lines(base, ours, theirs)
        assert not conflicted
        assert merged == ["a\n", "new\n", "b\n", "C!\n"]

    def test_deletion_one_side(self):
        base = ["a\n", "b\n", "c\n"]
        ours = ["a\n", "c\n"]
        theirs = ["a\n", "b\n", "c\n", "d\n"]
        merged, conflicted = merge_lines(base, ours, theirs)
        assert not conflicted
        assert merged == ["a\n", "c\n", "d\n"]

    @given(
        base=st.lists(st.sampled_from(["a\n", "b\n", "c\n"]), max_size=6),
        suffix=st.lists(st.sampled_from(["x\n", "y\n"]), max_size=3),
    )
    def test_one_sided_change_always_clean(self, base, suffix):
        """If only one side changed, the merge equals that side."""
        theirs = base + suffix
        merged, conflicted = merge_lines(base, list(base), theirs)
        assert not conflicted
        assert merged == theirs


class TestMergeBase:
    def test_linear_history(self, repo):
        first = commit(repo, "f", "1", "c1")
        second = commit(repo, "f", "2", "c2")
        assert merge_base(repo.store, first, second) == first

    def test_diverged_branches(self, repo):
        fork = commit(repo, "f", "base", "fork point")
        repo.branch("dev")
        ours = commit(repo, "f", "main change", "on main")
        repo.checkout("dev")
        theirs = commit(repo, "g", "dev change", "on dev")
        assert merge_base(repo.store, ours, theirs) == fork


class TestRepositoryMerge:
    def test_fast_forward(self, repo):
        commit(repo, "f", "1", "c1")
        repo.branch("dev")
        repo.checkout("dev")
        tip = commit(repo, "f", "2", "c2")
        repo.checkout("main")
        result = repo.merge("dev")
        assert result == tip
        assert (repo.root / "f").read_text() == "2"
        assert repo.head_commit() == tip

    def test_already_up_to_date(self, repo):
        first = commit(repo, "f", "1", "c1")
        repo.branch("dev")
        tip = commit(repo, "f", "2", "c2")
        assert repo.merge("dev") == tip  # dev is behind main

    def test_three_way_clean_merge(self, repo):
        commit(repo, "shared.txt", "a\nb\nc\n", "base")
        repo.branch("dev")
        commit(repo, "shared.txt", "A\nb\nc\n", "main edit")
        repo.checkout("dev")
        commit(repo, "shared.txt", "a\nb\nC\n", "dev edit")
        repo.checkout("main")
        merge_oid = repo.merge("dev")
        assert (repo.root / "shared.txt").read_text() == "A\nb\nC\n"
        parents = repo.store.get_commit(merge_oid).parents
        assert len(parents) == 2

    def test_three_way_file_additions(self, repo):
        commit(repo, "base.txt", "base", "base")
        repo.branch("dev")
        commit(repo, "from-main.txt", "m", "main adds")
        repo.checkout("dev")
        commit(repo, "from-dev.txt", "d", "dev adds")
        repo.checkout("main")
        repo.merge("dev")
        assert (repo.root / "from-main.txt").exists()
        assert (repo.root / "from-dev.txt").exists()

    def test_conflict_raises_and_leaves_tree_untouched(self, repo):
        commit(repo, "f.txt", "original\n", "base")
        repo.branch("dev")
        commit(repo, "f.txt", "main version\n", "main edit")
        repo.checkout("dev")
        commit(repo, "f.txt", "dev version\n", "dev edit")
        repo.checkout("main")
        head_before = repo.head_commit()
        with pytest.raises(MergeConflict) as info:
            repo.merge("dev")
        assert "f.txt" in info.value.conflicts
        assert "<<<<<<<" in info.value.conflicts["f.txt"]
        assert repo.head_commit() == head_before
        assert (repo.root / "f.txt").read_text() == "main version\n"

    def test_delete_modify_conflict(self, repo):
        commit(repo, "f.txt", "content\n", "base")
        repo.branch("dev")
        (repo.root / "f.txt").unlink()
        repo.add_all()
        repo.commit("main deletes")
        repo.checkout("dev")
        commit(repo, "f.txt", "modified\n", "dev modifies")
        repo.checkout("main")
        with pytest.raises(MergeConflict, match="f.txt"):
            repo.merge("dev")

    def test_merge_requires_clean_tree(self, repo):
        commit(repo, "f", "1", "c1")
        repo.branch("dev")
        write(repo, "f", "dirty")
        with pytest.raises(VcsError, match="not clean"):
            repo.merge("dev")

    def test_merge_self_is_noop(self, repo):
        oid = commit(repo, "f", "1", "c1")
        assert repo.merge("main") == oid

    def test_collaboration_story(self, repo, tmp_path):
        """Author and reviewer edit different experiment files; the merge
        combines both without intervention."""
        commit(repo, "experiments/e/vars.yml", "runner: x\nnodes: 2\n", "init")
        repo.branch("reviewer")
        commit(repo, "experiments/e/vars.yml", "runner: x\nnodes: 4\n", "scale up")
        repo.checkout("reviewer")
        commit(repo, "experiments/e/validations.aver", "expect count() > 0\n", "add check")
        repo.checkout("main")
        repo.merge("reviewer")
        assert (repo.root / "experiments/e/validations.aver").exists()
        assert "nodes: 4" in (repo.root / "experiments/e/vars.yml").read_text()
