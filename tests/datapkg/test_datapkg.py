"""Tests for the data-package manager."""

import json

import pytest

from repro.common.errors import DataPackageError, IntegrityError
from repro.datapkg.descriptor import Descriptor, Resource, parse_spec
from repro.datapkg.manager import DESCRIPTOR_NAME, PackageRegistry, verify_tree


@pytest.fixture
def registry(tmp_path):
    return PackageRegistry(tmp_path / "registry")


@pytest.fixture
def dataset_dir(tmp_path):
    source = tmp_path / "source"
    (source / "sub").mkdir(parents=True)
    (source / "air.csv").write_text("time,temp\n0,270.5\n")
    (source / "sub" / "meta.txt").write_text("NCEP-like synthetic\n")
    return source


class TestSpecParsing:
    def test_name_only(self):
        assert parse_spec("air-temperature") == ("air-temperature", None)

    def test_name_version(self):
        assert parse_spec("air-temperature@1.2") == ("air-temperature", "1.2")

    @pytest.mark.parametrize("bad", ["UPPER", "-lead", "a b", "name@vee"])
    def test_bad_specs(self, bad):
        with pytest.raises(DataPackageError):
            parse_spec(bad)


class TestDescriptor:
    def test_json_round_trip(self, dataset_dir):
        resources = tuple(
            Resource.from_file(p, p.relative_to(dataset_dir).as_posix())
            for p in sorted(dataset_dir.rglob("*"))
            if p.is_file()
        )
        descriptor = Descriptor(
            name="air", version="1.0", resources=resources, title="Air temps"
        )
        again = Descriptor.from_json(descriptor.to_json())
        assert again == descriptor
        assert again.total_bytes == descriptor.total_bytes

    def test_resource_lookup(self, dataset_dir):
        resource = Resource.from_file(dataset_dir / "air.csv", "air.csv")
        descriptor = Descriptor(name="air", version="1.0", resources=(resource,))
        assert descriptor.resource("air").format == "csv"
        with pytest.raises(DataPackageError):
            descriptor.resource("ghost")

    def test_duplicate_paths_rejected(self, dataset_dir):
        resource = Resource.from_file(dataset_dir / "air.csv", "air.csv")
        with pytest.raises(DataPackageError):
            Descriptor(name="air", version="1.0", resources=(resource, resource))

    def test_bad_json(self):
        with pytest.raises(DataPackageError):
            Descriptor.from_json("{not json")

    def test_missing_keys(self):
        with pytest.raises(DataPackageError):
            Descriptor.from_json(json.dumps({"name": "x"}))

    def test_unsupported_hash(self):
        doc = {
            "name": "x", "version": "1.0",
            "resources": [{"name": "r", "path": "r", "hash": "md5:abc", "bytes": 1}],
        }
        with pytest.raises(DataPackageError, match="hash"):
            Descriptor.from_json(json.dumps(doc))


class TestRegistry:
    def test_publish_and_resolve(self, registry, dataset_dir):
        descriptor = registry.publish(dataset_dir, "air-temperature", "1.0")
        assert descriptor.spec == "air-temperature@1.0"
        resolved = registry.resolve("air-temperature@1.0")
        assert resolved == descriptor

    def test_latest_version_resolution(self, registry, dataset_dir):
        registry.publish(dataset_dir, "air", "1.9")
        registry.publish(dataset_dir, "air", "1.10")
        assert registry.resolve("air").version == "1.10"

    def test_double_publish_rejected(self, registry, dataset_dir):
        registry.publish(dataset_dir, "air", "1.0")
        with pytest.raises(DataPackageError, match="already"):
            registry.publish(dataset_dir, "air", "1.0")

    def test_publish_empty_rejected(self, registry, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(DataPackageError):
            registry.publish(empty, "air", "1.0")

    def test_unknown_package(self, registry):
        with pytest.raises(DataPackageError):
            registry.resolve("ghost")

    def test_listings(self, registry, dataset_dir):
        registry.publish(dataset_dir, "air", "1.0")
        registry.publish(dataset_dir, "wind", "2.0")
        assert registry.packages() == ["air", "wind"]
        assert registry.versions("air") == ["1.0"]


class TestInstallVerify:
    def test_install_copies_and_verifies(self, registry, dataset_dir, tmp_path):
        registry.publish(dataset_dir, "air", "1.0")
        target = tmp_path / "experiments" / "exp1" / "datasets"
        descriptor = registry.install("air@1.0", target)
        installed = target / "air"
        assert (installed / "air.csv").read_text().startswith("time,temp")
        assert (installed / "sub" / "meta.txt").exists()
        assert verify_tree(installed).spec == descriptor.spec

    def test_install_twice_rejected(self, registry, dataset_dir, tmp_path):
        registry.publish(dataset_dir, "air", "1.0")
        registry.install("air", tmp_path / "d")
        with pytest.raises(DataPackageError, match="exists"):
            registry.install("air", tmp_path / "d")

    def test_tamper_detected(self, registry, dataset_dir, tmp_path):
        registry.publish(dataset_dir, "air", "1.0")
        registry.install("air", tmp_path / "d")
        victim = tmp_path / "d" / "air" / "air.csv"
        victim.write_text("time,temp\n0,9999\n")
        with pytest.raises(IntegrityError, match="mismatch"):
            verify_tree(tmp_path / "d" / "air")

    def test_missing_resource_detected(self, registry, dataset_dir, tmp_path):
        registry.publish(dataset_dir, "air", "1.0")
        registry.install("air", tmp_path / "d")
        (tmp_path / "d" / "air" / "air.csv").unlink()
        with pytest.raises(IntegrityError, match="missing"):
            verify_tree(tmp_path / "d" / "air")

    def test_verify_requires_descriptor(self, tmp_path):
        bare = tmp_path / "bare"
        bare.mkdir()
        with pytest.raises(DataPackageError, match=DESCRIPTOR_NAME):
            verify_tree(bare)


class TestContentPool:
    def test_publish_dedupes_across_versions(self, registry, dataset_dir):
        registry.publish(dataset_dir, "air", "1.0")
        registry.publish(dataset_dir, "air", "1.1")
        # Two versions of identical payloads: each file stored once.
        assert registry.store.stats()["objects"] == 2
        # Version directories hold only the descriptor, never payloads.
        version_dir = registry.root / "air" / "1.0"
        assert [p.name for p in version_dir.iterdir()] == [DESCRIPTOR_NAME]

    def test_store_dir_is_not_a_package(self, registry, dataset_dir):
        registry.publish(dataset_dir, "air", "1.0")
        assert registry.packages() == ["air"]

    def test_publish_detects_payload_change_mid_publish(
        self, registry, dataset_dir, monkeypatch
    ):
        # Simulate a file whose bytes changed between descriptor hashing
        # and pool ingest: the re-hash on ingest must refuse to publish.
        real = registry.store.put_file

        def racing_put_file(path):
            path.write_text("mutated after hashing\n")
            return real(path)

        monkeypatch.setattr(registry.store, "put_file", racing_put_file)
        with pytest.raises(IntegrityError, match="changed while"):
            registry.publish(dataset_dir, "air", "1.0")

    def test_install_materializes_from_pool(self, registry, dataset_dir, tmp_path):
        registry.publish(dataset_dir, "air", "1.0")
        descriptor = registry.install("air", tmp_path / "d")
        # Installed files come out of the pool, not the version dir.
        for resource in descriptor.resources:
            assert registry.store.contains(resource.sha256)
            assert (tmp_path / "d" / "air" / resource.path).is_file()

    def test_legacy_registry_without_pool_installs(
        self, registry, dataset_dir, tmp_path
    ):
        # A registry published before the content pool existed: flat
        # resource copies in the version directory, no .store/ objects.
        descriptor = registry.publish(dataset_dir, "air", "1.0")
        version_dir = registry.root / "air" / "1.0"
        for resource in descriptor.resources:
            legacy = version_dir / resource.path
            legacy.parent.mkdir(parents=True, exist_ok=True)
            legacy.write_bytes((dataset_dir / resource.path).read_bytes())
            registry.store.delete(resource.sha256)
        installed = registry.install("air", tmp_path / "d")
        assert installed.spec == "air@1.0"
        assert (tmp_path / "d" / "air" / "air.csv").is_file()

    def test_missing_everywhere_is_integrity_error(
        self, registry, dataset_dir, tmp_path
    ):
        descriptor = registry.publish(dataset_dir, "air", "1.0")
        for resource in descriptor.resources:
            registry.store.delete(resource.sha256)
        with pytest.raises(IntegrityError, match="neither"):
            registry.install("air", tmp_path / "d")
