"""Tests for the dpm command-line tool."""

import pytest

from repro.datapkg.cli import main


@pytest.fixture
def setup(tmp_path):
    source = tmp_path / "source"
    source.mkdir()
    (source / "air.csv").write_text("t,v\n0,270\n")
    registry = tmp_path / "registry"
    return source, registry, tmp_path


class TestDpmCli:
    def test_publish_install_verify(self, setup, capsys):
        source, registry, tmp = setup
        assert main(
            ["--registry", str(registry), "publish", str(source), "air@1.0"]
        ) == 0
        assert "published air@1.0" in capsys.readouterr().out

        target = tmp / "datasets"
        assert main(
            ["--registry", str(registry), "install", "air", "--into", str(target)]
        ) == 0
        assert (target / "air" / "air.csv").is_file()

        assert main(["verify", str(target / "air")]) == 0
        assert "ok: air@1.0" in capsys.readouterr().out

    def test_verify_detects_tampering(self, setup, capsys):
        source, registry, tmp = setup
        main(["--registry", str(registry), "publish", str(source), "air@1.0"])
        target = tmp / "d"
        main(["--registry", str(registry), "install", "air", "--into", str(target)])
        (target / "air" / "air.csv").write_text("t,v\n0,999\n")
        assert main(["verify", str(target / "air")]) == 1
        assert "INTEGRITY FAILURE" in capsys.readouterr().err

    def test_list(self, setup, capsys):
        source, registry, _ = setup
        main(["--registry", str(registry), "publish", str(source), "air@1.0"])
        main(["--registry", str(registry), "publish", str(source), "air@1.1"])
        capsys.readouterr()  # drop publish chatter
        assert main(["--registry", str(registry), "list"]) == 0
        assert capsys.readouterr().out.strip() == "air"
        assert main(["--registry", str(registry), "list", "air"]) == 0
        assert capsys.readouterr().out.splitlines() == ["air@1.0", "air@1.1"]

    def test_registry_required(self, setup, capsys):
        source, _, _ = setup
        assert main(["publish", str(source), "air@1.0"]) == 2

    def test_publish_needs_version(self, setup, capsys):
        source, registry, _ = setup
        assert main(
            ["--registry", str(registry), "publish", str(source), "air"]
        ) == 2

    def test_unknown_package_install(self, setup, capsys):
        _, registry, tmp = setup
        assert main(
            ["--registry", str(registry), "install", "ghost", "--into", str(tmp / "x")]
        ) == 2

    def test_env_var_registry(self, setup, capsys, monkeypatch):
        source, registry, _ = setup
        monkeypatch.setenv("DPM_REGISTRY", str(registry))
        assert main(["publish", str(source), "air@2.0"]) == 0
