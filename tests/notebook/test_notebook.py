"""Tests for the notebook model and executor."""

import pytest

from repro.notebook import Cell, Notebook, NotebookError, execute


def make_notebook():
    nb = Notebook(metadata={"kernel": "python3"})
    nb.add_markdown("# Analysis")
    nb.add_code("x = 2 + 2")
    nb.add_code("print('value is', x)\nx * 10")
    return nb


class TestModel:
    def test_cell_type_validation(self):
        with pytest.raises(NotebookError):
            Cell("raw", "data")

    def test_builders(self):
        nb = make_notebook()
        assert len(nb.cells) == 3
        assert len(nb.code_cells) == 2

    def test_json_round_trip(self):
        nb = make_notebook()
        again = Notebook.from_json(nb.to_json())
        assert again.cells == nb.cells
        assert again.metadata == nb.metadata

    def test_ipynb_line_list_sources(self):
        text = (
            '{"cells": [{"cell_type": "code", '
            '"source": ["a = 1\\n", "a + 1"]}]}'
        )
        nb = Notebook.from_json(text)
        assert nb.cells[0].source == "a = 1\na + 1"

    def test_bad_json(self):
        with pytest.raises(NotebookError):
            Notebook.from_json("{nope")
        with pytest.raises(NotebookError):
            Notebook.from_json('{"no_cells": true}')
        with pytest.raises(NotebookError):
            Notebook.from_json('{"cells": [{"cell_type": "code"}]}')

    def test_file_round_trip(self, tmp_path):
        nb = make_notebook()
        path = tmp_path / "analysis.nb.json"
        nb.save(path)
        assert Notebook.load(path).cells == nb.cells


class TestExecutor:
    def test_shared_namespace_and_outputs(self):
        run = execute(make_notebook())
        assert run.ok
        assert run.results[0].value is None            # assignment only
        assert run.results[1].stdout == "value is 4\n"
        assert run.results[1].value == 40              # trailing expression
        assert run.namespace["x"] == 4

    def test_seed_namespace(self):
        nb = Notebook().add_code("total = sum(r['time'] for r in rows)\ntotal")
        run = execute(nb, namespace={"rows": [{"time": 1.5}, {"time": 2.5}]})
        assert run.ok and run.results[0].value == 4.0

    def test_error_stops_execution(self):
        nb = (
            Notebook()
            .add_code("a = 1")
            .add_code("raise ValueError('boom')")
            .add_code("b = 2  # never runs")
        )
        run = execute(nb)
        assert not run.ok
        assert "boom" in run.first_error
        assert len(run.results) == 2
        assert "b" not in run.namespace

    def test_continue_on_error(self):
        nb = (
            Notebook()
            .add_code("raise RuntimeError('x')")
            .add_code("after = True")
        )
        run = execute(nb, stop_on_error=False)
        assert not run.ok
        assert run.namespace.get("after") is True

    def test_syntax_error_is_cell_failure(self):
        run = execute(Notebook().add_code("def broken(:"))
        assert not run.ok
        assert "SyntaxError" in run.first_error

    def test_markdown_cells_skipped(self):
        nb = Notebook().add_markdown("text only")
        run = execute(nb)
        assert run.ok and run.results == []

    def test_analysis_over_metrics_table(self):
        """The intended use: a notebook analyzing experiment results."""
        from repro.common.tables import MetricsTable

        table = MetricsTable(
            ["nodes", "time"],
            [{"nodes": n, "time": 16.0 / n} for n in (1, 2, 4)],
        )
        nb = (
            Notebook()
            .add_markdown("## Scalability check")
            .add_code("agg = results.aggregate(['nodes'], 'time')")
            .add_code("sorted(agg.column('time'), reverse=True)")
        )
        run = execute(nb, namespace={"results": table})
        assert run.ok
        assert run.results[-1].value == [16.0, 8.0, 4.0]
