"""Randomized (seeded) invariants: no fault plan breaks accounting.

For any randomly generated DAG, fault plan, retry policy and optional-task
assignment, both schedulers must terminate and account for every task:
``OK + FAILED + SKIPPED + DEGRADED == len(graph)``.  Failures may only
propagate along declared edges, and a task's value must exist exactly
when it is OK.
"""

import pytest

from repro.common.rng import derive_rng
from repro.engine import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    RunOptions,
    SerialScheduler,
    TaskGraph,
    TaskState,
    ThreadedScheduler,
)

BACKENDS = [SerialScheduler(), ThreadedScheduler(max_workers=4)]
BACKEND_IDS = ["serial", "threaded"]

TERMINAL = (
    TaskState.OK,
    TaskState.FAILED,
    TaskState.SKIPPED,
    TaskState.DEGRADED,
)


def random_graph(seed: int) -> tuple[TaskGraph, set[str]]:
    """A random DAG (edges only point backwards: acyclic by construction)."""
    rng = derive_rng(seed, "graph")
    n = int(rng.integers(3, 12))
    graph = TaskGraph()
    optional: set[str] = set()
    for i in range(n):
        deps = tuple(
            f"t{j}" for j in range(i) if float(rng.random()) < 0.3
        )
        is_optional = float(rng.random()) < 0.2
        if is_optional:
            optional.add(f"t{i}")
        graph.add(
            f"t{i}",
            (lambda name: lambda ctx: name)(f"t{i}"),
            dependencies=deps,
            optional=is_optional,
        )
    return graph, optional


def random_faults(seed: int, task_ids: list[str]) -> FaultPlan:
    rng = derive_rng(seed, "faults")
    specs = []
    for task_id in task_ids:
        roll = float(rng.random())
        if roll < 0.25:
            specs.append(FaultSpec("fail", task_id))
        elif roll < 0.5:
            specs.append(FaultSpec("flaky", task_id, float(rng.integers(1, 4))))
        elif roll < 0.6:
            specs.append(FaultSpec("rate", task_id, 0.5))
    if not specs:
        specs.append(FaultSpec("flaky", task_ids[0], 1.0))
    return FaultPlan(specs, seed=seed)


@pytest.mark.parametrize("scheduler", BACKENDS, ids=BACKEND_IDS)
@pytest.mark.parametrize("seed", range(12))
class TestAccountingInvariant:
    def test_every_task_accounted_under_faults(self, scheduler, seed):
        graph, optional = random_graph(seed)
        ids = graph.ids()
        options = RunOptions(
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0, jitter=0.0, seed=seed),
            faults=random_faults(seed, ids),
        )
        recap = scheduler.run(graph, options=options)

        # Termination with a complete ledger: every task has exactly one
        # terminal outcome.
        assert sorted(recap.outcomes) == sorted(ids)
        states = {tid: recap.outcomes[tid].state for tid in ids}
        assert all(state in TERMINAL for state in states.values())
        counted = (
            len(recap.succeeded)
            + len(recap.failed)
            + len(recap.skipped)
            + len(recap.degraded)
        )
        assert counted == len(graph)

        for tid in ids:
            outcome = recap.outcomes[tid]
            # DEGRADED only ever happens to declared-optional tasks, and
            # optional tasks can never be FAILED.
            if outcome.state is TaskState.DEGRADED:
                assert tid in optional
            if tid in optional:
                assert outcome.state is not TaskState.FAILED
            # SKIPPED tasks blame a FAILED upstream they really depend on.
            if outcome.state is TaskState.SKIPPED:
                assert states[outcome.blamed_on] is TaskState.FAILED
                assert tid in graph.downstream(outcome.blamed_on)
            # Values exist exactly for OK tasks.
            if outcome.state is TaskState.OK:
                assert outcome.value == tid
            else:
                assert outcome.value is None

    def test_same_seed_same_states_across_backends(self, scheduler, seed):
        """State assignment is a function of the seed, not the backend."""
        graph, _ = random_graph(seed)
        options = RunOptions(
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0, jitter=0.0, seed=seed),
            faults=random_faults(seed, graph.ids()),
        )
        recap = scheduler.run(graph, options=options)

        reference_graph, _ = random_graph(seed)
        reference = SerialScheduler().run(
            reference_graph,
            options=RunOptions(
                retry=RetryPolicy(
                    max_attempts=2, backoff_s=0.0, jitter=0.0, seed=seed
                ),
                faults=random_faults(seed, reference_graph.ids()),
            ),
        )
        assert {t: o.state for t, o in recap.outcomes.items()} == {
            t: o.state for t, o in reference.outcomes.items()
        }
