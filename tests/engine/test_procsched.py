"""ProcessScheduler: multi-core graph execution behind the Task contract.

Payloads here are module-level classes — the process backend ships each
task to a worker process with ``pickle``, and the tests cover exactly
that contract: the pickle-safety audit (and its threaded fallback),
dependency values crossing the boundary, cache/checkpoint composition,
retries and fault plans inside workers, deterministic journal-shard
merging, dead-worker containment, and cooperative cancellation.
"""

import os
import threading
import time

import pytest

from repro.common.crash import SimulatedCrash
from repro.common.errors import (
    EngineError,
    UnpicklablePayloadError,
    WorkerCrashError,
)
from repro.engine import (
    CancelToken,
    FaultPlan,
    ProcessScheduler,
    RetryPolicy,
    RunCancelled,
    RunOptions,
    RunStateStore,
    TaskGraph,
    TaskState,
    audit_pickle_safety,
    resolve_backend,
)
from repro.engine.scheduler import SerialScheduler, ThreadedScheduler
from repro.monitor.journal import RunJournal, read_journal
from repro.monitor.tracing import Tracer


class Square:
    def __init__(self, n):
        self.n = n

    def __call__(self, ctx):
        return self.n * self.n


class SumDeps:
    def __call__(self, ctx):
        return sum(ctx.results.values())


class Fail:
    def __call__(self, ctx):
        raise ValueError("injected failure")


class HardCrash:
    """Dies without reporting — the kill -9 of a worker."""

    def __call__(self, ctx):
        os._exit(13)


class Abort:
    def __call__(self, ctx):
        raise SimulatedCrash("worker-side", 1)


class UnpicklableValue:
    """Runs fine but returns something that cannot cross the boundary."""

    def __call__(self, ctx):
        return threading.Lock()


class Sleep:
    def __init__(self, seconds, value=None):
        self.seconds = seconds
        self.value = value

    def __call__(self, ctx):
        time.sleep(self.seconds)
        return self.value


def diamond():
    graph = TaskGraph()
    graph.add("a", Square(2))
    graph.add("b", Square(3), dependencies=("a",))
    graph.add("c", Square(4), dependencies=("a",))
    graph.add("total", SumDeps(), dependencies=("b", "c"))
    return graph


def test_runs_graph_and_passes_dependency_values():
    recap = ProcessScheduler(max_workers=2).run(diamond())
    assert {t: o.state for t, o in recap.outcomes.items()} == {
        "a": TaskState.OK,
        "b": TaskState.OK,
        "c": TaskState.OK,
        "total": TaskState.OK,
    }
    assert recap.value("total") == 9 + 16


def test_failure_propagates_and_independent_branches_survive():
    graph = TaskGraph()
    graph.add("bad", Fail())
    graph.add("child", Square(1), dependencies=("bad",))
    graph.add("indep", Square(5))
    recap = ProcessScheduler(max_workers=2).run(graph)
    assert recap.outcome("bad").state is TaskState.FAILED
    assert isinstance(recap.outcome("bad").error, ValueError)
    assert str(recap.outcome("bad").error) == "injected failure"
    assert recap.outcome("child").state is TaskState.SKIPPED
    assert recap.outcome("child").blamed_on == "bad"
    assert recap.value("indep") == 25


def test_optional_task_degrades_instead_of_failing():
    graph = TaskGraph()
    graph.add("flaky", Fail(), optional=True)
    graph.add("after", Square(2), dependencies=("flaky",))
    recap = ProcessScheduler(max_workers=2).run(graph)
    assert recap.outcome("flaky").state is TaskState.DEGRADED
    assert recap.value("after") == 4


# -- pickle-safety audit ---------------------------------------------------------


def test_audit_reports_unpicklable_payloads():
    graph = TaskGraph()
    graph.add("ok", Square(1))
    graph.add("closure", lambda ctx: 1)
    problems = audit_pickle_safety(graph)
    assert set(problems) == {"closure"}
    assert "closure" in problems and problems["closure"]


def test_unpicklable_payload_falls_back_to_threaded(tmp_path):
    graph = TaskGraph()
    graph.add("closure", lambda ctx: 41 + 1)
    journal = RunJournal(tmp_path / "journal.jsonl")
    tracer = Tracer(journal=journal)
    with pytest.warns(UserWarning, match="falling back to the threaded"):
        recap = ProcessScheduler(max_workers=2).run(graph, tracer=tracer)
    journal.close()
    assert recap.value("closure") == 42
    events = read_journal(tmp_path / "journal.jsonl")
    fallbacks = [e for e in events if e["event"] == "scheduler_fallback"]
    assert fallbacks and fallbacks[0]["using"] == "threaded"
    assert fallbacks[0]["tasks"] == ["closure"]
    # The fallback ran the task for real, under its own span.
    assert any(
        e["event"] == "span_end" and e["name"] == "task/closure"
        for e in events
    )


def test_fallback_none_raises_unpicklable_payload_error():
    graph = TaskGraph()
    graph.add("closure", lambda ctx: 1)
    with pytest.raises(UnpicklablePayloadError, match="closure"):
        ProcessScheduler(max_workers=2, fallback=None).run(graph)


def test_unpicklable_return_value_fails_the_task():
    graph = TaskGraph()
    graph.add("lock", UnpicklableValue())
    graph.add("dep", Square(3), dependencies=("lock",))
    recap = ProcessScheduler(max_workers=1).run(graph)
    assert recap.outcome("lock").state is TaskState.FAILED
    assert isinstance(recap.outcome("lock").error, UnpicklablePayloadError)
    assert recap.outcome("dep").state is TaskState.SKIPPED


# -- resilience inside workers ---------------------------------------------------


def test_retries_and_fault_plans_execute_in_the_worker(tmp_path):
    graph = TaskGraph()
    graph.add("flaky", Square(6))
    journal = RunJournal(tmp_path / "journal.jsonl")
    tracer = Tracer(journal=journal)
    options = RunOptions(
        retry=RetryPolicy(max_attempts=3, backoff_s=0.0),
        faults=FaultPlan.parse("flaky:flaky:2"),
    )
    recap = ProcessScheduler(max_workers=1).run(
        graph, tracer=tracer, options=options
    )
    journal.close()
    outcome = recap.outcome("flaky")
    assert outcome.state is TaskState.OK
    assert outcome.attempts == 3
    assert recap.value("flaky") == 36
    events = read_journal(tmp_path / "journal.jsonl")
    attempts = [e["attempt"] for e in events if e["event"] == "attempt"]
    assert attempts == [1, 2, 3]
    span_ends = {e["name"] for e in events if e["event"] == "span_end"}
    assert {"task/flaky", "task/flaky/attempt-3"} <= span_ends


def test_worker_crash_fails_only_its_task():
    graph = TaskGraph()
    graph.add("boom", HardCrash())
    for i in range(3):
        graph.add(f"ok-{i}", Square(i))
    recap = ProcessScheduler(max_workers=2).run(graph)
    assert recap.outcome("boom").state is TaskState.FAILED
    assert isinstance(recap.outcome("boom").error, WorkerCrashError)
    assert "exit code 13" in str(recap.outcome("boom").error)
    for i in range(3):
        assert recap.outcome(f"ok-{i}").state is TaskState.OK


def test_abort_propagates_and_drains():
    graph = TaskGraph()
    graph.add("abort", Abort())
    graph.add("slow", Sleep(0.2, "done"))
    sched = ProcessScheduler(max_workers=2)
    with pytest.raises(SimulatedCrash):
        sched.run(graph)


def test_cancel_token_drains_without_new_dispatch():
    graph = TaskGraph()
    graph.add("first", Sleep(0.5, "a"))
    graph.add("second", Sleep(0.0, "b"), dependencies=("first",))
    token = CancelToken()
    threading.Timer(0.1, token.cancel).start()
    with pytest.raises(RunCancelled):
        ProcessScheduler(max_workers=2).run(
            graph, options=RunOptions(cancel=token)
        )


def test_checkpoint_restores_on_second_run(tmp_path):
    graph = TaskGraph()
    graph.add(
        "work",
        Square(7),
        fingerprint="fp-work",
        checkpoint=lambda value: {"value": value},
        restore=lambda detail: detail["value"],
    )
    state = tmp_path / "state.jsonl"
    with RunStateStore(state) as store:
        first = ProcessScheduler(max_workers=1).run(
            graph, options=RunOptions(run_state=store)
        )
    assert first.value("work") == 49
    with RunStateStore(state, resume=True) as store:
        second = ProcessScheduler(max_workers=1).run(
            graph, options=RunOptions(run_state=store)
        )
    assert second.outcome("work").restored
    assert second.value("work") == 49


# -- journal shard merging -------------------------------------------------------


def test_merged_journal_is_one_tree_in_graph_order(tmp_path):
    journal = RunJournal(tmp_path / "journal.jsonl")
    tracer = Tracer(journal=journal)
    with tracer.span("root"):
        ProcessScheduler(max_workers=2).run(diamond(), tracer=tracer)
    journal.close()
    events = read_journal(tmp_path / "journal.jsonl")
    seqs = [e["seq"] for e in events]
    assert seqs == list(range(1, len(events) + 1))
    # Task spans appear in graph insertion order regardless of which
    # worker ran them, each re-parented under the calling span.
    root_id = events[0]["span_id"]
    task_starts = [
        e for e in events if e["event"] == "span_start" and e["seq"] > 1
    ]
    assert [e["name"] for e in task_starts] == [
        "task/a", "task/b", "task/c", "task/total",
    ]
    assert all(e["parent_id"] == root_id for e in task_starts)
    assert all("worker" in e for e in task_starts)
    # Remapped span ids are unique across shards.
    ids = [e["span_id"] for e in task_starts]
    assert len(set(ids)) == len(ids)
    # The in-memory tracer sees the same single tree.
    assert tracer.span_tree() == [
        "root (ok)",
        "  task/a (ok)",
        "  task/b (ok)",
        "  task/c (ok)",
        "  task/total (ok)",
    ]


# -- backend resolution ----------------------------------------------------------


def test_resolve_backend_auto_policy():
    scheduler, workers, warning = resolve_backend("auto", 1)
    assert isinstance(scheduler, SerialScheduler)
    assert (workers, warning) == (1, None)
    scheduler, workers, _ = resolve_backend("auto", 3)
    assert isinstance(scheduler, ThreadedScheduler)
    assert workers == 3


def test_resolve_backend_process_clamps_to_cpu_count():
    cpus = os.cpu_count() or 1
    scheduler, workers, warning = resolve_backend("process", cpus + 5)
    assert isinstance(scheduler, ProcessScheduler)
    assert workers == cpus
    assert warning is not None and "clamping" in warning


def test_resolve_backend_threaded_warns_without_clamping():
    cpus = os.cpu_count() or 1
    scheduler, workers, warning = resolve_backend("threaded", cpus + 5)
    assert isinstance(scheduler, ThreadedScheduler)
    assert workers == cpus + 5
    assert warning is not None and "GIL" in warning


def test_resolve_backend_rejects_unknown_names():
    with pytest.raises(EngineError):
        resolve_backend("quantum", 2)
    with pytest.raises(EngineError):
        resolve_backend("process", 0)
