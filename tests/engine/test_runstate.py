"""Checkpoint/resume: the run-state store and scheduler restore path."""

import json

import pytest

from repro.common.errors import EngineError
from repro.engine import (
    RunOptions,
    RunStateStore,
    SerialScheduler,
    TaskGraph,
    TaskState,
    ThreadedScheduler,
    task_fingerprint,
)

BACKENDS = [SerialScheduler(), ThreadedScheduler(max_workers=4)]
BACKEND_IDS = ["serial", "threaded"]


class TestFingerprint:
    def test_stable_and_parameter_sensitive(self):
        a = task_fingerprint("run", {"x": 1})
        assert a == task_fingerprint("run", {"x": 1})
        assert a != task_fingerprint("run", {"x": 2})
        assert a != task_fingerprint("other", {"x": 1})

    def test_key_order_does_not_matter(self):
        assert task_fingerprint("t", {"a": 1, "b": 2}) == task_fingerprint(
            "t", {"b": 2, "a": 1}
        )

    def test_empty_id_rejected(self):
        with pytest.raises(EngineError):
            task_fingerprint("")


class TestRunStateStore:
    def test_fresh_store_truncates(self, tmp_path):
        path = tmp_path / "run-state.jsonl"
        with RunStateStore(path) as store:
            store.record("a", "fp-a", "ok")
        with RunStateStore(path, resume=False) as store:
            assert len(store) == 0
        assert path.read_text() == ""

    def test_resume_loads_last_record_per_fingerprint(self, tmp_path):
        path = tmp_path / "run-state.jsonl"
        with RunStateStore(path) as store:
            store.record("a", "fp-a", "failed", error="boom")
            store.record("a", "fp-a", "ok", attempts=2)
            store.record("b", "fp-b", "failed")
        with RunStateStore(path, resume=True) as store:
            assert store.lookup("fp-a")["attempts"] == 2
            assert store.lookup("fp-b") is None  # failed: not restorable
            assert store.states() == {"fp-a": "ok", "fp-b": "failed"}

    def test_non_cacheable_success_is_not_restorable(self, tmp_path):
        path = tmp_path / "run-state.jsonl"
        with RunStateStore(path) as store:
            store.record("a", "fp-a", "ok", cacheable=False)
        with RunStateStore(path, resume=True) as store:
            assert store.lookup("fp-a") is None

    def test_records_survive_as_flushed_jsonl(self, tmp_path):
        path = tmp_path / "run-state.jsonl"
        store = RunStateStore(path)
        store.record("a", "fp-a", "ok", detail={"rows": 3})
        # Readable before close: a killed run keeps everything written.
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["detail"] == {"rows": 3}
        store.close()

    def test_bad_line_rejected_on_resume(self, tmp_path):
        # Garbage before the tail cannot come from a crashed append:
        # the store stays strict about it.
        path = tmp_path / "run-state.jsonl"
        good = json.dumps({"fingerprint": "f1", "state": "ok"})
        path.write_text(f"not json\n{good}\n")
        with pytest.raises(EngineError, match="bad run-state"):
            RunStateStore(path, resume=True)

    def test_torn_trailing_line_skipped_on_resume(self, tmp_path):
        path = tmp_path / "run-state.jsonl"
        good = json.dumps({"fingerprint": "f1", "state": "ok"})
        path.write_text(f'{good}\n{{"fingerprint": "f2", "sta')
        with pytest.warns(UserWarning, match="torn trailing"):
            store = RunStateStore(path, resume=True)
        assert store.lookup("f1") is not None
        assert store.lookup("f2") is None
        assert store.skipped == 1
        store.close()


@pytest.mark.parametrize("scheduler", BACKENDS, ids=BACKEND_IDS)
class TestSchedulerResume:
    def _graph(self, ran, fail_b=False):
        graph = TaskGraph()
        graph.add(
            "a",
            lambda ctx: ran.append("a") or "A",
            fingerprint=task_fingerprint("a"),
            checkpoint=lambda value: {"value": value},
            restore=lambda detail: detail["value"],
        )
        graph.add(
            "b",
            lambda ctx: (1 / 0) if fail_b else (ran.append("b") or "B"),
            dependencies=("a",),
            fingerprint=task_fingerprint("b"),
            checkpoint=lambda value: {"value": value},
            restore=lambda detail: detail["value"],
        )
        return graph

    def test_resume_skips_succeeded_tasks(self, scheduler, tmp_path):
        path = tmp_path / "run-state.jsonl"
        ran: list = []
        with RunStateStore(path) as store:
            recap = scheduler.run(
                self._graph(ran, fail_b=True),
                options=RunOptions(run_state=store),
            )
        assert recap.succeeded == ["a"] and recap.failed == ["b"]
        assert ran == ["a"]

        ran.clear()
        with RunStateStore(path, resume=True) as store:
            recap = scheduler.run(
                self._graph(ran), options=RunOptions(run_state=store)
            )
        assert recap.ok
        # Only the failed task re-ran; "a" was restored from checkpoint.
        assert ran == ["b"]
        assert recap.outcome("a").restored
        assert not recap.outcome("b").restored
        assert recap.value("a") == "A"
        assert recap.value("b") == "B"

    def test_restore_failure_falls_back_to_reexecution(self, scheduler, tmp_path):
        path = tmp_path / "run-state.jsonl"
        ran: list = []

        def bad_restore(detail):
            raise RuntimeError("checkpoint unusable")

        def graph_with_bad_restore():
            graph = TaskGraph()
            graph.add(
                "a",
                lambda ctx: ran.append("a") or "A",
                fingerprint=task_fingerprint("a"),
                checkpoint=lambda value: {"value": value},
                restore=bad_restore,
            )
            return graph

        with RunStateStore(path) as store:
            scheduler.run(
                graph_with_bad_restore(), options=RunOptions(run_state=store)
            )
        ran.clear()
        with RunStateStore(path, resume=True) as store:
            recap = scheduler.run(
                graph_with_bad_restore(), options=RunOptions(run_state=store)
            )
        assert recap.ok and ran == ["a"]
        assert not recap.outcome("a").restored

    def test_checkpoint_veto_prevents_caching(self, scheduler, tmp_path):
        path = tmp_path / "run-state.jsonl"
        ran: list = []

        def graph_with_veto():
            graph = TaskGraph()
            graph.add(
                "job",
                lambda ctx: ran.append("job") or "ran-but-failed",
                fingerprint=task_fingerprint("job"),
                checkpoint=lambda value: None,  # not worth caching
                restore=lambda detail: "cached",
            )
            return graph

        with RunStateStore(path) as store:
            scheduler.run(graph_with_veto(), options=RunOptions(run_state=store))
        with RunStateStore(path, resume=True) as store:
            recap = scheduler.run(
                graph_with_veto(), options=RunOptions(run_state=store)
            )
        assert ran == ["job", "job"]  # re-ran on resume
        assert recap.value("job") == "ran-but-failed"

    def test_changed_fingerprint_invalidates_checkpoint(self, scheduler, tmp_path):
        path = tmp_path / "run-state.jsonl"
        ran: list = []

        def graph_for(params):
            graph = TaskGraph()
            graph.add(
                "run",
                lambda ctx: ran.append(params) or params,
                fingerprint=task_fingerprint("run", {"p": params}),
                checkpoint=lambda value: {"value": value},
                restore=lambda detail: detail["value"],
            )
            return graph

        with RunStateStore(path) as store:
            scheduler.run(graph_for(1), options=RunOptions(run_state=store))
        with RunStateStore(path, resume=True) as store:
            recap = scheduler.run(
                graph_for(2), options=RunOptions(run_state=store)
            )
        assert ran == [1, 2]  # new params -> no restore
        assert not recap.outcome("run").restored

    def test_tasks_without_fingerprint_never_checkpoint(self, scheduler, tmp_path):
        path = tmp_path / "run-state.jsonl"
        with RunStateStore(path) as store:
            scheduler.run(
                (lambda g: (g.add("plain", lambda ctx: 1), g)[1])(TaskGraph()),
                options=RunOptions(run_state=store),
            )
            assert len(store) == 0
