"""The deterministic fault-injection harness."""

import time

import pytest

from repro.common.errors import (
    EngineError,
    InjectedFault,
    TransientInjectedFault,
)
from repro.engine import (
    FaultPlan,
    RetryPolicy,
    RunOptions,
    SerialScheduler,
    TaskGraph,
    ThreadedScheduler,
)

BACKENDS = [SerialScheduler(), ThreadedScheduler(max_workers=4)]
BACKEND_IDS = ["serial", "threaded"]


class TestSpecParsing:
    def test_parse_all_modes(self):
        plan = FaultPlan.parse("flaky:run:2, fail:viz, delay:setup:0.5, rate:exp-*:0.25")
        assert [s.mode for s in plan.specs] == ["flaky", "fail", "delay", "rate"]
        assert plan.specs[0].arg == 2
        assert plan.specs[3].target == "exp-*"
        assert "flaky:run:2" in plan.describe()

    def test_bad_specs_rejected(self):
        for bad in ("", "boom:run", "flaky:run", "fail:run:1", "rate:run:2",
                    "delay:run:x", "flaky::2"):
            with pytest.raises(EngineError):
                FaultPlan.parse(bad)

    @pytest.mark.parametrize(
        "spec",
        [
            "flaky:run:nan",  # parses as float but cannot count attempts
            "flaky:run:inf",
            "delay:setup:nan",
            "delay:setup:inf",
            "rate:exp-*:nan",
            ":::",
            "flaky:run:2:extra",
            "flaky : run : ∞",
            "delay:setup:1e309",  # overflows to inf after float()
            "\x00flaky:run:2",
        ],
    )
    def test_adversarial_specs_never_traceback(self, spec):
        # Fuzzer-grade garbage: a garbled spec must be refused with a
        # clean EngineError at parse time — never an exception at
        # injection time deep inside a running sweep.
        with pytest.raises(EngineError):
            FaultPlan.parse(spec)

    def test_describe_parse_round_trip_is_stable(self):
        plan = FaultPlan.parse("flaky:run:2, delay:setup:0.5, rate:exp-*:0.25")
        again = FaultPlan.parse(plan.describe())
        assert again.describe() == plan.describe()

    def test_glob_matching(self):
        plan = FaultPlan.parse("fail:exp-*")
        spec = plan.specs[0]
        assert spec.matches("exp-1") and spec.matches("exp-two")
        assert not spec.matches("run")


class TestFaultApplication:
    def test_fail_is_permanent(self):
        plan = FaultPlan.parse("fail:run")
        with pytest.raises(InjectedFault):
            plan.before("run")
        with pytest.raises(InjectedFault):
            plan.before("run")
        plan.before("other")  # untouched

    def test_flaky_clears_after_n_attempts(self):
        plan = FaultPlan.parse("flaky:run:2")
        for _ in range(2):
            with pytest.raises(TransientInjectedFault):
                plan.before("run")
        plan.before("run")  # third attempt succeeds

    def test_flaky_counters_are_per_task(self):
        plan = FaultPlan.parse("flaky:exp-*:1")
        with pytest.raises(TransientInjectedFault):
            plan.before("exp-a")
        with pytest.raises(TransientInjectedFault):
            plan.before("exp-b")  # own counter, still doomed once
        plan.before("exp-a")
        plan.before("exp-b")

    def test_delay_sleeps(self):
        plan = FaultPlan.parse("delay:run:0.05")
        start = time.perf_counter()
        plan.before("run")
        assert time.perf_counter() - start >= 0.05

    def test_rate_stream_is_deterministic(self):
        def draw(seed):
            plan = FaultPlan.parse("rate:run:0.5", seed=seed)
            fired = []
            for _ in range(20):
                try:
                    plan.before("run")
                    fired.append(False)
                except TransientInjectedFault:
                    fired.append(True)
            return fired

        assert draw(1) == draw(1)
        assert draw(1) != draw(2)
        assert any(draw(1)) and not all(draw(1))


@pytest.mark.parametrize("scheduler", BACKENDS, ids=BACKEND_IDS)
class TestFaultsThroughScheduler:
    def test_flaky_task_survives_with_retries(self, scheduler):
        graph = TaskGraph()
        graph.add("run", lambda ctx: "value")
        options = RunOptions(
            retry=RetryPolicy(max_attempts=3, backoff_s=0.0, jitter=0.0),
            faults=FaultPlan.parse("flaky:run:2"),
        )
        recap = scheduler.run(graph, options=options)
        assert recap.ok
        assert recap.value("run") == "value"
        assert recap.outcome("run").attempts == 3

    def test_flaky_task_fails_without_retries(self, scheduler):
        graph = TaskGraph()
        graph.add("run", lambda ctx: "value")
        options = RunOptions(faults=FaultPlan.parse("flaky:run:2"))
        recap = scheduler.run(graph, options=options)
        assert recap.failed == ["run"]
        assert isinstance(recap.outcome("run").error, TransientInjectedFault)

    def test_permanent_fault_is_not_retried(self, scheduler):
        ran = []
        graph = TaskGraph()
        graph.add("run", lambda ctx: ran.append(1))
        options = RunOptions(
            retry=RetryPolicy(max_attempts=5, backoff_s=0.0, jitter=0.0),
            faults=FaultPlan.parse("fail:run"),
        )
        recap = scheduler.run(graph, options=options)
        assert recap.failed == ["run"]
        assert recap.outcome("run").attempts == 1
        assert ran == []  # the fault fires before the payload
