"""TaskGraph structure: construction, validation, ordering, readiness."""

import pytest

from repro.common.errors import EngineError
from repro.engine import ReadySet, Task, TaskContext, TaskGraph


def noop(ctx):
    return None


def diamond() -> TaskGraph:
    graph = TaskGraph()
    graph.add("a", noop)
    graph.add("b", noop, dependencies=("a",))
    graph.add("c", noop, dependencies=("a",))
    graph.add("d", noop, dependencies=("b", "c"))
    return graph


class TestConstruction:
    def test_add_by_id_and_by_task_object(self):
        graph = TaskGraph()
        graph.add("a", noop, description="first")
        graph.add(Task(id="b", payload=noop, dependencies=("a",)))
        assert graph.ids() == ["a", "b"]
        assert graph.task("a").description == "first"
        assert graph.task("b").dependencies == ("a",)

    def test_duplicate_id_rejected(self):
        graph = TaskGraph()
        graph.add("a", noop)
        with pytest.raises(EngineError, match="duplicate"):
            graph.add("a", noop)

    def test_empty_id_and_self_dependency_rejected(self):
        with pytest.raises(EngineError, match="id required"):
            Task(id="", payload=noop)
        with pytest.raises(EngineError, match="depends on itself"):
            Task(id="a", payload=noop, dependencies=("a",))

    def test_id_without_payload_rejected(self):
        with pytest.raises(EngineError, match="needs a payload"):
            TaskGraph().add("a")

    def test_lookup_protocol(self):
        graph = diamond()
        assert len(graph) == 4
        assert "a" in graph and "zzz" not in graph
        assert [t.id for t in graph] == ["a", "b", "c", "d"]
        with pytest.raises(EngineError, match="no such task"):
            graph.task("zzz")


class TestStructure:
    def test_validate_rejects_unknown_dependency(self):
        graph = TaskGraph()
        graph.add("b", noop, dependencies=("ghost",))
        with pytest.raises(EngineError, match="unknown task 'ghost'"):
            graph.validate()

    def test_validate_rejects_cycle(self):
        graph = TaskGraph()
        graph.add("a", noop, dependencies=("b",))
        graph.add("b", noop, dependencies=("a",))
        with pytest.raises(EngineError, match="cycle"):
            graph.validate()

    def test_topological_levels_of_diamond(self):
        assert diamond().topological_levels() == [["a"], ["b", "c"], ["d"]]

    def test_dependents_and_downstream(self):
        graph = diamond()
        assert graph.dependents("a") == ["b", "c"]
        assert graph.downstream("a") == {"b", "c", "d"}
        assert graph.downstream("b") == {"d"}
        assert graph.downstream("d") == set()


class TestReadySet:
    def test_hands_out_in_dependency_order(self):
        ready = ReadySet(diamond())
        assert ready.take_ready() == ["a"]
        assert ready.take_ready() == []  # handed out only once
        assert ready.complete("a") == ["b", "c"]
        assert ready.complete("b") == []  # d still waits on c
        assert ready.complete("c") == ["d"]
        assert ready.exhausted

    def test_discard_drops_doomed_tasks(self):
        graph = diamond()
        ready = ReadySet(graph)
        ready.take_ready()
        ready.discard(graph.downstream("a"))
        assert ready.exhausted
        assert ready.pending() == []


class TestTaskContext:
    def test_result_requires_declared_dependency(self):
        ctx = TaskContext(task_id="d", results={"b": 2})
        assert ctx.result("b") == 2
        with pytest.raises(EngineError, match="did not declare"):
            ctx.result("c")
