"""Scheduler semantics, identical across both backends.

Every test in ``TestBothBackends`` is parametrized over the serial and
threaded schedulers: the engine's contract is that backend choice can
only change wall-clock time and event interleaving, never results.
"""

import threading

import pytest

from repro.common.errors import EngineError
from repro.engine import (
    SerialScheduler,
    TaskGraph,
    TaskState,
    ThreadedScheduler,
)
from repro.monitor.tracing import Tracer, activate, current_tracer

BACKENDS = [SerialScheduler(), ThreadedScheduler(max_workers=4)]
BACKEND_IDS = ["serial", "threaded"]


def failing_graph() -> TaskGraph:
    """a -> b(fails) -> c, with x independent of all three."""
    graph = TaskGraph()
    graph.add("a", lambda ctx: "A")
    graph.add("b", lambda ctx: 1 / 0, dependencies=("a",))
    graph.add("c", lambda ctx: "C", dependencies=("b",))
    graph.add("x", lambda ctx: "X")
    return graph


@pytest.mark.parametrize("scheduler", BACKENDS, ids=BACKEND_IDS)
class TestBothBackends:
    def test_values_flow_along_edges(self, scheduler):
        graph = TaskGraph()
        graph.add("one", lambda ctx: 1)
        graph.add("two", lambda ctx: 2)
        graph.add(
            "sum",
            lambda ctx: ctx.result("one") + ctx.result("two"),
            dependencies=("one", "two"),
        )
        recap = scheduler.run(graph)
        assert recap.ok
        assert recap.value("sum") == 3
        assert recap.wall_seconds > 0

    def test_failure_skips_downstream_but_not_independent(self, scheduler):
        recap = scheduler.run(failing_graph())
        assert not recap.ok
        assert recap.failed == ["b"]
        assert recap.skipped == ["c"]
        assert sorted(recap.succeeded) == ["a", "x"]
        assert recap.outcome("c").blamed_on == "b"
        assert isinstance(recap.outcome("b").error, ZeroDivisionError)

    def test_raise_first_error_reraises_payload_exception(self, scheduler):
        recap = scheduler.run(failing_graph())
        with pytest.raises(ZeroDivisionError):
            recap.raise_first_error()

    def test_value_of_unsuccessful_task_raises(self, scheduler):
        recap = scheduler.run(failing_graph())
        with pytest.raises(EngineError, match="did not succeed"):
            recap.value("c")

    def test_invalid_graph_rejected_before_any_payload_runs(self, scheduler):
        ran = []
        graph = TaskGraph()
        graph.add("a", lambda ctx: ran.append("a"), dependencies=("ghost",))
        with pytest.raises(EngineError, match="unknown task"):
            scheduler.run(graph)
        assert ran == []

    def test_empty_graph_is_a_successful_noop(self, scheduler):
        recap = scheduler.run(TaskGraph())
        assert recap.ok and recap.outcomes == {}

    def test_task_spans_parent_under_calling_span(self, scheduler):
        tracer = Tracer()
        graph = TaskGraph()
        graph.add("a", lambda ctx: None)
        graph.add("b", lambda ctx: None, dependencies=("a",))
        with activate(tracer):
            with tracer.span("caller"):
                scheduler.run(graph)
        roots = tracer.roots()
        assert [s.name for s in roots] == ["caller"]
        children = tracer.children(roots[0])
        assert sorted(c.name for c in children) == ["task/a", "task/b"]
        assert all(
            c.attributes["scheduler"] == scheduler.backend for c in children
        )

    def test_ambient_tracer_reactivated_inside_payloads(self, scheduler):
        tracer = Tracer()
        seen = []

        def payload(ctx):
            seen.append(current_tracer() is tracer)

        graph = TaskGraph()
        graph.add("a", payload)
        graph.add("b", payload)
        with activate(tracer):
            scheduler.run(graph)
        assert seen == [True, True]

    def test_recap_text_mentions_every_task(self, scheduler):
        text = scheduler.run(failing_graph()).recap()
        assert "4 tasks: 2 ok, 1 failed, 1 skipped" in text
        assert "c: skipped (upstream b failed)" in text


class TestSerialDeterminism:
    def test_insertion_order_is_execution_order(self):
        order = []
        graph = TaskGraph()
        for name in ("c", "a", "b"):
            graph.add(name, (lambda n: lambda ctx: order.append(n))(name))
        SerialScheduler().run(graph)
        assert order == ["c", "a", "b"]

    def test_freed_independent_work_still_runs_after_failure(self):
        order = []
        graph = TaskGraph()
        graph.add("boom", lambda ctx: 1 / 0)
        graph.add("down", lambda ctx: order.append("down"), dependencies=("boom",))
        graph.add("free", lambda ctx: order.append("free"))
        recap = SerialScheduler().run(graph)
        assert order == ["free"]
        assert recap.skipped == ["down"]


class TestThreadedConcurrency:
    def test_independent_tasks_overlap(self):
        """Two tasks that each wait for the other to start must overlap."""
        barrier = threading.Barrier(2, timeout=10)
        graph = TaskGraph()
        graph.add("left", lambda ctx: barrier.wait())
        graph.add("right", lambda ctx: barrier.wait())
        recap = ThreadedScheduler(max_workers=2).run(graph)
        assert recap.ok  # would raise BrokenBarrierError if serialized

    def test_dependencies_still_ordered_across_threads(self):
        order = []
        lock = threading.Lock()

        def log(name):
            def payload(ctx):
                with lock:
                    order.append(name)

            return payload

        graph = TaskGraph()
        graph.add("first", log("first"))
        graph.add("mid1", log("mid1"), dependencies=("first",))
        graph.add("mid2", log("mid2"), dependencies=("first",))
        graph.add("last", log("last"), dependencies=("mid1", "mid2"))
        recap = ThreadedScheduler(max_workers=4).run(graph)
        assert recap.ok
        assert order[0] == "first" and order[-1] == "last"

    def test_bad_worker_count_rejected(self):
        with pytest.raises(EngineError, match="max_workers"):
            ThreadedScheduler(max_workers=0)
