"""Tests for cross-run memoization: CacheAwarePayload + the schedulers."""

import pytest

from repro.common.errors import EngineError
from repro.engine import (
    CacheAwarePayload,
    MemoizedPayload,
    RunOptions,
    SerialScheduler,
    TaskGraph,
    TaskState,
    ThreadedScheduler,
)
from repro.monitor.journal import RunJournal, read_journal
from repro.monitor.tracing import Tracer
from repro.store import ArtifactStore

BACKENDS = [SerialScheduler(), ThreadedScheduler(max_workers=4)]
BACKEND_IDS = ["serial", "threaded"]

KEY = "d" * 64


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


@pytest.fixture
def workdir(tmp_path):
    root = tmp_path / "work"
    root.mkdir()
    return root


def counting_payload(root, runs, key=KEY, meta=None, content="payload\n"):
    """A memoized task that writes ``out.txt`` and counts executions."""

    def fn(ctx):
        runs.append(1)
        (root / "out.txt").write_text(content)
        return content

    return MemoizedPayload(
        fn=fn,
        key=key,
        root=root,
        outputs=lambda value: {"out": root / "out.txt"},
        meta=meta if meta is not None else (lambda value: {"value": value}),
        restore=lambda m: m["value"],
    )


def graph_with(payload):
    graph = TaskGraph()
    graph.add("work", payload)
    graph.add(
        "consumer", lambda ctx: ctx.result("work").upper(), dependencies=("work",)
    )
    return graph


class TestMemoizedPayload:
    def test_empty_key_rejected(self, workdir):
        with pytest.raises(EngineError):
            MemoizedPayload(
                fn=lambda ctx: None, key="", root=workdir, outputs=lambda v: {}
            )

    def test_satisfies_protocol(self, workdir):
        payload = counting_payload(workdir, [])
        assert isinstance(payload, CacheAwarePayload)
        # A plain function is not cache-aware: the scheduler skips it.
        assert not isinstance(lambda ctx: None, CacheAwarePayload)

    def test_default_restore_returns_meta(self, workdir):
        payload = MemoizedPayload(
            fn=lambda ctx: None, key=KEY, root=workdir, outputs=lambda v: {}
        )
        assert payload.cache_restore({"a": 1}) == {"a": 1}


@pytest.mark.parametrize("scheduler", BACKENDS, ids=BACKEND_IDS)
class TestSchedulerMemoization:
    def test_miss_then_hit(self, scheduler, store, workdir):
        runs = []
        options = RunOptions(artifact_store=store)

        first = scheduler.run(graph_with(counting_payload(workdir, runs)), options=options)
        assert first.ok and runs == [1]
        assert first.outcome("work").state is TaskState.OK

        (workdir / "out.txt").unlink()  # the hit must rematerialize it
        second = scheduler.run(graph_with(counting_payload(workdir, runs)), options=options)
        assert second.ok and runs == [1]  # not executed again
        assert second.outcome("work").state is TaskState.CACHED
        assert second.cached == ["work"]
        assert "cached" in second.outcome("work").describe()
        assert (workdir / "out.txt").read_text() == "payload\n"
        # The restored value flows to dependents like a real result.
        assert second.value("consumer") == "PAYLOAD\n"

    def test_key_change_misses(self, scheduler, store, workdir):
        runs = []
        options = RunOptions(artifact_store=store)
        scheduler.run(graph_with(counting_payload(workdir, runs)), options=options)
        other = counting_payload(workdir, runs, key="e" * 64)
        recap = scheduler.run(graph_with(other), options=options)
        assert recap.outcome("work").state is TaskState.OK
        assert runs == [1, 1]

    def test_no_store_always_executes(self, scheduler, workdir):
        runs = []
        scheduler.run(graph_with(counting_payload(workdir, runs)))
        scheduler.run(graph_with(counting_payload(workdir, runs)))
        assert runs == [1, 1]

    def test_meta_none_vetoes_caching(self, scheduler, store, workdir):
        runs = []
        options = RunOptions(artifact_store=store)
        payload = counting_payload(workdir, runs, meta=lambda value: None)
        scheduler.run(graph_with(payload), options=options)
        payload = counting_payload(workdir, runs, meta=lambda value: None)
        scheduler.run(graph_with(payload), options=options)
        assert runs == [1, 1]
        assert store.lookup(KEY) is None

    def test_broken_restore_degrades_to_miss(self, scheduler, store, workdir):
        runs = []
        options = RunOptions(artifact_store=store)
        scheduler.run(graph_with(counting_payload(workdir, runs)), options=options)

        def boom(meta):
            raise RuntimeError("restore failed")

        payload = counting_payload(workdir, runs)
        payload.restore = boom
        recap = scheduler.run(graph_with(payload), options=options)
        assert recap.ok
        assert recap.outcome("work").state is TaskState.OK
        assert runs == [1, 1]

    def test_cache_events_journaled(self, scheduler, store, workdir, tmp_path):
        runs = []
        options = RunOptions(artifact_store=store)
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(path)
        tracer = Tracer(journal=journal)
        scheduler.run(
            graph_with(counting_payload(workdir, runs)),
            tracer=tracer,
            options=options,
        )
        scheduler.run(
            graph_with(counting_payload(workdir, runs)),
            tracer=tracer,
            options=options,
        )
        journal.close()
        events = [e for e in read_journal(path) if e["event"] == "cache"]
        assert [e["hit"] for e in events] == [False, True]
        miss, hit = events
        assert miss["bytes_stored"] == len("payload\n")
        assert hit["bytes_saved"] == len("payload\n")
        assert miss["key"] == hit["key"] == KEY
