"""Retry policies, deterministic backoff and per-task deadlines."""

import time

import pytest

from repro.common.errors import (
    EngineError,
    TaskTimeoutError,
    TransientError,
    TransientInjectedFault,
    UnreachableHostError,
)
from repro.engine import NO_RETRY, RetryPolicy, call_with_timeout
from repro.engine import SerialScheduler, TaskGraph, ThreadedScheduler, TaskState

BACKENDS = [SerialScheduler(), ThreadedScheduler(max_workers=4)]
BACKEND_IDS = ["serial", "threaded"]


class TestRetryPolicy:
    def test_defaults_retry_only_transients(self):
        policy = RetryPolicy()
        assert policy.retryable(UnreachableHostError("down"))
        assert policy.retryable(TransientInjectedFault("chaos"))
        assert policy.retryable(TaskTimeoutError("slow"))
        assert not policy.retryable(ValueError("bug"))
        assert not policy.retryable(EngineError("permanent"))

    def test_no_retry_is_single_attempt(self):
        assert NO_RETRY.max_attempts == 1

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff_s=0.1, multiplier=2.0, max_backoff_s=0.3, jitter=0.0
        )
        delays = [policy.delay_s("t", n) for n in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_jittered_delay_is_deterministic(self):
        policy = RetryPolicy(jitter=0.5, seed=7)
        first = policy.delay_s("task-x", 2)
        assert first == policy.delay_s("task-x", 2)
        # A different task or attempt draws a different jitter stream.
        assert first != policy.delay_s("task-y", 2)
        base = RetryPolicy(jitter=0.0).delay_s("task-x", 2)
        assert base <= first <= base * 1.5

    def test_bad_parameters_rejected(self):
        with pytest.raises(EngineError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(EngineError, match="jitter"):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(EngineError, match="non-negative"):
            RetryPolicy(backoff_s=-1)


class TestCallWithTimeout:
    def test_none_runs_inline(self):
        assert call_with_timeout(lambda: 42, None) == 42

    def test_deadline_raises_transient_timeout(self):
        with pytest.raises(TaskTimeoutError, match="deadline"):
            call_with_timeout(lambda: time.sleep(5), 0.05, label="slow")
        # The timeout is retryable by default.
        assert issubclass(TaskTimeoutError, TransientError)

    def test_payload_exception_propagates(self):
        with pytest.raises(ZeroDivisionError):
            call_with_timeout(lambda: 1 / 0, 1.0)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(EngineError, match="positive"):
            call_with_timeout(lambda: 1, 0)


@pytest.mark.parametrize("scheduler", BACKENDS, ids=BACKEND_IDS)
class TestSchedulerRetries:
    def test_transient_failures_retry_until_success(self, scheduler):
        attempts = []

        def flaky(ctx):
            attempts.append(1)
            if len(attempts) < 3:
                raise UnreachableHostError("blip")
            return "done"

        graph = TaskGraph()
        graph.add(
            "flaky",
            flaky,
            retry=RetryPolicy(max_attempts=3, backoff_s=0.0, jitter=0.0),
        )
        recap = scheduler.run(graph)
        assert recap.ok
        assert recap.value("flaky") == "done"
        assert recap.outcome("flaky").attempts == 3

    def test_permanent_errors_fail_fast(self, scheduler):
        attempts = []

        def broken(ctx):
            attempts.append(1)
            raise ValueError("logic bug")

        graph = TaskGraph()
        graph.add(
            "broken",
            broken,
            retry=RetryPolicy(max_attempts=5, backoff_s=0.0, jitter=0.0),
        )
        recap = scheduler.run(graph)
        assert recap.failed == ["broken"]
        assert len(attempts) == 1

    def test_exhausted_retries_fail_with_last_error(self, scheduler):
        def always_down(ctx):
            raise UnreachableHostError("still down")

        graph = TaskGraph()
        graph.add(
            "down",
            always_down,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0, jitter=0.0),
        )
        recap = scheduler.run(graph)
        outcome = recap.outcome("down")
        assert outcome.state is TaskState.FAILED
        assert outcome.attempts == 2
        assert isinstance(outcome.error, UnreachableHostError)

    def test_per_task_timeout_fails_the_task(self, scheduler):
        graph = TaskGraph()
        graph.add("hang", lambda ctx: time.sleep(5), timeout_s=0.05)
        graph.add("fine", lambda ctx: "ok")
        recap = scheduler.run(graph)
        assert recap.failed == ["hang"]
        assert isinstance(recap.outcome("hang").error, TaskTimeoutError)
        assert recap.value("fine") == "ok"

    def test_optional_task_degrades_and_dependents_run(self, scheduler):
        graph = TaskGraph()
        graph.add("nice-to-have", lambda ctx: 1 / 0, optional=True)
        graph.add(
            "after",
            lambda ctx: "ran",
            dependencies=("nice-to-have",),
        )
        recap = scheduler.run(graph)
        assert recap.ok  # degraded, not broken
        assert recap.degraded == ["nice-to-have"]
        assert recap.value("after") == "ran"
        assert "degraded" in recap.recap()

    def test_degraded_dependency_value_raises_engine_error(self, scheduler):
        graph = TaskGraph()
        graph.add("opt", lambda ctx: 1 / 0, optional=True)
        graph.add(
            "reader",
            lambda ctx: ctx.result("opt"),
            dependencies=("opt",),
        )
        recap = scheduler.run(graph)
        assert recap.failed == ["reader"]
        error = recap.outcome("reader").error
        assert isinstance(error, EngineError)
        assert "degraded" in str(error)

    def test_undeclared_dependency_raises_engine_error(self, scheduler):
        graph = TaskGraph()
        graph.add("a", lambda ctx: 1)
        graph.add("b", lambda ctx: ctx.result("a"))  # no edge declared
        recap = scheduler.run(graph)
        error = recap.outcome("b").error
        assert isinstance(error, EngineError)
        assert "did not declare" in str(error)


class TestAbortAccounting:
    def test_keyboard_interrupt_recorded_and_reraised_serial(self):
        def interrupt(ctx):
            raise KeyboardInterrupt

        graph = TaskGraph()
        graph.add("victim", interrupt)
        graph.add("never", lambda ctx: "x", dependencies=("victim",))
        scheduler = SerialScheduler()
        result_holder = {}

        # The outcome is recorded into the GraphResult even though run()
        # re-raises; capture it through a wrapped _execute.
        original = scheduler._execute

        def capturing(graph, result, tracer, parent, options):
            result_holder["result"] = result
            return original(graph, result, tracer, parent, options)

        scheduler._execute = capturing
        with pytest.raises(KeyboardInterrupt):
            scheduler.run(graph)
        outcome = result_holder["result"].outcome("victim")
        assert outcome.state is TaskState.ABORTED
        assert isinstance(outcome.error, KeyboardInterrupt)

    def test_threaded_abort_propagates(self):
        graph = TaskGraph()
        graph.add("victim", lambda ctx: (_ for _ in ()).throw(KeyboardInterrupt))
        with pytest.raises(KeyboardInterrupt):
            ThreadedScheduler(max_workers=2).run(graph)


class TestMaxDelayCap:
    """``max_delay_s``: the post-jitter ceiling the serve queue leans on."""

    def test_caps_the_jittered_delay(self):
        uncapped = RetryPolicy(
            backoff_s=1.0, multiplier=2.0, max_backoff_s=4.0, jitter=0.5
        )
        capped = RetryPolicy(
            backoff_s=1.0,
            multiplier=2.0,
            max_backoff_s=4.0,
            jitter=0.5,
            max_delay_s=4.0,
        )
        # Jitter stretches *above* max_backoff_s; max_delay_s does not let it.
        assert uncapped.delay_s("t", 5) > 4.0
        assert capped.delay_s("t", 5) == 4.0

    def test_huge_attempt_numbers_do_not_overflow(self):
        policy = RetryPolicy(
            backoff_s=0.05, multiplier=2.0, max_backoff_s=1.0, max_delay_s=1.0
        )
        # 2.0 ** 2000 overflows a float; the caps must still win.
        for attempt in (1025, 2000, 10**6):
            assert policy.delay_s("t", attempt) <= 1.0

    def test_none_preserves_the_historical_behaviour(self):
        with_cap = RetryPolicy(jitter=0.5, max_delay_s=None)
        without = RetryPolicy(jitter=0.5)
        for attempt in (1, 3, 7):
            assert with_cap.delay_s("t", attempt) == without.delay_s("t", attempt)

    def test_negative_cap_rejected(self):
        with pytest.raises(EngineError, match="max_delay_s"):
            RetryPolicy(max_delay_s=-1.0)

    def test_requeue_policy_is_bounded(self):
        from repro.serve.queue import REQUEUE_POLICY

        assert REQUEUE_POLICY.max_delay_s is not None
        assert all(
            REQUEUE_POLICY.delay_s("job-000000", n) <= REQUEUE_POLICY.max_delay_s
            for n in range(1, 50)
        )
