"""Signal-safe shutdown: the cancel token, the signal guard, and the
schedulers' drain-then-raise contract."""

import os
import signal
import threading

import pytest

from repro.engine import (
    EXIT_SIGINT,
    EXIT_SIGTERM,
    CancelToken,
    GracefulShutdown,
    RunCancelled,
    RunOptions,
    SerialScheduler,
    TaskGraph,
    ThreadedScheduler,
)

BACKENDS = [SerialScheduler(), ThreadedScheduler(max_workers=2)]
BACKEND_IDS = ["serial", "threaded"]


class TestCancelToken:
    def test_starts_clear(self):
        token = CancelToken()
        assert not token.cancelled
        assert token.signum is None
        token.raise_if_cancelled()  # no-op while clear

    def test_first_signal_wins(self):
        token = CancelToken()
        token.cancel(signal.SIGTERM)
        token.cancel(signal.SIGINT)
        assert token.cancelled
        assert token.signum == signal.SIGTERM

    def test_raise_carries_signal(self):
        token = CancelToken()
        token.cancel(signal.SIGTERM)
        with pytest.raises(RunCancelled) as excinfo:
            token.raise_if_cancelled()
        assert excinfo.value.signum == signal.SIGTERM
        assert "SIGTERM" in str(excinfo.value)


class TestRunCancelled:
    def test_exit_codes_follow_128_plus_signum(self):
        assert RunCancelled(signal.SIGINT).exit_code == EXIT_SIGINT == 130
        assert RunCancelled(signal.SIGTERM).exit_code == EXIT_SIGTERM == 143

    def test_programmatic_cancel_defaults_to_sigint_code(self):
        assert RunCancelled().exit_code == EXIT_SIGINT

    def test_not_absorbed_by_except_exception(self):
        """Payload retry loops catch Exception; a shutdown request must
        sail through them."""
        assert not issubclass(RunCancelled, Exception)


class TestGracefulShutdown:
    def test_signal_sets_token_instead_of_raising(self):
        token = CancelToken()
        with GracefulShutdown(token) as guard:
            assert guard.installed
            os.kill(os.getpid(), signal.SIGTERM)
            assert token.cancelled
            assert token.signum == signal.SIGTERM
        assert guard.exit_code == EXIT_SIGTERM

    def test_previous_handlers_restored_on_exit(self):
        before = {s: signal.getsignal(s) for s in GracefulShutdown.SIGNALS}
        with GracefulShutdown():
            assert signal.getsignal(signal.SIGTERM) != before[signal.SIGTERM]
        for signum, handler in before.items():
            assert signal.getsignal(signum) == handler

    def test_second_signal_escalates_to_default(self):
        """The first signal drains; the second means it — the guard
        falls back to the default disposition (KeyboardInterrupt for
        SIGINT), so a wedged payload can still be killed."""
        token = CancelToken()
        with pytest.raises(KeyboardInterrupt):
            with GracefulShutdown(token):
                os.kill(os.getpid(), signal.SIGINT)
                assert token.cancelled
                os.kill(os.getpid(), signal.SIGINT)
        assert token.signum == signal.SIGINT

    def test_worker_thread_degrades_to_noop(self):
        """signal.signal is illegal off the main thread; the CI executor
        runs popper mains on worker threads, so the guard must degrade
        instead of blowing up."""
        outcome = {}

        def run():
            token = CancelToken()
            with GracefulShutdown(token) as guard:
                outcome["installed"] = guard.installed
                token.cancel(signal.SIGTERM)
                outcome["exit_code"] = guard.exit_code

        thread = threading.Thread(target=run)
        thread.start()
        thread.join(timeout=5)
        assert outcome == {"installed": False, "exit_code": EXIT_SIGTERM}

    def test_exit_code_zero_when_never_signalled(self):
        with GracefulShutdown() as guard:
            pass
        assert guard.exit_code == 0


@pytest.mark.parametrize("scheduler", BACKENDS, ids=BACKEND_IDS)
class TestSchedulerDrain:
    def test_cancelled_before_start_runs_nothing(self, scheduler):
        token = CancelToken()
        token.cancel(signal.SIGTERM)
        ran = []
        graph = TaskGraph()
        graph.add("a", lambda ctx: ran.append("a"))
        with pytest.raises(RunCancelled) as excinfo:
            scheduler.run(graph, options=RunOptions(cancel=token))
        assert ran == []
        assert excinfo.value.exit_code == EXIT_SIGTERM

    def test_in_flight_task_drains_then_no_new_work_starts(self, scheduler):
        """Cancellation lands mid-task: that task completes (and would
        checkpoint); its downstream never starts."""
        token = CancelToken()
        ran = []

        def first(ctx):
            ran.append("a")
            token.cancel(signal.SIGINT)
            return "A"

        graph = TaskGraph()
        graph.add("a", first)
        graph.add("b", lambda ctx: ran.append("b"), dependencies=("a",))
        graph.add("c", lambda ctx: ran.append("c"), dependencies=("b",))
        with pytest.raises(RunCancelled) as excinfo:
            scheduler.run(graph, options=RunOptions(cancel=token))
        assert ran == ["a"]
        assert excinfo.value.exit_code == EXIT_SIGINT

    def test_uncancelled_run_unaffected(self, scheduler):
        token = CancelToken()
        graph = TaskGraph()
        graph.add("a", lambda ctx: "A")
        recap = scheduler.run(graph, options=RunOptions(cancel=token))
        assert recap.ok
