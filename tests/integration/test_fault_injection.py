"""End-to-end resilience through the CLI: faults, retries, resume, chaos.

These are the acceptance scenarios for the fault-tolerance work: a
seeded fault plan plus ``--retries`` completes a sweep that would
otherwise fail, an interrupted sweep resumed with ``--resume`` re-runs
only the unfinished experiments and leaves completed artifacts
byte-identical, optional stages degrade without failing the run, and a
per-stage deadline turns a hung stage into an ERRORED experiment.
"""

import pytest

from repro.core.cli import main
from repro.monitor.journal import read_journal

TORPOR_VARS = "runner: torpor-variability\nruns: 2\nseed: 7\n"


@pytest.fixture
def repo_dir(tmp_path):
    path = tmp_path / "mypaper-repo"
    path.mkdir()
    assert main(["-C", str(path), "init"]) == 0
    return path


def add_torpor(repo_dir, name, vars_text=TORPOR_VARS):
    assert main(["-C", str(repo_dir), "add", "torpor", name]) == 0
    (repo_dir / "experiments" / name / "vars.yml").write_text(vars_text)
    return repo_dir / "experiments" / name


class TestFlakyWithRetries:
    def test_flaky_run_survives_and_journals_attempts(self, repo_dir, capsys):
        exp = add_torpor(repo_dir, "myexp")
        assert (
            main(
                [
                    "-C",
                    str(repo_dir),
                    "run",
                    "myexp",
                    "--retries",
                    "3",
                    "--inject-faults",
                    "flaky:run:2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "myexp" in out and "result rows, ok" in out
        events = read_journal(exp / "journal.jsonl")
        run_attempts = [
            e for e in events if e["event"] == "attempt" and e["task"] == "run"
        ]
        # Two injected transient failures, success on the third attempt.
        assert [e["attempt"] for e in run_attempts] == [1, 2, 3]
        assert events[-1]["event"] == "run_end"
        assert events[-1]["status"] == "ok"

    def test_flaky_run_without_retries_errors(self, repo_dir, capsys):
        add_torpor(repo_dir, "myexp")
        assert (
            main(
                ["-C", str(repo_dir), "run", "myexp", "--inject-faults", "flaky:run:2"]
            )
            == 2
        )
        assert "myexp: ERRORED" in capsys.readouterr().out

    def test_chaos_smoke_shorthand_completes(self, repo_dir):
        add_torpor(repo_dir, "myexp")
        assert main(["-C", str(repo_dir), "run", "--all", "--chaos-smoke"]) == 0

    def test_bad_fault_spec_rejected_before_running(self, repo_dir, capsys):
        add_torpor(repo_dir, "myexp")
        exit_code = main(
            ["-C", str(repo_dir), "run", "myexp", "--inject-faults", "bogus:run"]
        )
        assert exit_code == 2
        assert not (repo_dir / "experiments" / "myexp" / "results.csv").exists()


class TestSweepResume:
    def test_resume_skips_completed_experiments(self, repo_dir, capsys):
        one = add_torpor(repo_dir, "one")
        add_torpor(repo_dir, "two")

        # First pass completes only "one" (as if the sweep was killed).
        assert main(["-C", str(repo_dir), "run", "one"]) == 0
        capsys.readouterr()
        results_before = (one / "results.csv").read_bytes()
        journal_before = (one / "journal.jsonl").read_bytes()

        assert main(["-C", str(repo_dir), "run", "--all", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "-- one:" in out and "(cached)" in out
        assert "-- two:" in out
        # The completed experiment was not re-executed: bytes untouched.
        assert (one / "results.csv").read_bytes() == results_before
        assert (one / "journal.jsonl").read_bytes() == journal_before
        assert (repo_dir / "experiments" / "two" / "results.csv").is_file()

    def test_resumed_sweep_matches_uninterrupted_sweep(self, tmp_path, capsys):
        resumed = tmp_path / "resumed"
        straight = tmp_path / "straight"
        for root in (resumed, straight):
            root.mkdir()
            assert main(["-C", str(root), "init"]) == 0
            add_torpor(root, "one")
            add_torpor(root, "two")

        assert main(["-C", str(resumed), "run", "one"]) == 0
        assert main(["-C", str(resumed), "run", "--all", "--resume"]) == 0
        assert main(["-C", str(straight), "run", "--all"]) == 0

        for name in ("one", "two"):
            assert (resumed / "experiments" / name / "results.csv").read_bytes() == (
                straight / "experiments" / name / "results.csv"
            ).read_bytes()

    def test_edited_vars_invalidate_the_checkpoint(self, repo_dir, capsys):
        exp = add_torpor(repo_dir, "one")
        assert main(["-C", str(repo_dir), "run", "--all"]) == 0
        (exp / "vars.yml").write_text(
            "runner: torpor-variability\nruns: 3\nseed: 7\n"
        )
        capsys.readouterr()
        assert main(["-C", str(repo_dir), "run", "--all", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "-- one:" in out and "(cached)" not in out

    def test_warm_rerun_served_from_cache_unless_disabled(self, repo_dir, capsys):
        # Run-state checkpoints are discarded without --resume, but the
        # artifact store memoizes across runs: a warm second sweep is
        # served from cache.  --no-cache forces a true re-execution.
        add_torpor(repo_dir, "one")
        assert main(["-C", str(repo_dir), "run", "--all"]) == 0
        capsys.readouterr()
        assert main(["-C", str(repo_dir), "run", "--all"]) == 0
        assert "(cached)" in capsys.readouterr().out
        assert main(["-C", str(repo_dir), "run", "--all", "--no-cache"]) == 0
        assert "(cached)" not in capsys.readouterr().out


class TestGracefulDegradation:
    def test_optional_validate_stage_degrades(self, repo_dir, capsys):
        exp = add_torpor(
            repo_dir,
            "myexp",
            TORPOR_VARS + "optional_stages:\n  - validate\n",
        )
        # A syntactically broken assertion file makes the stage *fail*
        # (not merely report a failed validation).
        (exp / "validations.aver").write_text("expect >>> nonsense @@@\n")
        assert main(["-C", str(repo_dir), "run", "myexp"]) == 0
        out = capsys.readouterr().out
        assert "degraded: optional stage validate failed" in out
        assert (exp / "results.csv").is_file()

    def test_broken_required_stage_still_errors(self, repo_dir, capsys):
        exp = add_torpor(repo_dir, "myexp")
        (exp / "validations.aver").write_text("expect >>> nonsense @@@\n")
        assert main(["-C", str(repo_dir), "run", "myexp"]) == 2
        assert "myexp: ERRORED" in capsys.readouterr().out


class TestStageDeadline:
    def test_slow_stage_hits_task_timeout(self, repo_dir, capsys):
        add_torpor(repo_dir, "myexp")
        exit_code = main(
            [
                "-C",
                str(repo_dir),
                "run",
                "myexp",
                "--inject-faults",
                "delay:run:1",
                "--task-timeout",
                "0.2",
            ]
        )
        assert exit_code == 2
        assert "myexp: ERRORED" in capsys.readouterr().out

    def test_timeout_is_recoverable_with_retries(self, repo_dir):
        # The delay fault fires once per attempt and the deadline error
        # is transient, so a generous retry budget with a shorter delay
        # than the deadline on later attempts cannot be arranged here --
        # instead verify a deadline larger than the delay passes.
        add_torpor(repo_dir, "myexp")
        assert (
            main(
                [
                    "-C",
                    str(repo_dir),
                    "run",
                    "myexp",
                    "--inject-faults",
                    "delay:setup:0.05",
                    "--task-timeout",
                    "30",
                ]
            )
            == 0
        )


class TestCiResume:
    def test_second_trigger_restores_passed_jobs(self, repo_dir, capsys):
        assert main(["-C", str(repo_dir), "ci"]) == 0
        capsys.readouterr()
        assert main(["-C", str(repo_dir), "ci", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "build: passing" in out
        assert "(cached)" in out

    def test_fresh_trigger_reruns_jobs(self, repo_dir, capsys):
        assert main(["-C", str(repo_dir), "ci"]) == 0
        capsys.readouterr()
        assert main(["-C", str(repo_dir), "ci"]) == 0
        assert "(cached)" not in capsys.readouterr().out
