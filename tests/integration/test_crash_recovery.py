"""The acceptance loop of the crash-consistency layer: for every
registered crash point, kill → ``popper doctor`` → ``popper run
--resume`` yields byte-identical results and a clean ``cache verify``.

Also covers the CLI surface (``--inject-crash``, ``--crash-smoke``,
``doctor`` exit codes) and signal-driven cancellation of a live sweep.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.common.crash import (
    EXIT_CRASH,
    CrashPlan,
    SimulatedCrash,
    install_crash_plan,
)
from repro.core.cli import main
from repro.core.repo import PopperRepository
from repro.engine import EXIT_SIGTERM

SRC = Path(__file__).resolve().parents[2] / "src"
TORPOR_VARS = "runner: torpor-variability\nruns: 2\nseed: 11\n"

#: Every crash point a plain sweep exercises.  ``refs.update`` fires on
#: commits, not runs — covered separately below.
RUN_CRASH_POINTS = [
    "cas.ingest.tmp",
    "cas.ingest.publish",
    "index.record",
    "runstate.append.torn",
    "journal.append.torn",
    # Group-commit windows: the crash fires before the window's bytes
    # land, losing the buffered event(s) whole — never a torn prefix.
    "runstate.append.window",
    "journal.append.window",
    "fsutil.atomic_write.tmp",
    "fsutil.atomic_write.rename",
]


def make_repo(path, names=("one",)):
    path.mkdir()
    assert main(["-C", str(path), "init"]) == 0
    for name in names:
        assert main(["-C", str(path), "add", "torpor", name]) == 0
        (path / "experiments" / name / "vars.yml").write_text(TORPOR_VARS)
    return path


@pytest.fixture
def repo_dir(tmp_path):
    return make_repo(tmp_path / "crashy-repo")


@pytest.fixture(scope="module")
def control_results(tmp_path_factory):
    """results.csv bytes from an undisturbed run (torpor is seeded, so
    every correct recovery must reproduce these exactly)."""
    path = make_repo(tmp_path_factory.mktemp("control") / "control-repo")
    assert main(["-C", str(path), "run", "--all"]) == 0
    return (path / "experiments" / "one" / "results.csv").read_bytes()


class TestCrashDoctorResume:
    @pytest.mark.parametrize("point", RUN_CRASH_POINTS)
    def test_kill_repair_resume_is_byte_identical(
        self, repo_dir, control_results, point, capsys
    ):
        args = ["-C", str(repo_dir)]
        assert (
            main([*args, "run", "--all", "--inject-crash", f"at:{point}:1"])
            == EXIT_CRASH
        )
        out = capsys.readouterr().out
        assert f"simulated crash at {point} (hit 1)" in out
        assert "popper doctor" in out  # the recovery hint

        assert main([*args, "doctor", "--tmp-age", "0"]) == 0
        assert main([*args, "run", "--all", "--resume"]) == 0
        results = repo_dir / "experiments" / "one" / "results.csv"
        assert results.read_bytes() == control_results
        capsys.readouterr()
        assert main([*args, "cache", "verify"]) == 0
        assert main([*args, "doctor", "--dry-run", "--tmp-age", "0"]) == 0

    def test_every_point_in_one_unlucky_run(
        self, repo_dir, control_results, capsys
    ):
        """Crash, repair and re-crash at the next point, once per
        registered point — recovery composes."""
        args = ["-C", str(repo_dir)]
        for hit, point in enumerate(RUN_CRASH_POINTS, start=1):
            code = main(
                [*args, "run", "--all", "--resume", "--inject-crash", f"at:{point}:1"]
            )
            assert code in (EXIT_CRASH, 0), (point, code)
            assert main([*args, "doctor", "--tmp-age", "0"]) == 0
        assert main([*args, "run", "--all", "--resume"]) == 0
        results = repo_dir / "experiments" / "one" / "results.csv"
        assert results.read_bytes() == control_results
        capsys.readouterr()
        assert main([*args, "cache", "verify"]) == 0


class TestPackCrashRecovery:
    """The two mid-packfile hazards: crash during the pack temp write
    and between pack publish and index write.  Both must be repairable
    by popper doctor with a byte-identical warm run afterwards."""

    @pytest.mark.parametrize("point", ["pack.write.tmp", "pack.publish"])
    def test_repack_crash_doctor_rerun_is_byte_identical(
        self, repo_dir, control_results, point, capsys
    ):
        args = ["-C", str(repo_dir)]
        assert main([*args, "run", "--all"]) == 0
        results = repo_dir / "experiments" / "one" / "results.csv"
        assert results.read_bytes() == control_results

        store = PopperRepository.open(repo_dir).artifact_store
        install_crash_plan(CrashPlan.parse(f"at:{point}:1"))
        try:
            with pytest.raises(SimulatedCrash):
                store.repack()
        finally:
            install_crash_plan(None)

        assert main([*args, "doctor", "--tmp-age", "0"]) == 0
        assert main([*args, "doctor", "--dry-run", "--tmp-age", "0"]) == 0
        capsys.readouterr()
        assert main([*args, "cache", "verify"]) == 0

        # The warm re-run serves from the (possibly packed) store and
        # reproduces the control bytes exactly.
        results.unlink()
        assert main([*args, "run", "--all"]) == 0
        assert results.read_bytes() == control_results


class TestRepackedWarmRun:
    def test_warm_run_from_a_fully_packed_store_is_byte_identical(
        self, repo_dir, capsys
    ):
        args = ["-C", str(repo_dir)]
        assert main([*args, "run", "--all"]) == 0
        results = repo_dir / "experiments" / "one" / "results.csv"
        control = results.read_bytes()

        assert main([*args, "cache", "repack"]) == 0
        store = PopperRepository.open(repo_dir).artifact_store
        stats = store.stats()
        assert stats["loose_objects"] == 0
        assert stats["packed_objects"] > 0

        results.unlink()
        capsys.readouterr()
        assert main([*args, "run", "--all"]) == 0
        out = capsys.readouterr().out
        assert "(cached)" in out  # served from the packed store
        assert results.read_bytes() == control
        assert main([*args, "cache", "verify"]) == 0
        assert main([*args, "doctor", "--dry-run", "--tmp-age", "0"]) == 0


class TestRefsCrash:
    def test_torn_ref_update_never_happens(self, repo_dir):
        """refs.update crashes *before* the atomic replace, so the old
        ref survives intact and the commit is simply absent."""
        repo = PopperRepository.open(repo_dir)
        branch, before = repo.vcs.refs.head()
        (repo_dir / "experiments" / "one" / "vars.yml").write_text(
            TORPOR_VARS + "# touched\n"
        )
        install_crash_plan(CrashPlan.parse("at:refs.update:1"))
        try:
            repo.vcs.add_all()
            with pytest.raises(SimulatedCrash):
                repo.vcs.commit("doomed commit")
        finally:
            install_crash_plan(None)
        reopened = PopperRepository.open(repo_dir)
        assert reopened.vcs.refs.head() == (branch, before)
        # Nothing to repair: the ref write is atomic end to end.
        assert main(["-C", str(repo_dir), "doctor", "--dry-run"]) == 0
        reopened.vcs.add_all()
        reopened.vcs.commit("retry lands")
        assert reopened.vcs.refs.head()[1] != before


class TestCrashSmokeCli:
    def test_crash_smoke_full_cycle(self, repo_dir, capsys):
        assert main(["-C", str(repo_dir), "run", "--all", "--crash-smoke"]) == 0
        out = capsys.readouterr().out
        assert "simulated crash at runstate.append.torn" in out
        assert "-- doctor:" in out
        assert "crash smoke: crashed, repaired, resumed clean" in out

    def test_crash_smoke_fails_when_plan_never_fires(self, repo_dir, capsys):
        code = main(
            [
                "-C",
                str(repo_dir),
                "run",
                "--all",
                "--crash-smoke",
                "--inject-crash",
                "at:no.such.point:1",
            ]
        )
        assert code == 1
        assert "plan never fired" in capsys.readouterr().out

    def test_crash_smoke_rejects_conflicting_modes(self, repo_dir, capsys):
        code = main(
            ["-C", str(repo_dir), "run", "--all", "--crash-smoke", "--cache-check"]
        )
        assert code == 2
        assert "cannot be combined" in capsys.readouterr().err

    def test_crash_hard_requires_a_spec(self, repo_dir, capsys):
        code = main(["-C", str(repo_dir), "run", "--all", "--crash-hard"])
        assert code == 2
        assert "--inject-crash" in capsys.readouterr().err

    def test_bad_crash_spec_rejected_before_any_work(self, repo_dir, capsys):
        code = main(
            ["-C", str(repo_dir), "run", "--all", "--inject-crash", "sometimes:x:1"]
        )
        assert code == 2
        assert not (repo_dir / "experiments" / "one" / "results.csv").exists()


class TestDoctorCli:
    def test_dry_run_reports_without_touching(self, repo_dir, capsys):
        journal = repo_dir / "experiments" / "one" / "journal.jsonl"
        journal.write_text('{"event": "ok"}\n{"event": "to')
        assert main(["-C", str(repo_dir), "doctor", "--dry-run"]) == 1
        out = capsys.readouterr().out
        assert "torn-jsonl" in out
        assert journal.read_text() == '{"event": "ok"}\n{"event": "to'

    def test_repair_then_clean(self, repo_dir, capsys):
        journal = repo_dir / "experiments" / "one" / "journal.jsonl"
        journal.write_text('{"event": "ok"}\n{"event": "to')
        assert main(["-C", str(repo_dir), "doctor"]) == 0
        assert "repaired" in capsys.readouterr().out
        assert journal.read_text() == '{"event": "ok"}\n'
        assert main(["-C", str(repo_dir), "doctor", "--dry-run"]) == 0


#: The child slows down the *second* experiment only: the signal lands
#: while "two" is mid-payload, after "one" completed and checkpointed.
SLOW_RUN = (
    "import sys, time\n"
    "from pathlib import Path\n"
    "import repro.core.runners as runners\n"
    "real = runners.EXPERIMENT_RUNNERS['torpor-variability']\n"
    "calls = []\n"
    "def slow(variables):\n"
    "    calls.append(1)\n"
    "    if len(calls) == 2:\n"
    "        Path(sys.argv[2]).touch()\n"
    "        time.sleep(3.0)\n"
    "    return real(variables)\n"
    "runners.EXPERIMENT_RUNNERS['torpor-variability'] = slow\n"
    "from repro.core.cli import main\n"
    "sys.exit(main(['-C', sys.argv[1], 'run', '--all']))\n"
)


class TestSignalledSweep:
    def test_sigterm_drains_checkpoints_and_resumes(self, tmp_path, capsys):
        """SIGTERM mid-sweep: the in-flight experiment drains and
        checkpoints, the exit code is 143, and --resume serves the
        completed work from cache instead of re-executing it."""
        repo_dir = make_repo(tmp_path / "signalled-repo", names=("one", "two"))
        marker = tmp_path / "started"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", SLOW_RUN, str(repo_dir), str(marker)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        deadline = time.monotonic() + 60
        while not marker.exists():
            assert time.monotonic() < deadline, "runner never started"
            assert proc.poll() is None, "sweep died before being signalled"
            time.sleep(0.02)
        time.sleep(0.2)  # land the signal mid-payload, not mid-startup
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == EXIT_SIGTERM, out
        assert "completed tasks are checkpointed" in out
        assert "resume with: popper run --all --resume" in out

        # The first experiment finished before the signal and is
        # checkpointed as such in the sweep state.
        states = {}
        for line in (repo_dir / ".pvcs" / "sweep-state.jsonl").read_text().splitlines():
            record = json.loads(line)
            states[record["task"]] = record["state"]
        assert states.get("one") == "ok"
        assert states.get("two") != "ok"

        # The resume serves it from the checkpoint instead of
        # re-executing and finishes the interrupted one.
        assert main(["-C", str(repo_dir), "run", "--all", "--resume"]) == 0
        resumed = capsys.readouterr().out
        for name in ("one", "two"):
            assert (repo_dir / "experiments" / name / "results.csv").is_file()
        assert "-- one:" in resumed and "(cached)" in resumed.split("-- two:")[0]
        capsys.readouterr()
        assert main(["-C", str(repo_dir), "cache", "verify"]) == 0
