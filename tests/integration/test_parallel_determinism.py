"""Parallelism must not change results: -j 1 and -j 4 are bit-identical.

The engine's contract (and the paper's re-executability requirement) is
that scheduling is an observability/wall-clock concern only — the four
paper experiments are deterministic functions of their seeds, so a
serial sweep and a 4-way-threaded sweep of the same repository must
produce byte-identical ``results.csv`` files and identical validation
verdicts.  Journals may interleave differently but must stay well-formed
per experiment.
"""

import pytest

from repro.common import minyaml
from repro.common.fsutil import write_text
from repro.core.cli import main
from repro.core.repo import PopperRepository
from repro.monitor.journal import read_journal

#: The four paper experiments, shrunk to CI size but fully seeded.
EXPERIMENTS: dict[str, tuple[str, dict]] = {
    "exp-gassyfs": (
        "gassyfs",
        {
            "node_counts": [1, 2, 4],
            "sites": ["cloudlab-wisc"],
            "workloads": ["git-compile"],
            "workload_scale": 0.1,
            "seed": 7,
        },
    ),
    "exp-torpor": ("torpor", {"runs": 2, "seed": 7}),
    "exp-mpi": ("mpi-comm-variability", {"iterations": 10, "runs": 5, "seed": 7}),
    "exp-bww": ("jupyter-bww", {"seed": 7}),
}


def build_repo(root):
    repo = PopperRepository.init(root)
    for experiment, (template, overrides) in EXPERIMENTS.items():
        repo.add_experiment(template, experiment, commit=False)
        vars_path = repo.experiment_dir(experiment) / "vars.yml"
        doc = minyaml.load_file(vars_path)
        doc.update(overrides)
        write_text(vars_path, minyaml.dumps(doc))
    repo.vcs.add_all()
    repo.vcs.commit("instantiate the four paper experiments")
    return repo


@pytest.fixture(scope="module")
def sweeps(tmp_path_factory):
    """Run the identical repository serially and with -j 4."""
    serial = build_repo(tmp_path_factory.mktemp("det") / "serial")
    threaded = build_repo(tmp_path_factory.mktemp("det") / "threaded")
    assert main(["-C", str(serial.root), "run", "--all", "-j", "1"]) == 0
    assert main(["-C", str(threaded.root), "run", "--all", "-j", "4"]) == 0
    return serial, threaded


@pytest.mark.parametrize("experiment", sorted(EXPERIMENTS))
def test_results_csv_byte_identical(sweeps, experiment):
    serial, threaded = sweeps
    serial_csv = (serial.experiment_dir(experiment) / "results.csv").read_bytes()
    threaded_csv = (
        threaded.experiment_dir(experiment) / "results.csv"
    ).read_bytes()
    assert serial_csv == threaded_csv


@pytest.mark.parametrize("experiment", sorted(EXPERIMENTS))
def test_validation_verdicts_identical(sweeps, experiment):
    serial, threaded = sweeps
    serial_report = (
        serial.experiment_dir(experiment) / "validation_report.txt"
    ).read_text()
    threaded_report = (
        threaded.experiment_dir(experiment) / "validation_report.txt"
    ).read_text()
    assert serial_report == threaded_report
    assert "ALL VALIDATIONS PASSED" in threaded_report


@pytest.mark.parametrize("experiment", sorted(EXPERIMENTS))
def test_parallel_journals_well_formed(sweeps, experiment):
    """Each experiment's journal is complete and self-consistent."""
    _, threaded = sweeps
    events = read_journal(threaded.experiment_dir(experiment) / "journal.jsonl")
    assert events[0]["event"] == "run_start"
    assert events[0]["experiment"] == experiment
    assert events[-1]["event"] == "run_end"
    assert events[-1]["status"] == "ok"
    seqs = [e["seq"] for e in events]
    assert seqs == list(range(1, len(events) + 1))
    # The stage spans all closed, under the experiment's own root span.
    span_ends = {e["name"] for e in events if e["event"] == "span_end"}
    assert {"task/setup", "task/run", "task/validate"} <= span_ends
    assert f"pipeline/run/{experiment}" in span_ends


def test_trace_renders_critical_path_after_parallel_run(sweeps, capsys):
    _, threaded = sweeps
    assert main(["-C", str(threaded.root), "trace", "exp-torpor"]) == 0
    out = capsys.readouterr().out
    assert "critical path:" in out
    assert "pipeline/run/exp-torpor" in out


@pytest.fixture(scope="module")
def retry_sweeps(tmp_path_factory):
    """The same sweep under injected faults + retries, -j 1 vs -j 4.

    Every ``run`` stage fails its first attempt with a transient fault
    and succeeds on retry; the resilience machinery (deterministic
    backoff jitter, per-experiment fault plans) must keep the sweep
    bit-reproducible across backends.
    """
    chaos = ["--retries", "2", "--inject-faults", "flaky:run:1"]
    serial = build_repo(tmp_path_factory.mktemp("retry-det") / "serial")
    threaded = build_repo(tmp_path_factory.mktemp("retry-det") / "threaded")
    assert main(["-C", str(serial.root), "run", "--all", "-j", "1"] + chaos) == 0
    assert main(["-C", str(threaded.root), "run", "--all", "-j", "4"] + chaos) == 0
    return serial, threaded


@pytest.mark.parametrize("experiment", sorted(EXPERIMENTS))
def test_retried_results_csv_byte_identical(retry_sweeps, experiment):
    serial, threaded = retry_sweeps
    serial_csv = (serial.experiment_dir(experiment) / "results.csv").read_bytes()
    threaded_csv = (
        threaded.experiment_dir(experiment) / "results.csv"
    ).read_bytes()
    assert serial_csv == threaded_csv


@pytest.mark.parametrize("experiment", sorted(EXPERIMENTS))
def test_retried_runs_journal_their_attempts(retry_sweeps, experiment):
    """Both attempts of the flaky run stage land in the journal."""
    _, threaded = retry_sweeps
    events = read_journal(threaded.experiment_dir(experiment) / "journal.jsonl")
    run_attempts = [
        e for e in events if e["event"] == "attempt" and e["task"] == "run"
    ]
    assert [e["attempt"] for e in run_attempts] == [1, 2]
    span_ends = {e["name"] for e in events if e["event"] == "span_end"}
    assert {"task/run/attempt-1", "task/run/attempt-2"} <= span_ends
    assert events[-1]["status"] == "ok"
