"""The fuzzer's acceptance contract, end to end.

``popper fuzz --seed N --iterations K`` must be *fully deterministic*:
two campaigns from identical seeds produce the same corpus, the same
coverage map and byte-identical minimized reproducers.  Also covered:
the CLI verb itself, ``--seed`` unification across ``run``/``ci``/
``fuzz``, ``popper trace --fuzz``, and the default CI matrix carrying
the ``--fuzz-smoke`` job.
"""

import filecmp
from pathlib import Path

from repro.ci.config import CIConfig
from repro.common import minyaml
from repro.core.cli import main
from repro.core.repo import DEFAULT_TRAVIS, PopperRepository
from repro.fuzz import FuzzCampaign
from repro.monitor.journal import load_journal

SEED = 99
ITERATIONS = 6


def make_repo(base: Path) -> PopperRepository:
    repo = PopperRepository.init(base)
    repo.add_experiment("torpor", "exp")
    vars_path = repo.experiment_dir("exp") / "vars.yml"
    doc = minyaml.load_file(vars_path)
    doc["runs"] = 2
    minyaml.dump_file(doc, vars_path)
    return repo


def fuzz_state_files(repo: PopperRepository) -> dict[str, Path]:
    """Deterministic artifacts under .pvcs/fuzz/ (relative -> absolute).

    ``work/`` (sandboxes), ``cache/`` (artifact store with mtimes) and
    ``journal.jsonl`` (wall-clock timestamps) are ephemeral by design
    and excluded from the byte-identity contract.
    """
    state = repo.vcs.meta / "fuzz"
    out: dict[str, Path] = {}
    for path in sorted(state.rglob("*")):
        if not path.is_file():
            continue
        rel = path.relative_to(state)
        if rel.parts[0] in ("work", "cache") or rel.name == "journal.jsonl":
            continue
        out[str(rel)] = path
    return out


class TestByteDeterminism:
    def test_same_seed_same_bytes(self, tmp_path):
        reports = []
        for side in ("a", "b"):
            repo = make_repo(tmp_path / side)
            reports.append(
                FuzzCampaign(repo, seed=SEED, iterations=ITERATIONS).run()
            )
        first, second = (
            fuzz_state_files(PopperRepository.open(tmp_path / side))
            for side in ("a", "b")
        )
        assert set(first) == set(second)
        assert len(first) > 0
        for rel in first:
            assert filecmp.cmp(first[rel], second[rel], shallow=False), (
                f"fuzz artifact differs across identical campaigns: {rel}"
            )
        assert reports[0].executed == reports[1].executed
        assert reports[0].outcomes == reports[1].outcomes
        assert reports[0].minimized == reports[1].minimized


class TestCLI:
    def test_fuzz_verb_and_trace(self, tmp_path, capsys):
        make_repo(tmp_path / "repo")
        rc = main(
            ["-C", str(tmp_path / "repo"), "fuzz", "--seed", "5", "-n", "3",
             "--no-minimize"]
        )
        out = capsys.readouterr().out
        assert rc in (0, 1)  # 1 = failures found, still a valid campaign
        assert "-- fuzz: seed=5" in out
        assert (tmp_path / "repo" / ".pvcs" / "fuzz" / "journal.jsonl").is_file()

        assert main(["-C", str(tmp_path / "repo"), "trace", "--fuzz"]) == 0
        trace = capsys.readouterr().out
        assert "fuzz campaign" in trace
        assert "seed: 5" in trace

    def test_run_seed_lands_in_journal_header(self, tmp_path):
        repo = make_repo(tmp_path / "repo")
        rc = main(["-C", str(tmp_path / "repo"), "run", "exp", "--seed", "123"])
        assert rc == 0
        events, _ = load_journal(
            repo.experiment_dir("exp") / "journal.jsonl"
        )
        run_start = next(e for e in events if e["event"] == "run_start")
        assert run_start["seed"] == 123

    def test_env_seed_is_fallback(self, tmp_path, monkeypatch, capsys):
        repo = make_repo(tmp_path / "repo")
        monkeypatch.setenv("POPPER_SEED", "321")
        rc = main(["-C", str(tmp_path / "repo"), "run", "exp", "--no-cache"])
        assert rc == 0
        events, _ = load_journal(
            repo.experiment_dir("exp") / "journal.jsonl"
        )
        run_start = next(e for e in events if e["event"] == "run_start")
        assert run_start["seed"] == 321

    def test_garbage_env_seed_rejected_cleanly(self, tmp_path, monkeypatch, capsys):
        make_repo(tmp_path / "repo")
        monkeypatch.setenv("POPPER_SEED", "not-a-number")
        rc = main(["-C", str(tmp_path / "repo"), "run", "exp"])
        assert rc == 2
        assert "POPPER_SEED" in capsys.readouterr().err


def test_default_matrix_includes_fuzz_smoke():
    config = CIConfig.from_yaml(DEFAULT_TRAVIS)
    modes = [env.get("POPPER_RUN_MODE") for env in config.expand_matrix()]
    assert "--fuzz-smoke" in modes
    assert len(modes) == 9
