"""End-to-end integration: the life of a Popperized article.

These tests walk the full story the paper tells: an author initializes a
repository, bootstraps experiments from templates, runs them, commits
versioned results, CI validates every commit, and a reader clones the
repository and re-executes the experiment getting the same numbers.
"""

import pytest

from repro.aver import check
from repro.common.fsutil import write_text
from repro.common.tables import MetricsTable
from repro.core.ci_integration import PopperExecutor, make_ci_server
from repro.core.pipeline import ExperimentPipeline
from repro.core.repo import PopperRepository
from repro.ci.runner import CIServer


FAST_TORPOR_VARS = "runner: torpor-variability\nruns: 2\nseed: 7\n"
FAST_GASSYFS_VARS = (
    "runner: gassyfs-scaling\n"
    "node_counts: [1, 2, 4]\n"
    "sites: [cloudlab-wisc]\n"
    "workloads: [git-compile]\n"
    "workload_scale: 0.1\n"
    "seed: 7\n"
)


@pytest.fixture
def author_repo(tmp_path):
    repo = PopperRepository.init(tmp_path / "mypaper-repo")
    repo.add_experiment("gassyfs", "gassyfs-exp")
    write_text(repo.experiment_dir("gassyfs-exp") / "vars.yml", FAST_GASSYFS_VARS)
    repo.vcs.add_all()
    repo.vcs.commit("shrink experiment for CI budget")
    return repo


class TestAuthorWorkflow:
    def test_run_commit_and_revalidate(self, author_repo):
        result = ExperimentPipeline(author_repo, "gassyfs-exp").run()
        assert result.validated
        author_repo.vcs.add_all()
        author_repo.vcs.commit("add experiment results")
        # the stored results still satisfy the checked-in assertions
        revalidated = ExperimentPipeline(author_repo, "gassyfs-exp").validate_existing()
        assert revalidated.validated

    def test_paper_build_reflects_results(self, author_repo):
        author_repo.add_paper("generic-article")
        ExperimentPipeline(author_repo, "gassyfs-exp").run()
        output = author_repo.build_paper()
        assert "results available" in output.read_text()

    def test_history_records_the_whole_exploration(self, author_repo):
        ExperimentPipeline(author_repo, "gassyfs-exp").run()
        author_repo.vcs.add_all()
        author_repo.vcs.commit("results of first run")
        subjects = [e.subject for e in author_repo.vcs.log()]
        assert "popper init" in subjects
        assert "popper add gassyfs gassyfs-exp" in subjects
        assert "results of first run" in subjects


class TestCIIntegration:
    def test_ci_validates_popperized_repo(self, author_repo):
        ExperimentPipeline(author_repo, "gassyfs-exp").run()
        author_repo.vcs.add_all()
        author_repo.vcs.commit("results")
        server = make_ci_server(author_repo)
        record = server.trigger()
        assert record.ok, [
            (s.command, s.exit_code, s.stderr) for j in record.jobs for s in j.steps
        ]
        assert server.badge() == "build: passing"

    def test_ci_fails_when_assertions_break(self, author_repo):
        ExperimentPipeline(author_repo, "gassyfs-exp").run()
        # an author "improves" the claim beyond what the data supports
        write_text(
            author_repo.experiment_dir("gassyfs-exp") / "validations.aver",
            "when workload=* and machine=*\nexpect superlinear(nodes, time)\n",
        )
        author_repo.vcs.add_all()
        author_repo.vcs.commit("overclaim")
        record = make_ci_server(author_repo).trigger()
        assert not record.ok

    def test_ci_fails_on_noncompliant_repo(self, author_repo):
        ExperimentPipeline(author_repo, "gassyfs-exp").run()
        (author_repo.experiment_dir("gassyfs-exp") / "validations.aver").unlink()
        author_repo.vcs.add_all()
        author_repo.vcs.commit("drop validation criteria")
        record = make_ci_server(author_repo).trigger()
        assert not record.ok
        failed_steps = [
            s for j in record.jobs for s in j.steps if not s.ok
        ]
        assert any("popper check" in s.command for s in failed_steps)

    def test_aver_cli_available_in_ci(self, author_repo):
        ExperimentPipeline(author_repo, "gassyfs-exp").run()
        write_text(
            author_repo.root / ".travis.yml",
            "script:\n"
            "  - aver -i experiments/gassyfs-exp/results.csv "
            "'when machine=* expect sublinear(nodes, time)'\n",
        )
        author_repo.vcs.add_all()
        author_repo.vcs.commit("aver-only ci")
        record = CIServer(author_repo.vcs, executor=PopperExecutor()).trigger()
        assert record.ok


class TestReaderWorkflow:
    def test_clone_and_reexecute_reproduces_results(self, author_repo, tmp_path):
        """The reader story: clone the paper repo, re-run the experiment,
        get bit-identical results (same seed, same simulated platform)."""
        original = ExperimentPipeline(author_repo, "gassyfs-exp").run()
        author_repo.vcs.add_all()
        author_repo.vcs.commit("results")

        author_repo.vcs.clone(tmp_path / "reader-clone")
        reader_repo = PopperRepository.open(tmp_path / "reader-clone")
        assert reader_repo.experiments() == ["gassyfs-exp"]

        rerun = ExperimentPipeline(reader_repo, "gassyfs-exp").run()
        assert rerun.validated
        assert rerun.results.column("time") == original.results.column("time")

    def test_reader_can_contradict_assertions(self, author_repo, tmp_path):
        """A reader probes the stored results with their own assertion."""
        ExperimentPipeline(author_repo, "gassyfs-exp").run()
        author_repo.vcs.add_all()
        author_repo.vcs.commit("results")
        author_repo.vcs.clone(tmp_path / "clone")
        reader = PopperRepository.open(tmp_path / "clone")
        table = MetricsTable.load_csv(
            reader.experiment_dir("gassyfs-exp") / "results.csv"
        )
        skeptical = check("expect superlinear(nodes, time)", table)
        assert not skeptical.passed  # the contradiction fails, claim stands

    def test_reader_changes_parameters_and_extends(self, author_repo):
        """Changing vars.yml and re-running is the 'build on existing
        work' path the convention optimizes for."""
        write_text(
            author_repo.experiment_dir("gassyfs-exp") / "vars.yml",
            FAST_GASSYFS_VARS.replace("[1, 2, 4]", "[1, 2, 4, 8]"),
        )
        result = ExperimentPipeline(author_repo, "gassyfs-exp").run()
        assert sorted(set(result.results.column("nodes"))) == [1, 2, 4, 8]
        assert result.validated


class TestCIMatrixOverExperiments:
    def test_matrix_runs_one_experiment_per_job(self, author_repo):
        """A build matrix parameterized by EXPERIMENT runs each experiment
        in its own CI job — the per-experiment validation layout big
        Popper repositories use."""
        author_repo.add_experiment("torpor", "torpor-exp")
        write_text(
            author_repo.experiment_dir("torpor-exp") / "vars.yml",
            "runner: torpor-variability\nruns: 2\nseed: 7\n",
        )
        write_text(
            author_repo.root / ".travis.yml",
            "env:\n"
            "  - EXPERIMENT=gassyfs-exp\n"
            "  - EXPERIMENT=torpor-exp\n"
            "script:\n"
            "  - popper run $EXPERIMENT\n",
        )
        author_repo.vcs.add_all()
        author_repo.vcs.commit("matrix ci over experiments")
        record = make_ci_server(author_repo).trigger()
        assert record.ok, [
            (s.command, s.stderr) for j in record.jobs for s in j.steps if not s.ok
        ]
        assert len(record.jobs) == 2
        assert {j.env["EXPERIMENT"] for j in record.jobs} == {
            "gassyfs-exp",
            "torpor-exp",
        }
