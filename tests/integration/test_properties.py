"""Property-based tests for cross-cutting invariants.

Hypothesis-driven checks of the algebraic properties the substrates
promise: serialization idempotence, partition laws, cost-model
monotonicity, communicator synchronization invariants and layered-fs
semantics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aver import check
from repro.common import minyaml
from repro.common.tables import MetricsTable
from repro.container.image import Layer, scratch
from repro.gassyfs.gasnet import GasnetCluster
from repro.mpicomm.mpi import SimComm
from repro.platform.sites import Site

_keys = st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8)
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**6), max_value=10**6),
    st.text(alphabet="abc xyz-_", max_size=12),
)
_docs = st.recursive(
    _scalars,
    lambda kids: st.one_of(
        st.lists(kids, max_size=3),
        st.dictionaries(_keys, kids, max_size=3),
    ),
    max_leaves=12,
)


class TestMinyamlProperties:
    @given(doc=st.dictionaries(_keys, _docs, max_size=4))
    def test_dumps_idempotent(self, doc):
        once = minyaml.dumps(doc)
        assert minyaml.dumps(minyaml.loads(once)) == once


class TestTableProperties:
    @given(
        rows=st.lists(
            st.tuples(st.sampled_from("abc"), st.integers(0, 100)),
            min_size=1,
            max_size=30,
        )
    )
    def test_group_by_partitions(self, rows):
        table = MetricsTable(["key", "value"])
        for key, value in rows:
            table.append({"key": key, "value": value})
        groups = table.group_by("key")
        assert sum(len(g) for g in groups.values()) == len(table)
        rebuilt = sorted(
            (row["key"], row["value"])
            for group in groups.values()
            for row in group
        )
        assert rebuilt == sorted(rows)

    @given(
        rows=st.lists(st.integers(0, 1000), min_size=1, max_size=40),
        by=st.sampled_from(["even", "mod3"]),
    )
    def test_aggregate_mean_matches_numpy(self, rows, by):
        table = MetricsTable(["bucket", "v"])
        for v in rows:
            bucket = v % 2 if by == "even" else v % 3
            table.append({"bucket": bucket, "v": v})
        agg = table.aggregate(["bucket"], "v")
        for row in agg:
            expected = np.mean(
                [v for v in rows if (v % 2 if by == "even" else v % 3) == row["bucket"]]
            )
            assert row["v"] == pytest.approx(expected)


class TestAverTrichotomy:
    @given(b=st.floats(min_value=-2.0, max_value=3.0))
    def test_exactly_one_scaling_class(self, b):
        """Outside the linear tolerance band, exactly one of
        sublinear/linear/superlinear holds; inside it, linear holds."""
        table = MetricsTable(["x", "y"])
        for x in (1.0, 2.0, 4.0, 8.0, 16.0):
            table.append({"x": x, "y": 5.0 * x**b})
        verdicts = [
            check(f"expect {fn}(x, y)", table).passed
            for fn in ("sublinear", "linear", "superlinear")
        ]
        assert sum(verdicts) == 1


class TestGasnetProperties:
    @settings(deadline=None)
    @given(
        nbytes=st.integers(min_value=0, max_value=1 << 28),
        src=st.integers(0, 3),
        dst=st.integers(0, 3),
    )
    def test_transfer_symmetry_and_monotonicity(self, nbytes, src, dst):
        site = Site("p", "cloudlab-c220g1", capacity=4)
        cluster = GasnetCluster(site.allocate(4))
        forward = cluster.transfer_time(src, dst, nbytes)
        backward = cluster.transfer_time(dst, src, nbytes)
        assert forward == pytest.approx(backward)
        assert cluster.transfer_time(src, dst, nbytes + 4096) >= forward


class TestSimCommProperties:
    @settings(deadline=None)
    @given(
        ops=st.lists(
            st.sampled_from(["barrier", "allreduce", "bcast", "compute"]),
            min_size=1,
            max_size=12,
        )
    )
    def test_collectives_synchronize_and_time_is_monotone(self, ops):
        site = Site("p", "hpc-haswell-ib", capacity=4)
        comm = SimComm(list(site.allocate(4)))
        rng = np.random.default_rng(1)
        last_wall = 0.0
        for op in ops:
            if op == "compute":
                comm.compute(rng.uniform(0.0, 0.01, size=4))
            elif op == "barrier":
                comm.barrier()
            elif op == "allreduce":
                comm.allreduce(64)
            else:
                comm.bcast(256)
            assert comm.wall_time >= last_wall
            last_wall = comm.wall_time
            if op != "compute":
                clocks = comm.clocks
                assert np.all(clocks == clocks[0])  # collective = sync point

    def test_mpi_time_conservation(self):
        """Aggregate MPI time never exceeds ranks x wall time."""
        site = Site("p", "hpc-haswell-ib", capacity=8)
        comm = SimComm(list(site.allocate(8)))
        rng = np.random.default_rng(2)
        for _ in range(20):
            comm.compute(rng.uniform(0, 0.01, size=8))
            comm.allreduce(128)
        total_mpi = float(comm.mpi_time_per_rank().sum())
        assert total_mpi <= comm.wall_time * comm.size + 1e-9


class TestImageLayerProperties:
    @given(
        layers=st.lists(
            st.dictionaries(
                st.sampled_from(["/a", "/b", "/c"]),
                st.binary(min_size=1, max_size=8),
                max_size=3,
            ),
            max_size=5,
        )
    )
    def test_flatten_equals_dict_update(self, layers):
        image = scratch()
        expected: dict = {}
        for files in layers:
            image = image.with_layer(Layer.from_dict(files))
            expected.update(files)
        assert image.flatten() == expected

    @given(
        files=st.dictionaries(
            st.sampled_from(["/a", "/b", "/c"]),
            st.binary(min_size=1, max_size=8),
            min_size=1,
            max_size=3,
        )
    )
    def test_digest_is_pure_function_of_content(self, files):
        a = scratch().with_layer(Layer.from_dict(files))
        b = scratch().with_layer(Layer.from_dict(dict(files)))
        assert a.digest == b.digest
