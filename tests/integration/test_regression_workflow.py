"""Integration: automated performance-regression testing over commits.

The paper argues experiments should be continuously re-executed and
their performance gated statistically.  Here a GassyFS configuration
change (shrinking the block size 16x, multiplying per-block message
overhead) plays the role of a bad commit; the regression gate must flag
it while waving identical-config commits through.
"""

import pytest

from repro.common.fsutil import write_text
from repro.common.rng import SeedSequenceFactory
from repro.ci.regression import PerformanceHistory, RegressionGate
from repro.core.pipeline import ExperimentPipeline
from repro.core.repo import PopperRepository
from repro.gassyfs.experiment import ScalabilityConfig, run_point
from repro.gassyfs.workloads import CompileWorkload
from repro.platform.sites import default_sites


def _samples(block_size: int, seeds: list[int], nodes: int = 4) -> list[float]:
    workload = CompileWorkload(
        name="probe", files=40, source_kib=256, object_kib=256,
        compile_ops=3e8, configure_ops=5e8, link_ops=1e9,
    )
    out = []
    for seed in seeds:
        sites = default_sites(seed)
        config = ScalabilityConfig(
            node_counts=(nodes,), sites=("cloudlab-wisc",),
            workloads=(workload,), block_size=block_size, seed=seed,
        )
        out.append(
            run_point(
                sites["cloudlab-wisc"], nodes, workload, config,
                SeedSequenceFactory(seed),
            )
        )
    return out


class TestRegressionOverCommits:
    def test_config_regression_flagged(self):
        history = PerformanceHistory(
            metric="gassyfs.git-compile.4nodes",
            gate=RegressionGate(threshold=0.05, alpha=0.05),
        )
        for i, seed in enumerate(((11, 12, 13, 14), (21, 22, 23, 24))):
            history.record(f"good-{i}", _samples(1 << 20, list(seed)))
        same = history.judge("same-config", _samples(1 << 20, [31, 32, 33, 34]))
        assert not same.regressed
        bad = history.judge("tiny-blocks", _samples(1 << 12, [41, 42, 43, 44]))
        assert bad.regressed
        assert bad.ratio > 1.05

    def test_healthy_commit_joins_baseline(self):
        history = PerformanceHistory(window=2)
        history.record("c0", _samples(1 << 20, [1, 2, 3]))
        before = history.baseline.size
        history.judge("c1", _samples(1 << 20, [4, 5, 6]))
        assert history.baseline.size > before


class TestPipelineDeterminismAcrossRuns:
    def test_same_commit_same_results(self, tmp_path):
        """Re-running the pipeline from the same committed tree yields
        identical results — the property that makes regression
        comparisons about the *code*, not the harness."""
        repo = PopperRepository.init(tmp_path / "r")
        repo.add_experiment("torpor", "t")
        write_text(
            repo.experiment_dir("t") / "vars.yml",
            "runner: torpor-variability\nruns: 2\nseed: 99\n",
        )
        first = ExperimentPipeline(repo, "t").run()
        second = ExperimentPipeline(repo, "t").run()
        assert first.results == second.results
