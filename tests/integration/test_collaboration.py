"""Integration: collaborating on a Popperized article via branches.

The paper argues the convention enables "easy collaboration, as well as
making it easier to build upon existing work".  Story: a reviewer
branches the paper repository, strengthens the validation criteria while
the author scales the experiment up; the merge combines both changes and
the post-merge pipeline + CI still pass.
"""

import pytest

from repro.common.fsutil import write_text
from repro.core.ci_integration import make_ci_server
from repro.core.pipeline import ExperimentPipeline
from repro.core.repo import PopperRepository
from repro.vcs.merge import MergeConflict

FAST_VARS = (
    "runner: gassyfs-scaling\n"
    "node_counts: [1, 2, 4]\n"
    "sites: [cloudlab-wisc]\n"
    "workload_scale: 0.1\n"
    "seed: 7\n"
)


@pytest.fixture
def repo(tmp_path):
    repo = PopperRepository.init(tmp_path / "paper-repo")
    repo.add_experiment("gassyfs", "exp")
    write_text(repo.experiment_dir("exp") / "vars.yml", FAST_VARS)
    repo.vcs.add_all()
    repo.vcs.commit("shrink experiment")
    return repo


class TestCollaborativeMerge:
    def test_reviewer_branch_merges_cleanly(self, repo):
        repo.vcs.branch("reviewer")

        # author scales the sweep on main
        write_text(
            repo.experiment_dir("exp") / "vars.yml",
            FAST_VARS.replace("[1, 2, 4]", "[1, 2, 4, 8]"),
        )
        repo.vcs.add_all()
        repo.vcs.commit("author: extend sweep to 8 nodes")

        # reviewer strengthens validations on their branch
        repo.vcs.checkout("reviewer")
        write_text(
            repo.experiment_dir("exp") / "validations.aver",
            "when workload=* and machine=*\n"
            "expect sublinear(nodes, time)\n"
            "when workload=* and machine=*\n"
            "expect monotonic_dec(nodes, time)\n"
            "expect count() >= 3\n",
        )
        repo.vcs.add_all()
        repo.vcs.commit("reviewer: demand monotonicity and coverage")

        repo.vcs.checkout("main")
        merge_oid = repo.vcs.merge("reviewer")
        assert len(repo.vcs.store.get_commit(merge_oid).parents) == 2

        vars_text = (repo.experiment_dir("exp") / "vars.yml").read_text()
        assert "8" in vars_text  # author's change survived
        checks = (repo.experiment_dir("exp") / "validations.aver").read_text()
        assert "monotonic_dec" in checks  # reviewer's change survived

        result = ExperimentPipeline(repo, "exp").run()
        assert result.validated
        assert sorted(set(result.results.column("nodes"))) == [1, 2, 4, 8]

        repo.vcs.add_all()
        repo.vcs.commit("merged results")
        assert make_ci_server(repo).trigger().ok

    def test_conflicting_claims_surface(self, repo):
        repo.vcs.branch("optimist")
        write_text(
            repo.experiment_dir("exp") / "validations.aver",
            "when workload=* and machine=*\nexpect sublinear(nodes, time)\n",
        )
        repo.vcs.add_all()
        repo.vcs.commit("author: sublinear claim")
        repo.vcs.checkout("optimist")
        write_text(
            repo.experiment_dir("exp") / "validations.aver",
            "when workload=* and machine=*\nexpect superlinear(nodes, time)\n",
        )
        repo.vcs.add_all()
        repo.vcs.commit("optimist: superlinear claim")
        repo.vcs.checkout("main")
        with pytest.raises(MergeConflict) as info:
            repo.vcs.merge("optimist")
        conflict = info.value.conflicts["experiments/exp/validations.aver"]
        assert "sublinear" in conflict and "superlinear" in conflict
