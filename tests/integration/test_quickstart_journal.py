"""Tier-1 observability gate: the quickstart example, end to end.

Runs ``examples/quickstart.py`` (the paper's Listing 2 session) exactly
as a reader would, then asserts the run left a non-empty journal whose
rendered report shows per-stage timings — the acceptance criterion that
every pipeline run produces inspectable provenance.  Marked
``quickstart`` so CI can select it explicitly (``-m quickstart``); it
also runs as part of the plain tier-1 suite.
"""

import importlib.util
import tempfile
from pathlib import Path

import pytest

from repro.monitor.journal import JOURNAL_FILE, read_journal
from repro.monitor.report import render_report

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _load_quickstart():
    spec = importlib.util.spec_from_file_location(
        "quickstart_example", EXAMPLES / "quickstart.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.quickstart
def test_quickstart_produces_nonempty_run_journal(tmp_path, monkeypatch, capsys):
    # Pin the example's "temporary directory" so the journal is findable.
    monkeypatch.setattr(
        tempfile, "mkdtemp", lambda *args, **kwargs: str(tmp_path)
    )
    _load_quickstart().main()
    out = capsys.readouterr().out

    # The session printed the trace report inline.
    assert "$ popper trace myexp" in out
    assert "== run journal: myexp" in out
    assert "critical path:" in out

    journal_path = tmp_path / "mypaper-repo" / "experiments" / "myexp" / JOURNAL_FILE
    events = read_journal(journal_path)
    assert len(events) > 0
    assert events[0]["event"] == "run_start"
    assert events[-1] == {
        **events[-1],
        "event": "run_end",
        "status": "ok",
    }
    # The journal renders to per-stage timings on its own too.
    report = render_report(events)
    assert "run" in report and "validate" in report
