"""Integration: every template in the registry runs end to end.

The paper's template registry is only useful if ``popper add X && popper
run X`` works for every X.  This test instantiates all ten templates in
one repository, shrinks their parametrizations to a CI-sized budget, and
drives each through the full pipeline — setup playbook, runner,
post-processing, notebook visualization and Aver validation.
"""

import pytest

from repro.common import minyaml
from repro.common.fsutil import write_text
from repro.core.pipeline import ExperimentPipeline
from repro.core.repo import PopperRepository
from repro.core.templates import TEMPLATES

#: Per-template overrides to keep the whole sweep under a few seconds.
SHRINK: dict[str, dict] = {
    "gassyfs": {"node_counts": [1, 2], "sites": ["cloudlab-wisc"], "workload_scale": 0.05},
    "torpor": {"runs": 2},
    "mpi-comm-variability": {"iterations": 10, "runs": 5},
    "jupyter-bww": {"lat_step": 10.0, "lon_step": 15.0},
    "ceph-rados": {"node_counts": [1, 2]},
    "cloverleaf": {"node_counts": [1, 2]},
    "spark-standalone": {"node_counts": [1, 2]},
    "zlog": {"node_counts": [1, 2]},
    "proteustm": {"node_counts": [1, 2]},
    "malacology": {"node_counts": [1, 2]},
}


@pytest.fixture(scope="module")
def repo(tmp_path_factory):
    root = tmp_path_factory.mktemp("all-templates") / "paper-repo"
    repo = PopperRepository.init(root)
    for template_name in TEMPLATES:
        experiment = f"exp-{template_name}"
        repo.add_experiment(template_name, experiment, commit=False)
        vars_path = repo.experiment_dir(experiment) / "vars.yml"
        doc = minyaml.load_file(vars_path)
        doc.update(SHRINK.get(template_name, {}))
        write_text(vars_path, minyaml.dumps(doc))
    repo.vcs.add_all()
    repo.vcs.commit("instantiate and shrink every template")
    return repo


@pytest.mark.parametrize("template_name", sorted(TEMPLATES))
def test_template_pipeline_end_to_end(repo, template_name):
    experiment = f"exp-{template_name}"
    result = ExperimentPipeline(repo, experiment).run()
    assert len(result.results) > 0, template_name
    assert result.validated, (
        template_name,
        [v.describe() for v in result.validations if not v.passed],
    )
    directory = repo.experiment_dir(experiment)
    assert (directory / "results.csv").is_file()
    assert (directory / "figure.csv").is_file()       # process-result.py ran
    assert (directory / "figure.svg").is_file()       # notebook ran
    assert (directory / "validation_report.txt").is_file()


def test_whole_repository_compliant_after_runs(repo):
    from repro.core.check import check_repository

    # every experiment has run by the time this executes (alphabetically last)
    report = check_repository(repo)
    assert not report.errors
