"""The process backend must not change results: ``-j 1`` serial and
``--backend process -j 4`` are bit-identical.

Same contract as ``test_parallel_determinism``, one layer further out:
worker *processes* instead of worker threads.  The sweep payloads cross
a pickle boundary, execute under fork, and journal into per-worker
shards that are merged back into one tree — none of which may leak into
``results.csv``, the validation verdicts, or journal well-formedness.
Also covers the operational surface the backend adds: the run-journal
header naming backend and worker count, worker-count clamping, the
``--process-smoke`` CI shorthand, and SIGTERM drain + resume.
"""

import json
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.ci.config import CIConfig
from repro.core.cli import main
from repro.core.repo import DEFAULT_TRAVIS
from repro.core.sweep import SweepExperimentJob
from repro.engine import EXIT_SIGTERM
from repro.monitor.journal import read_journal
from tests.integration.test_parallel_determinism import EXPERIMENTS, build_repo

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(scope="module")
def sweeps(tmp_path_factory):
    """Run the identical repository serially and on worker processes."""
    serial = build_repo(tmp_path_factory.mktemp("proc-det") / "serial")
    process = build_repo(tmp_path_factory.mktemp("proc-det") / "process")
    assert main(["-C", str(serial.root), "run", "--all", "-j", "1"]) == 0
    assert (
        main(
            [
                "-C",
                str(process.root),
                "run",
                "--all",
                "--backend",
                "process",
                "-j",
                "4",
            ]
        )
        == 0
    )
    return serial, process


@pytest.mark.parametrize("experiment", sorted(EXPERIMENTS))
def test_results_csv_byte_identical(sweeps, experiment):
    serial, process = sweeps
    serial_csv = (serial.experiment_dir(experiment) / "results.csv").read_bytes()
    process_csv = (
        process.experiment_dir(experiment) / "results.csv"
    ).read_bytes()
    assert serial_csv == process_csv


@pytest.mark.parametrize("experiment", sorted(EXPERIMENTS))
def test_validation_verdicts_identical(sweeps, experiment):
    serial, process = sweeps
    serial_report = (
        serial.experiment_dir(experiment) / "validation_report.txt"
    ).read_text()
    process_report = (
        process.experiment_dir(experiment) / "validation_report.txt"
    ).read_text()
    assert serial_report == process_report
    assert "ALL VALIDATIONS PASSED" in process_report


@pytest.mark.parametrize("experiment", sorted(EXPERIMENTS))
def test_journal_header_names_backend_and_workers(sweeps, experiment):
    """The run journal records who executed it: backend + worker count."""
    _, process = sweeps
    events = read_journal(process.experiment_dir(experiment) / "journal.jsonl")
    assert events[0]["event"] == "run_start"
    assert events[0]["backend"] == "process"
    assert events[0]["workers"] >= 1
    assert events[-1]["event"] == "run_end"
    assert events[-1]["status"] == "ok"
    seqs = [e["seq"] for e in events]
    assert seqs == list(range(1, len(events) + 1))
    span_ends = {e["name"] for e in events if e["event"] == "span_end"}
    assert {"task/setup", "task/run", "task/validate"} <= span_ends
    assert f"pipeline/run/{experiment}" in span_ends


def test_trace_renders_critical_path_after_process_run(sweeps, capsys):
    _, process = sweeps
    assert main(["-C", str(process.root), "trace", "exp-torpor"]) == 0
    out = capsys.readouterr().out
    assert "critical path:" in out
    assert "pipeline/run/exp-torpor" in out


def test_sweep_payloads_are_pickle_safe():
    """The job the CLI ships to workers survives the boundary by design:
    ``bind()`` attaches the live repository and cancel token, pickling
    drops them, and the worker re-opens the repo from its path."""
    job = SweepExperimentJob(
        repo_root="/tmp/nowhere", name="exp", backend="process", workers=2
    ).bind(repo=object(), cancel=object())
    clone = pickle.loads(pickle.dumps(job))
    assert clone.repo_root == "/tmp/nowhere"
    assert clone.name == "exp"
    assert not hasattr(clone, "_repo")
    assert not hasattr(clone, "_cancel")


def test_oversubscribed_process_pool_clamps_with_warning(tmp_path, capsys):
    repo_dir = tmp_path / "clamped-repo"
    repo_dir.mkdir()
    assert main(["-C", str(repo_dir), "init"]) == 0
    assert main(["-C", str(repo_dir), "add", "torpor", "one"]) == 0
    (repo_dir / "experiments" / "one" / "vars.yml").write_text(
        "runner: torpor-variability\nruns: 2\nseed: 11\n"
    )
    cpus = os.cpu_count() or 1
    capsys.readouterr()
    args = ["-C", str(repo_dir), "run", "--all", "--backend", "process"]
    assert main([*args, "-j", str(cpus + 7)]) == 0
    err = capsys.readouterr().err
    assert "clamping" in err
    events = read_journal(repo_dir / "experiments" / "one" / "journal.jsonl")
    assert events[0]["backend"] == "process"
    assert events[0]["workers"] == cpus


def test_process_smoke_is_process_backend_with_two_jobs(tmp_path, capsys):
    repo_dir = tmp_path / "smoke-repo"
    repo_dir.mkdir()
    assert main(["-C", str(repo_dir), "init"]) == 0
    assert main(["-C", str(repo_dir), "add", "torpor", "one"]) == 0
    (repo_dir / "experiments" / "one" / "vars.yml").write_text(
        "runner: torpor-variability\nruns: 2\nseed: 11\n"
    )
    assert main(["-C", str(repo_dir), "run", "--all", "--process-smoke"]) == 0
    events = read_journal(repo_dir / "experiments" / "one" / "journal.jsonl")
    assert events[0]["backend"] == "process"


def test_default_ci_matrix_includes_a_process_backend_job():
    config = CIConfig.from_yaml(DEFAULT_TRAVIS)
    modes = [env.get("POPPER_RUN_MODE") for env in config.expand_matrix()]
    assert "--process-smoke" in modes
    assert "--perf-smoke" in modes
    assert len(modes) == 9


#: Child harness: slow down one torpor run *inside a worker process* so
#: the SIGTERM lands in the parent while that experiment is in flight.
#: The monkeypatch happens before the pool forks, so workers inherit it;
#: each worker counts its own calls, hence ``-j 2`` keeps at least one
#: worker on its second (slowed) experiment.
SLOW_RUN = (
    "import sys, time\n"
    "from pathlib import Path\n"
    "import repro.core.runners as runners\n"
    "real = runners.EXPERIMENT_RUNNERS['torpor-variability']\n"
    "calls = []\n"
    "def slow(variables):\n"
    "    calls.append(1)\n"
    "    if len(calls) == 2:\n"
    "        Path(sys.argv[2]).touch()\n"
    "        time.sleep(3.0)\n"
    "    return real(variables)\n"
    "runners.EXPERIMENT_RUNNERS['torpor-variability'] = slow\n"
    "from repro.core.cli import main\n"
    "sys.exit(main(['-C', sys.argv[1], 'run', '--all',\n"
    "               '--backend', 'process', '-j', '2']))\n"
)


def _make_repo(path, names):
    path.mkdir()
    assert main(["-C", str(path), "init"]) == 0
    for name in names:
        assert main(["-C", str(path), "add", "torpor", name]) == 0
        (path / "experiments" / name / "vars.yml").write_text(
            "runner: torpor-variability\nruns: 2\nseed: 11\n"
        )
    return path


class TestSignalledProcessSweep:
    def test_sigterm_drains_workers_and_resumes(self, tmp_path, capsys):
        """SIGTERM mid-sweep under the process backend: in-flight worker
        payloads drain (whole-experiment granularity — workers see no
        cancel token), the exit code is 143, and ``--resume`` serves the
        checkpointed experiments from cache."""
        repo_dir = _make_repo(
            tmp_path / "signalled-repo", names=("one", "two", "three")
        )
        marker = tmp_path / "started"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", SLOW_RUN, str(repo_dir), str(marker)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        deadline = time.monotonic() + 60
        while not marker.exists():
            assert time.monotonic() < deadline, "runner never started"
            assert proc.poll() is None, "sweep died before being signalled"
            time.sleep(0.02)
        time.sleep(0.2)  # land the signal mid-payload, not mid-startup
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == EXIT_SIGTERM, out
        assert "completed tasks are checkpointed" in out
        assert "resume with: popper run --all --resume" in out

        # At least the first experiment completed and checkpointed
        # before the signal landed (exact coverage depends on how many
        # workers the host's cpu count allowed).
        states = {}
        state_file = repo_dir / ".pvcs" / "sweep-state.jsonl"
        for line in state_file.read_text().splitlines():
            record = json.loads(line)
            states[record["task"]] = record["state"]
        assert states.get("one") == "ok"

        # The resume serves checkpointed work from cache and completes
        # the rest; results land for every experiment.
        assert main(["-C", str(repo_dir), "run", "--all", "--resume"]) == 0
        resumed = capsys.readouterr().out
        for name in ("one", "two", "three"):
            assert (repo_dir / "experiments" / name / "results.csv").is_file()
        assert "(cached)" in resumed.split("-- two:")[0]
        capsys.readouterr()
        assert main(["-C", str(repo_dir), "cache", "verify"]) == 0
