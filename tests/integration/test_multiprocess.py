"""Two concurrent ``popper run`` processes sharing one repository.

The inter-process locks serialize the multi-step store updates (ingest
objects, then publish the record that references them); this test is the
whole point of them — both sweeps finish, the shared pool verifies
clean, and the index holds exactly one record per task.
"""

import os
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.core.cli import main
from repro.core.repo import PopperRepository

SRC = Path(__file__).resolve().parents[2] / "src"

RUN_ALL = (
    "import sys\n"
    "from repro.core.cli import main\n"
    "sys.exit(main(['-C', sys.argv[1], 'run', '--all']))\n"
)


@pytest.fixture
def repo_dir(tmp_path):
    path = tmp_path / "shared-repo"
    path.mkdir()
    assert main(["-C", str(path), "init"]) == 0
    for name in ("one", "two"):
        assert main(["-C", str(path), "add", "torpor", name]) == 0
        (path / "experiments" / name / "vars.yml").write_text(
            "runner: torpor-variability\nruns: 2\nseed: 11\n"
        )
    return path


def spawn_run(repo_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", RUN_ALL, str(repo_dir)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


class TestConcurrentSweeps:
    def test_two_processes_share_one_store_consistently(self, repo_dir, capsys):
        first = spawn_run(repo_dir)
        second = spawn_run(repo_dir)
        out_first, _ = first.communicate(timeout=300)
        out_second, _ = second.communicate(timeout=300)
        assert first.returncode == 0, out_first
        assert second.returncode == 0, out_second

        # Both sweeps produced (or materialized) the same artifacts.
        for name in ("one", "two"):
            assert (repo_dir / "experiments" / name / "results.csv").is_file()

        # The shared pool survived the contention intact...
        capsys.readouterr()
        assert main(["-C", str(repo_dir), "cache", "verify"]) == 0
        assert "-- verify: clean" in capsys.readouterr().out

        # ...with exactly one published record per fingerprint (the
        # store lock makes the second publisher a reuse, not a
        # duplicate).
        store = PopperRepository.open(repo_dir).artifact_store
        per_key = Counter(record.key for record in store.index.entries())
        assert per_key and all(count == 1 for count in per_key.values())

        # And no crash debris: the locks were all released cleanly.
        assert main(["-C", str(repo_dir), "doctor", "--dry-run"]) == 0

    def test_concurrent_results_byte_identical_to_solo_run(
        self, repo_dir, tmp_path, capsys
    ):
        first = spawn_run(repo_dir)
        second = spawn_run(repo_dir)
        assert first.wait(timeout=300) == 0
        assert second.wait(timeout=300) == 0
        first.stdout.close()
        second.stdout.close()

        solo = tmp_path / "solo-repo"
        solo.mkdir()
        assert main(["-C", str(solo), "init"]) == 0
        for name in ("one", "two"):
            assert main(["-C", str(solo), "add", "torpor", name]) == 0
            (solo / "experiments" / name / "vars.yml").write_text(
                "runner: torpor-variability\nruns: 2\nseed: 11\n"
            )
        assert main(["-C", str(solo), "run", "--all"]) == 0
        for name in ("one", "two"):
            contended = repo_dir / "experiments" / name / "results.csv"
            control = solo / "experiments" / name / "results.csv"
            assert contended.read_bytes() == control.read_bytes()
