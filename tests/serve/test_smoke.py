"""The CLI surface of the service layer: smoke job, daemon, trace."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.cli import main
from repro.serve import QUEUE_DIR, JobQueue

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture
def repo_dir(tmp_path):
    repo = tmp_path / "repo"
    repo.mkdir()
    assert main(["-C", str(repo), "init"]) == 0
    assert main(["-C", str(repo), "add", "torpor", "one"]) == 0
    return repo


class TestServeSmoke:
    def test_serve_smoke_cli(self, repo_dir, capsys):
        assert main(["-C", str(repo_dir), "run", "--all", "--serve-smoke"]) == 0
        out = capsys.readouterr().out
        assert "serve smoke ok" in out
        assert "kill -9 recovered" in out

    def test_default_ci_matrix_includes_the_serve_job(self):
        from repro.ci.config import CIConfig
        from repro.core.repo import DEFAULT_TRAVIS

        config = CIConfig.from_yaml(DEFAULT_TRAVIS)
        modes = [env.get("POPPER_RUN_MODE") for env in config.expand_matrix()]
        assert "--serve-smoke" in modes


class TestTraceServe:
    def test_summarizes_the_queue_journal(self, repo_dir, capsys):
        queue = JobQueue(repo_dir / ".pvcs" / QUEUE_DIR, durable=True)
        done = queue.submit("one", tenant="alice")
        queue.claim()
        queue.complete(done.id, meta={"rows": 3}, seconds=1.25)
        queue.submit("one", tenant="bob")
        queue.close()
        capsys.readouterr()

        assert main(["-C", str(repo_dir), "trace", "--serve"]) == 0
        out = capsys.readouterr().out
        assert "serve queue" in out
        assert "submitted: 2" in out
        assert "alice" in out and "bob" in out

    def test_requires_a_journal(self, repo_dir, capsys):
        assert main(["-C", str(repo_dir), "trace", "--serve"]) == 2
        err = capsys.readouterr().err
        assert "no serve queue journal" in err


class TestServeDaemonCli:
    def test_sigterm_drains_and_exits_143(self, repo_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-u",
                "-m",
                "repro.core.cli",
                "-C",
                str(repo_dir),
                "serve",
                "--workers",
                "1",
                "--port",
                "0",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "popper serve on http://127.0.0.1:" in banner
            proc.stdout.readline()  # usage hint
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        except BaseException:
            proc.kill()
            proc.communicate()
            raise
        assert proc.returncode == 143, out
        assert "draining" in out
        assert "left queued for the next daemon" in out

    def test_sigint_exits_130(self, repo_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-u",
                "-m",
                "repro.core.cli",
                "-C",
                str(repo_dir),
                "serve",
                "--workers",
                "1",
                "--port",
                "0",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "popper serve" in banner
            time.sleep(0.2)  # let the pool finish spawning
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=60)
        except BaseException:
            proc.kill()
            proc.communicate()
            raise
        assert proc.returncode == 130, out
