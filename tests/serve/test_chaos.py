"""Chaos-verified recovery: killed workers, crashed publishes.

The claims the serve subsystem makes — no accepted job lost, re-runs
idempotent through the cache — are only worth anything if they hold
under the injected failures this file throws at a real daemon:

* ``kill -9`` on the worker process mid-job: the supervisor must
  attribute the loss, respawn, and the job must still complete;
* a simulated crash between the durable result write and the
  ``job_done`` journal record (``queue.publish``): a restarted daemon
  must re-admit the job and finish it as a cache hit, byte-identical
  to what a plain ``popper run`` produces;
* a simulated crash between the durable lease marker and the
  ``job_leased`` record (``queue.claim``): the journal stays the truth
  (job still queued) and the orphan marker is inert debris.
"""

import os
import signal
import time

import pytest

from repro.common import minyaml
from repro.common.crash import CrashPlan, SimulatedCrash, install_crash_plan
from repro.core.cli import main
from repro.core.repo import PopperRepository
from repro.serve import QUEUE_DIR, JobQueue, PopperServer


@pytest.fixture(autouse=True)
def no_leftover_crash_plan():
    yield
    install_crash_plan(None)


def make_repo(base, experiments=("exp",)):
    repo = PopperRepository.init(base)
    for name in experiments:
        repo.add_experiment("torpor", name)
        vars_path = repo.experiment_dir(name) / "vars.yml"
        doc = minyaml.load_file(vars_path)
        doc["runs"] = 2  # keep worker-side pipeline runs cheap
        minyaml.dump_file(doc, vars_path)
    return repo


def tick_until(daemon, pred, what, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        daemon.tick(poll_s=0.05)
        value = pred()
        if value:
            return value
    raise AssertionError(f"timed out waiting for {what}")


def wait_running(daemon, job_id, timeout_s=60.0):
    """Tick until *job_id* is leased, then watch the marker without
    ticking (a tick could settle a fast job inside one poll window and
    the marker would never be observed); return the busy worker's pid."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if daemon.queue.get(job_id).state == "leased":
            break
        daemon.tick(poll_s=0.05)
    while time.monotonic() < deadline:
        for index, running in daemon.pool.current_jobs().items():
            if running == job_id:
                return daemon.pool.workers[index].pid
        time.sleep(0.001)
    raise AssertionError(f"timed out waiting for a worker to start {job_id}")


def settle(daemon, job_id, timeout_s=60.0):
    return tick_until(
        daemon,
        lambda: (
            daemon.queue.get(job_id)
            if daemon.queue.get(job_id).state in ("done", "dead")
            else None
        ),
        f"job {job_id} to settle",
        timeout_s,
    )


class TestWorkerKill:
    def test_sigkill_mid_job_recovers(self, tmp_path):
        repo = make_repo(tmp_path / "repo")
        daemon = PopperServer(repo, workers=1, max_queue=8, lease_s=30.0)
        try:
            daemon.start(api=False, loop=False)
            job = daemon.submit("exp")
            os.kill(wait_running(daemon, job.id), signal.SIGKILL)
            done = settle(daemon, job.id)
            assert done.state == "done", done.error
            assert done.meta.get("validated")
            assert done.attempts >= 2  # the first lease died with the worker
            assert daemon.pool.alive_count() == 1  # supervisor respawned
        finally:
            daemon.drain()


class TestPublishCrash:
    def test_restart_finishes_via_cache_byte_identical(self, tmp_path):
        # Ground truth: the same experiment through plain `popper run`.
        direct = tmp_path / "direct"
        make_repo(direct)
        assert main(["-C", str(direct), "run", "--all"]) == 0
        want_results = (direct / "experiments/exp/results.csv").read_bytes()
        want_report = (
            direct / "experiments/exp/validation_report.txt"
        ).read_bytes()

        repo = make_repo(tmp_path / "served")
        daemon = PopperServer(repo, workers=1, max_queue=8, lease_s=30.0)
        daemon.start(api=False, loop=False)
        install_crash_plan(CrashPlan.parse("at:queue.publish:1"))
        job = daemon.submit("exp")
        with pytest.raises(SimulatedCrash):
            settle(daemon, job.id)
        install_crash_plan(None)
        # The "dead" daemon: result file durable, cache filed, but the
        # journal's last word on the job is the lease.
        assert daemon.queue._result_path(job.id).is_file()
        assert daemon.queue.get(job.id).state == "leased"
        daemon.pool.drain()
        daemon.queue.checkpoint()
        daemon.queue.close()

        # Restart: recovery re-admits the job; dispatch finds the
        # outputs the first run pooled and completes without a worker.
        revived = PopperServer(repo, workers=1, max_queue=8, lease_s=30.0)
        try:
            recovered = revived.queue.get(job.id)
            assert recovered.state == "queued"
            revived.start(api=False, loop=False)
            done = settle(revived, job.id)
            assert done.state == "done", done.error
            assert done.cached  # served from the pool, not re-executed
            results = repo.experiment_dir("exp") / "results.csv"
            report = repo.experiment_dir("exp") / "validation_report.txt"
            assert results.read_bytes() == want_results
            assert report.read_bytes() == want_report
        finally:
            revived.drain()


class TestClaimCrash:
    def test_journal_stays_the_truth(self, tmp_path):
        queue = JobQueue(tmp_path / QUEUE_DIR, durable=False)
        job = queue.submit("exp")
        install_crash_plan(CrashPlan.parse("at:queue.claim:1"))
        with pytest.raises(SimulatedCrash):
            queue.claim()
        install_crash_plan(None)
        # The lease marker landed; the journal record did not.
        assert queue._lease_path(job.id).is_file()
        queue.checkpoint()
        queue.close()

        replayed = JobQueue(tmp_path / QUEUE_DIR, durable=False)
        recovered = replayed.get(job.id)
        assert recovered.state == "queued"  # the journal never saw a lease
        assert recovered.attempts == 0
        leased = replayed.claim()  # the orphan marker does not block it
        assert leased is not None and leased.id == job.id
        replayed.close()
