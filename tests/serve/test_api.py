"""The HTTP/JSON surface: clean 4xx for every adversarial input."""

import http.client
import json
import threading

import pytest

from repro.common.rng import derive_rng
from repro.core.repo import PopperRepository
from repro.fuzz.mutators import generate_serve_payload
from repro.serve import PopperServer, make_server


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """A daemon with the API up but no worker pool or scheduler loop.

    Submissions queue and sit there — exactly what contract tests need:
    deterministic admission behavior with no execution racing it.
    """
    base = tmp_path_factory.mktemp("serve-api")
    repo = PopperRepository.init(base / "repo")
    repo.add_experiment("torpor", "alpha")
    daemon = PopperServer(repo, workers=1, max_queue=3, durable=False)
    httpd = make_server(daemon, "127.0.0.1", 0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield daemon, httpd.server_address[1]
    httpd.shutdown()
    httpd.server_close()
    daemon.queue.close()


def request(port, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        raw = response.read()
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError:
            doc = {"_raw": raw.decode("utf-8", "replace")}
        return response.status, dict(response.headers), doc
    finally:
        conn.close()


def post_job(port, body, headers=None):
    headers = {"Content-Type": "application/json", **(headers or {})}
    return request(port, "POST", "/v1/jobs", body=body, headers=headers)


class TestReadSurface:
    def test_healthz(self, service):
        daemon, port = service
        status, _, doc = request(port, "GET", "/healthz")
        assert status == 200
        assert doc["status"] == "ok" and doc["workers"] == 1

    def test_readyz_reports_capacity(self, service):
        _, port = service
        status, _, doc = request(port, "GET", "/readyz")
        assert status == 200 and doc["ready"]

    def test_job_listing_and_lookup(self, service):
        daemon, port = service
        job = daemon.queue.submit("alpha", cached_meta={"rows": 1})
        status, _, doc = request(port, "GET", "/v1/jobs")
        assert status == 200
        assert job.id in [j["id"] for j in doc["jobs"]]
        status, _, doc = request(port, "GET", f"/v1/jobs/{job.id}")
        assert status == 200 and doc["state"] == "done"

    def test_unknown_job_404(self, service):
        _, port = service
        status, _, doc = request(port, "GET", "/v1/jobs/job-999999")
        assert status == 404 and "error" in doc

    def test_unknown_route_404(self, service):
        _, port = service
        for method, path in (("GET", "/v2/nope"), ("POST", "/v1/other")):
            status, _, doc = request(
                port, method, path, body=b"{}" if method == "POST" else None
            )
            assert status == 404 and "error" in doc

    def test_stats_and_cache_stats(self, service):
        _, port = service
        status, _, doc = request(port, "GET", "/v1/stats")
        assert status == 200 and "depth" in doc and "workers" in doc
        status, _, doc = request(port, "GET", "/v1/cache/stats")
        assert status == 200


class TestSubmissionContract:
    def test_accepted_submission_is_202(self, service):
        daemon, port = service
        status, _, doc = post_job(port, b'{"experiment": "alpha"}')
        assert status == 202
        assert daemon.queue.get(doc["id"]).state == "queued"

    def test_garbage_json_400(self, service):
        _, port = service
        for body in (b"{not json", b"", b"\xff\xfe\x00", b'"a string"', b"[1]"):
            status, _, doc = post_job(port, body)
            assert status == 400 and "error" in doc

    def test_bad_field_types_400(self, service):
        _, port = service
        for body in (
            b'{"experiment": 7}',
            b'{"experiment": null}',
            b'{"experiment": "  "}',
            b'{"experiment": "alpha", "tenant": 3}',
        ):
            status, _, doc = post_job(port, body)
            assert status == 400 and "error" in doc

    def test_hostile_tenant_400(self, service):
        _, port = service
        for tenant in ("../x", "", "a" * 65, ".dot", "-dash", "sp ace"):
            body = json.dumps({"experiment": "alpha", "tenant": tenant})
            status, _, doc = post_job(port, body.encode("utf-8"))
            assert status == 400, f"tenant {tenant!r} answered {status}"

    def test_unknown_experiment_422(self, service):
        _, port = service
        status, _, doc = post_job(port, b'{"experiment": "no-such"}')
        assert status == 422 and "error" in doc

    def test_missing_content_length_411(self, service):
        _, port = service
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            conn.putrequest("POST", "/v1/jobs", skip_accept_encoding=True)
            conn.putheader("Content-Type", "application/json")
            conn.endheaders()  # no body, no Content-Length
            response = conn.getresponse()
            assert response.status == 411
        finally:
            conn.close()

    def test_oversized_body_413(self, service):
        _, port = service
        body = b'{"experiment": "' + b"a" * 70_000 + b'"}'
        status, _, doc = post_job(port, body)
        assert status == 413 and "error" in doc

    def test_full_queue_429_with_retry_after(self, service):
        daemon, port = service
        admitted = []
        while daemon.queue.depth() < daemon.queue.max_depth:
            status, _, doc = post_job(port, b'{"experiment": "alpha"}')
            assert status == 202
            admitted.append(doc["id"])
        status, headers, doc = post_job(port, b'{"experiment": "alpha"}')
        assert status == 429 and "error" in doc
        assert headers.get("Retry-After")
        # Put the fixture queue back the way we found it.
        for job_id in admitted:
            daemon.queue.jobs.pop(job_id)

    def test_draining_503_with_retry_after(self, service):
        daemon, port = service
        daemon.draining = True
        try:
            status, headers, doc = post_job(port, b'{"experiment": "alpha"}')
            assert status == 503 and "error" in doc
            assert headers.get("Retry-After")
            status, _, doc = request(port, "GET", "/readyz")
            assert status == 503 and not doc["ready"]
        finally:
            daemon.draining = False


class TestAdversarialGrammar:
    def test_fuzzed_payloads_never_500(self, service):
        """The fuzz grammar's whole corpus gets a clean verdict: some
        shapes are valid submissions (2xx), everything else a 4xx —
        never a traceback, never a 5xx."""
        daemon, port = service
        rng = derive_rng(1234, "serve-api")
        for i in range(120):
            payload = generate_serve_payload(rng)
            status, _, doc = post_job(port, payload)
            assert status < 500, f"payload {i} answered {status}: {doc}"
            if status >= 400:
                assert "error" in doc
        # Keep the shared fixture queue empty for later tests.
        for job_id, job in list(daemon.queue.jobs.items()):
            if job.state == "queued":
                daemon.queue.jobs.pop(job_id)
