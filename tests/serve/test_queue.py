"""The durable job queue: admission, leasing, backoff, journal replay."""

import json

import pytest

from repro.common.errors import QueueFullError, ServeError, UnknownJobError
from repro.engine.resilience import RetryPolicy
from repro.monitor.journal import load_journal
from repro.serve.queue import REQUEUE_POLICY, JobQueue


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def make_queue(tmp_path, clock, **kwargs):
    kwargs.setdefault("max_depth", 4)
    kwargs.setdefault("lease_s", 10.0)
    kwargs.setdefault("durable", False)
    return JobQueue(tmp_path / "queue", clock=clock, **kwargs)


class TestLifecycle:
    def test_submit_claim_complete(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        job = q.submit("alpha", tenant="t1")
        assert job.state == "queued" and job.id == "job-000000"
        leased = q.claim()
        assert leased.id == job.id
        assert leased.state == "leased" and leased.attempts == 1
        assert q._lease_path(job.id).is_file()
        done = q.complete(job.id, meta={"rows": 3}, seconds=1.5)
        assert done.state == "done" and done.meta == {"rows": 3}
        assert not q._lease_path(job.id).exists()
        result = json.loads(q._result_path(job.id).read_text())
        assert result["job"] == job.id and result["meta"] == {"rows": 3}

    def test_complete_is_idempotent_on_done(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        job = q.submit("alpha")
        q.claim()
        q.complete(job.id)
        assert q.complete(job.id).state == "done"

    def test_complete_queued_job_refused(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        job = q.submit("alpha")
        with pytest.raises(ServeError, match="state 'queued'"):
            q.complete(job.id)

    def test_unknown_job_raises(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        with pytest.raises(UnknownJobError):
            q.get("job-999999")

    def test_claim_on_empty_queue_is_none(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        assert q.claim() is None


class TestAdmission:
    def test_shed_at_depth_bound(self, tmp_path, clock):
        q = make_queue(tmp_path, clock, max_depth=2)
        q.submit("a")
        q.submit("b")
        with pytest.raises(QueueFullError):
            q.submit("c")
        assert q.shed_count == 1
        assert q.stats()["shed"] == 1

    def test_leased_jobs_count_toward_depth(self, tmp_path, clock):
        q = make_queue(tmp_path, clock, max_depth=2)
        q.submit("a")
        q.submit("b")
        q.claim()
        assert q.depth() == 2
        with pytest.raises(QueueFullError):
            q.submit("c")

    def test_cache_served_submission_bypasses_the_bound(self, tmp_path, clock):
        q = make_queue(tmp_path, clock, max_depth=1)
        q.submit("a")
        job = q.submit("warm", cached_meta={"rows": 2})
        assert job.state == "done" and job.cached
        assert q._result_path(job.id).is_file()
        assert q.depth() == 1  # the cache-served job took no slot


class TestFairness:
    def test_claim_prefers_the_tenant_holding_fewest_leases(
        self, tmp_path, clock
    ):
        q = make_queue(tmp_path, clock, max_depth=8)
        q.submit("a1", tenant="alice")
        q.submit("a2", tenant="alice")
        q.submit("b1", tenant="bob")
        first = q.claim()
        assert first.tenant == "alice"  # FIFO while nobody holds a lease
        second = q.claim()
        assert second.tenant == "bob"  # alice holds one; bob held none

    def test_never_two_leases_for_one_experiment(self, tmp_path, clock):
        q = make_queue(tmp_path, clock, max_depth=8)
        q.submit("same")
        q.submit("same")
        assert q.claim().experiment == "same"
        assert q.claim() is None  # the sibling shares an output directory


class TestRetries:
    def test_fail_requeues_with_backoff(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        job = q.submit("a")
        q.claim()
        q.fail(job.id, "boom")
        assert job.state == "queued"
        assert job.error == "boom"
        assert job.not_before > clock()
        assert q.claim() is None  # still inside the backoff window
        clock.advance(REQUEUE_POLICY.max_delay_s + 0.01)
        assert q.claim().id == job.id

    def test_attempt_budget_dead_letters(self, tmp_path, clock):
        q = make_queue(
            tmp_path,
            clock,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0, jitter=0.0),
        )
        job = q.submit("a")
        for _ in range(2):
            clock.advance(1.0)
            assert q.claim() is not None
            q.fail(job.id, "boom")
        assert job.state == "dead"
        assert q.claim() is None
        assert q.stats()["states"]["dead"] == 1

    def test_lease_expiry_requeues(self, tmp_path, clock):
        q = make_queue(tmp_path, clock, lease_s=5.0)
        job = q.submit("a")
        q.claim()
        assert q.expire_leases() == []
        clock.advance(6.0)
        assert [j.id for j in q.expire_leases()] == [job.id]
        assert job.state == "queued"
        assert not q._lease_path(job.id).exists()

    def test_heartbeat_extends_the_deadline(self, tmp_path, clock):
        q = make_queue(tmp_path, clock, lease_s=5.0)
        job = q.submit("a")
        q.claim()
        clock.advance(4.0)
        q.heartbeat(job.id)
        clock.advance(4.0)
        assert q.expire_leases() == []  # renewed at t+4, expires t+9


class TestReplay:
    def test_restart_rebuilds_every_state(self, tmp_path, clock):
        q = make_queue(tmp_path, clock, max_depth=8)
        done = q.submit("done-exp")
        q.claim()
        q.complete(done.id, meta={"rows": 1}, seconds=0.5)
        failed = q.submit("failed-exp")
        queued = q.submit("queued-exp")
        clock.advance(0.01)
        leased = q.claim()
        assert leased.id == failed.id  # FIFO: the earlier submission
        q.fail(failed.id, "boom")
        q.close()

        replayed = make_queue(tmp_path, clock, max_depth=8)
        assert replayed.get(done.id).state == "done"
        assert replayed.get(done.id).meta == {"rows": 1}
        assert replayed.get(queued.id).state == "queued"
        assert replayed.get(failed.id).state == "queued"
        assert replayed.get(failed.id).error == "boom"

    def test_leased_jobs_recover_as_queued(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        job = q.submit("a")
        q.claim()
        q.checkpoint()
        # No close(): the daemon "dies" holding the lease.
        replayed = make_queue(tmp_path, clock)
        recovered = replayed.get(job.id)
        assert recovered.state == "queued"
        assert recovered.attempts == 1  # the lost lease spent one attempt
        events, torn = load_journal(tmp_path / "queue" / "journal.jsonl")
        requeues = [e for e in events if e.get("event") == "job_requeued"]
        assert torn == 0
        assert requeues and requeues[-1]["reason"] == "recovered"

    def test_serials_and_seqs_continue_across_restart(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        q.submit("a")
        q.close()
        replayed = make_queue(tmp_path, clock)
        assert replayed.submit("b").id == "job-000001"
        replayed.close()
        events, _ = load_journal(tmp_path / "queue" / "journal.jsonl")
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_unknown_journal_kinds_are_ignored(self, tmp_path, clock):
        q = make_queue(tmp_path, clock)
        job = q.submit("a")
        q.close()
        path = tmp_path / "queue" / "journal.jsonl"
        record = {"seq": 999, "ts": clock(), "event": "job_promoted", "job": job.id}
        with path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        replayed = make_queue(tmp_path, clock)
        assert replayed.get(job.id).state == "queued"

    def test_bad_parameters_rejected(self, tmp_path, clock):
        with pytest.raises(ServeError, match="max_depth"):
            make_queue(tmp_path, clock, max_depth=0)
        with pytest.raises(ServeError, match="lease_s"):
            make_queue(tmp_path, clock, lease_s=0.0)
