"""Tests for the labeled-array algebra, the generator and the analysis."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.weather.analysis import SEASONS, analyze_air_temperature
from repro.weather.dataset import DatasetError, LabeledArray
from repro.weather.generator import generate_air_temperature, season_of_day


def small_array():
    return LabeledArray(
        name="t",
        data=np.arange(24, dtype=float).reshape(2, 3, 4),
        dims=("time", "lat", "lon"),
        coords={
            "time": np.array([0.0, 1.0]),
            "lat": np.array([-45.0, 0.0, 45.0]),
            "lon": np.array([0.0, 90.0, 180.0, 270.0]),
        },
    )


class TestLabeledArray:
    def test_validation_shape_mismatch(self):
        with pytest.raises(DatasetError):
            LabeledArray(
                name="x",
                data=np.zeros((2, 2)),
                dims=("a", "b"),
                coords={"a": np.zeros(2), "b": np.zeros(3)},
            )

    def test_validation_missing_coord(self):
        with pytest.raises(DatasetError):
            LabeledArray(
                name="x", data=np.zeros(2), dims=("a",), coords={}
            )

    def test_duplicate_dims(self):
        with pytest.raises(DatasetError):
            LabeledArray(
                name="x",
                data=np.zeros((2, 2)),
                dims=("a", "a"),
                coords={"a": np.zeros(2)},
            )

    def test_isel_scalar_drops_dim(self):
        arr = small_array().isel(time=0)
        assert arr.dims == ("lat", "lon")
        assert arr.shape == (3, 4)

    def test_isel_slice_keeps_dim(self):
        arr = small_array().isel(lon=slice(0, 2))
        assert arr.shape == (2, 3, 2)

    def test_sel_nearest(self):
        arr = small_array().sel(lat=44.0)  # nearest is 45
        assert arr.dims == ("time", "lon")
        np.testing.assert_array_equal(
            arr.data, small_array().data[:, 2, :]
        )

    def test_sel_range(self):
        arr = small_array().sel(lon=(0.0, 90.0))
        assert arr.shape == (2, 3, 2)

    def test_sel_empty_range(self):
        with pytest.raises(DatasetError):
            small_array().sel(lon=(400.0, 500.0))

    def test_mean_reduces(self):
        arr = small_array().mean("time")
        assert arr.dims == ("lat", "lon")
        np.testing.assert_allclose(arr.data, small_array().data.mean(axis=0))

    def test_chained_reductions_to_scalar(self):
        value = small_array().mean("time").mean("lat").mean("lon").scalar()
        assert value == pytest.approx(small_array().data.mean())

    def test_scalar_on_non_scalar(self):
        with pytest.raises(DatasetError):
            small_array().scalar()

    def test_unknown_dim(self):
        with pytest.raises(DatasetError):
            small_array().mean("altitude")

    def test_groupby(self):
        arr = small_array()
        groups = arr.groupby("lat", lambda v: "south" if v < 0 else "north")
        assert set(groups) == {"south", "north"}
        assert groups["south"].shape == (2, 1, 4)
        assert groups["north"].shape == (2, 2, 4)

    def test_arithmetic(self):
        arr = small_array()
        doubled = arr + arr
        np.testing.assert_array_equal(doubled.data, arr.data * 2)
        anomaly = arr - arr
        assert np.all(anomaly.data == 0)
        scaled = arr * 0.5
        np.testing.assert_array_equal(scaled.data, arr.data / 2)

    def test_arithmetic_misaligned(self):
        with pytest.raises(DatasetError):
            small_array() + small_array().isel(time=0)

    def test_save_load_round_trip(self, tmp_path):
        arr = small_array()
        path = tmp_path / "air.npz"
        arr.save(path)
        again = LabeledArray.load(path)
        assert again.dims == arr.dims
        np.testing.assert_array_equal(again.data, arr.data)
        np.testing.assert_array_equal(again.coords["lat"], arr.coords["lat"])


class TestSeasonOfDay:
    @pytest.mark.parametrize(
        "day,season",
        [(0, "DJF"), (40, "DJF"), (80, "MAM"), (180, "JJA"), (280, "SON"), (350, "DJF")],
    )
    def test_boundaries(self, day, season):
        assert season_of_day(day) == season

    def test_wraps_across_years(self):
        assert season_of_day(365) == season_of_day(0)


class TestGenerator:
    @pytest.fixture(scope="class")
    def air(self):
        return generate_air_temperature(seed=42, years=1, lat_step=10, lon_step=15)

    def test_structure(self, air):
        assert air.dims == ("time", "lat", "lon")
        assert air.shape == (365, 19, 24)
        assert air.attrs["units"] == "K"

    def test_physical_range(self, air):
        assert 180 < float(air.data.min()) and float(air.data.max()) < 330

    def test_deterministic(self):
        a = generate_air_temperature(seed=1, lat_step=15, lon_step=30)
        b = generate_air_temperature(seed=1, lat_step=15, lon_step=30)
        np.testing.assert_array_equal(a.data, b.data)

    def test_seed_matters(self):
        a = generate_air_temperature(seed=1, lat_step=15, lon_step=30)
        b = generate_air_temperature(seed=2, lat_step=15, lon_step=30)
        assert not np.array_equal(a.data, b.data)

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            generate_air_temperature(years=0)
        with pytest.raises(ReproError):
            generate_air_temperature(lat_step=90)


class TestAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self):
        air = generate_air_temperature(seed=42, years=1, lat_step=10, lon_step=15)
        return analyze_air_temperature(air)

    def test_equator_to_pole_gradient(self, analysis):
        assert analysis.equator_minus_pole_k > 30.0

    def test_global_mean_plausible(self, analysis):
        assert 270.0 < analysis.global_mean_k < 295.0

    def test_hemispheric_seasonality(self, analysis):
        """NH warm in JJA, cold in DJF; mirrored in the south."""
        lats, jja = analysis.zonal_series("JJA")
        _, djf = analysis.zonal_series("DJF")
        north = lats > 30
        south = lats < -30
        assert np.all(jja[north] > djf[north])
        assert np.all(djf[south] > jja[south])

    def test_amplitude_grows_poleward(self, analysis):
        table = analysis.seasonal_amplitude_by_lat
        tropics = [r["amplitude"] for r in table if abs(r["lat"]) < 15]
        high = [r["amplitude"] for r in table if abs(r["lat"]) > 60]
        assert np.mean(high) > 3 * np.mean(tropics)

    def test_figure_rows_complete(self, analysis):
        assert len(analysis.seasonal_zonal) == 4 * 19
        assert set(analysis.seasonal_zonal.column("season")) == set(SEASONS)

    def test_unknown_season_series(self, analysis):
        with pytest.raises(ReproError):
            analysis.zonal_series("WINTER")
