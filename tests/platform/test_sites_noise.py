"""Tests for noise models and site allocation."""

import numpy as np
import pytest

from repro.common.errors import AllocationError, PlatformError
from repro.common.rng import SeedSequenceFactory, derive_rng
from repro.platform.noise import (
    QUIET,
    DaemonNoise,
    JitterNoise,
    NeighborNoise,
    NoiseModel,
    noisy_cloud,
)
from repro.platform.sites import Site, default_sites


class TestNoiseModels:
    def test_jitter_mean_preserving(self):
        rng = derive_rng(1, "jitter")
        samples = np.array(
            [JitterNoise(cov=0.05).sample(10.0, rng) for _ in range(4000)]
        )
        assert samples.mean() == pytest.approx(10.0, rel=0.02)

    def test_zero_cov_identity(self):
        rng = derive_rng(1, "x")
        assert JitterNoise(cov=0.0).sample(5.0, rng) == 5.0

    def test_daemon_noise_only_slows(self):
        rng = derive_rng(1, "daemon")
        noise = DaemonNoise(steal_fraction=0.05, period_s=0.1, duty=0.5)
        samples = [noise.sample(2.0, rng) for _ in range(100)]
        assert all(s >= 2.0 for s in samples)
        assert max(s for s in samples) > 2.0

    def test_neighbor_noise_bimodal(self):
        rng = derive_rng(1, "nbr")
        noise = NeighborNoise(prob=0.5, lo=0.2, hi=0.4)
        samples = np.array([noise.sample(1.0, rng) for _ in range(2000)])
        clean = (samples == 1.0).mean()
        assert 0.4 < clean < 0.6
        assert samples.max() <= 1.4 + 1e-9

    def test_neighbor_validation(self):
        with pytest.raises(PlatformError):
            NeighborNoise(prob=1.5)
        with pytest.raises(PlatformError):
            NeighborNoise(lo=0.5, hi=0.1)

    def test_noisy_cloud_spread_exceeds_quiet(self):
        rng_q = derive_rng(3, "quiet")
        rng_n = derive_rng(3, "noisy")
        quiet = QUIET.sample_many(1.0, rng_q, 300)
        noisy = noisy_cloud().sample_many(1.0, rng_n, 300)
        cov_q = quiet.std() / quiet.mean()
        cov_n = noisy.std() / noisy.mean()
        assert cov_n > 3 * cov_q


class TestSites:
    def test_allocation_lifecycle(self):
        site = Site("t", "cloudlab-c220g1", capacity=4)
        alloc = site.allocate(3)
        assert len(alloc) == 3
        assert site.available == 1
        alloc.release()
        assert site.available == 4

    def test_over_allocation_rejected(self):
        site = Site("t", "cloudlab-c220g1", capacity=2)
        with pytest.raises(AllocationError):
            site.allocate(3)

    def test_zero_allocation_rejected(self):
        site = Site("t", "cloudlab-c220g1", capacity=2)
        with pytest.raises(AllocationError):
            site.allocate(0)

    def test_double_release_rejected(self):
        site = Site("t", "cloudlab-c220g1", capacity=2)
        alloc = site.allocate(1)
        alloc.release()
        with pytest.raises(AllocationError):
            alloc.release()

    def test_context_manager_releases(self):
        site = Site("t", "cloudlab-c220g1", capacity=2)
        with site.allocate(2):
            assert site.available == 0
        assert site.available == 2

    def test_node_speed_factors_deterministic(self):
        seeds = SeedSequenceFactory(7)
        a = Site("s", "cloudlab-c220g1", capacity=8, seeds=seeds)
        b = Site("s", "cloudlab-c220g1", capacity=8, seeds=SeedSequenceFactory(7))
        assert [n.speed_factor for n in a.allocate(8)] == [
            n.speed_factor for n in b.allocate(8)
        ]

    def test_nodes_vary_but_mildly(self):
        site = Site("s", "cloudlab-c220g1", capacity=16)
        factors = [site.node(i).speed_factor for i in range(16)]
        assert len(set(factors)) > 1
        assert all(0.8 <= f <= 1.2 for f in factors)

    def test_hostnames_unique(self):
        site = Site("s", "cloudlab-c220g1", capacity=8)
        alloc = site.allocate(8)
        names = [n.hostname for n in alloc]
        assert len(set(names)) == 8

    def test_default_sites_cover_paper_testbeds(self):
        sites = default_sites()
        assert set(sites) == {"lab", "cloudlab-wisc", "cloudlab-utah", "ec2", "hpc"}
        assert sites["lab"].spec.year == 2006
        assert sites["ec2"].spec.virt_overhead > 0

    def test_observed_time_includes_noise_and_speed(self):
        sites = default_sites()
        node = sites["ec2"].node(0)
        rng = derive_rng(9, "obs")
        samples = [node.observed_time(1.0, rng) for _ in range(200)]
        assert min(samples) > 0
        assert np.std(samples) > 0
