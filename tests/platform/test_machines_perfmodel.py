"""Tests for machine catalog and the roofline execution model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import PlatformError
from repro.platform.machines import CATALOG, MachineSpec, get_machine
from repro.platform.perfmodel import (
    KernelDemand,
    amdahl_speedup,
    bottleneck,
    execution_time,
)


class TestCatalog:
    def test_expected_platforms_present(self):
        for name in (
            "lab-xeon-2006",
            "cloudlab-c220g1",
            "cloudlab-m400",
            "ec2-m4",
            "hpc-haswell-ib",
        ):
            assert get_machine(name).name == name

    def test_unknown_machine(self):
        with pytest.raises(PlatformError):
            get_machine("cray-1")

    def test_new_machine_is_generationally_faster(self):
        old = get_machine("lab-xeon-2006")
        new = get_machine("cloudlab-c220g1")
        assert new.core_ops_per_sec() > 2 * old.core_ops_per_sec()
        assert new.mem_bw_gbs > 4 * old.mem_bw_gbs

    def test_virtualized_variant(self):
        bare = get_machine("cloudlab-c220g1")
        vm = bare.virtualized(0.1)
        assert vm.virt_overhead == 0.1
        assert vm.name.endswith("-vm")
        assert bare.virt_overhead == 0.0

    def test_invalid_spec_rejected(self):
        with pytest.raises(PlatformError):
            MachineSpec(
                name="bad", year=2020, cores=0, freq_ghz=3.0, ipc_int=1, ipc_fp=1,
                l2_kib=256, l3_mib=8, mem_bw_gbs=10, mem_lat_ns=90,
                storage_bw_mbs=100, storage_iops=1000, storage_lat_us=100,
                net_bw_gbit=10, net_lat_us=20,
            )


class TestKernelDemand:
    def test_scaled(self):
        demand = KernelDemand(ops=100.0, mem_bytes=10.0, net_msgs=2.0)
        double = demand.scaled(2.0)
        assert double.ops == 200.0 and double.net_msgs == 4.0

    def test_plus_adds_volumes(self):
        a = KernelDemand(ops=100.0, fp_fraction=1.0)
        b = KernelDemand(ops=300.0, fp_fraction=0.0)
        c = a.plus(b)
        assert c.ops == 400.0
        assert c.fp_fraction == pytest.approx(0.25)

    def test_bad_fractions_rejected(self):
        with pytest.raises(PlatformError):
            KernelDemand(fp_fraction=1.5)
        with pytest.raises(PlatformError):
            KernelDemand(parallel_fraction=-0.1)


class TestExecutionModel:
    def test_cpu_bound_kernel_tracks_core_rate(self):
        machine = get_machine("cloudlab-c220g1")
        demand = KernelDemand(ops=1e9, working_set_kib=16)
        time = execution_time(demand, machine)
        assert time == pytest.approx(1e9 / machine.core_ops_per_sec(), rel=0.2)

    def test_bottleneck_classification(self):
        machine = get_machine("cloudlab-c220g1")
        assert bottleneck(KernelDemand(ops=1e10, working_set_kib=8), machine) == "compute"
        assert (
            bottleneck(
                KernelDemand(mem_bytes=1e10, working_set_kib=1 << 20), machine
            )
            == "memory"
        )
        assert (
            bottleneck(KernelDemand(storage_read_bytes=1e10), machine) == "storage"
        )
        assert bottleneck(KernelDemand(net_bytes=1e10), machine) == "network"

    def test_hdd_vs_network_bottleneck_inversion(self):
        """The paper's example: an HDD machine is storage-bound where a
        fast-storage machine is network-bound for the same workload."""
        demand = KernelDemand(
            storage_read_bytes=1e9, storage_ops=20000, net_bytes=4e9
        )
        assert bottleneck(demand, get_machine("lab-xeon-2006")) == "storage"
        assert bottleneck(demand, get_machine("cloudlab-c220g1")) == "network"

    def test_more_threads_never_slower(self):
        machine = get_machine("cloudlab-c220g1")
        demand = KernelDemand(ops=1e10, parallel_fraction=0.95, working_set_kib=32)
        times = [execution_time(demand, machine, threads=t) for t in (1, 2, 4, 8, 16)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_amdahl_limits_scaling(self):
        machine = get_machine("cloudlab-c220g1")
        demand = KernelDemand(ops=1e10, parallel_fraction=0.5, working_set_kib=32)
        t1 = execution_time(demand, machine, threads=1)
        t16 = execution_time(demand, machine, threads=16)
        assert t1 / t16 < 2.0  # Amdahl cap at p=0.5 is 2x

    def test_virt_overhead_applied(self):
        bare = get_machine("cloudlab-c220g1")
        vm = bare.virtualized(0.10)
        demand = KernelDemand(ops=1e9)
        assert execution_time(demand, vm) == pytest.approx(
            execution_time(demand, bare) * 1.10
        )

    def test_cache_resident_faster_than_spilled(self):
        machine = get_machine("cloudlab-c220g1")
        small = KernelDemand(mem_bytes=1e9, working_set_kib=512)
        large = KernelDemand(mem_bytes=1e9, working_set_kib=1 << 20)
        assert execution_time(small, machine) < execution_time(large, machine)

    def test_overlap_bounds(self):
        machine = get_machine("cloudlab-c220g1")
        demand = KernelDemand(ops=1e9, mem_bytes=1e9, working_set_kib=1 << 20)
        roofline = execution_time(demand, machine, overlap=1.0)
        serial = execution_time(demand, machine, overlap=0.0)
        mid = execution_time(demand, machine, overlap=0.5)
        assert roofline <= mid <= serial
        with pytest.raises(PlatformError):
            execution_time(demand, machine, overlap=1.5)

    @given(
        ops=st.floats(min_value=1e6, max_value=1e12),
        mem=st.floats(min_value=0, max_value=1e12),
        threads=st.integers(min_value=1, max_value=64),
    )
    def test_time_always_positive(self, ops, mem, threads):
        machine = get_machine("cloudlab-c220g1")
        demand = KernelDemand(ops=ops, mem_bytes=mem, working_set_kib=1 << 18)
        assert execution_time(demand, machine, threads=threads) > 0

    def test_amdahl_speedup_monotone(self):
        speedups = [amdahl_speedup(t, 0.9) for t in (1, 2, 4, 8, 16, 32)]
        assert all(b >= a for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] < 10.0  # bounded by 1/(1-p)
