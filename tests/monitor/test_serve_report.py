"""Forward-compatible rendering: unknown journal kinds and the serve
queue summary behind ``popper trace --serve``."""

import pytest

from repro.common.errors import MonitorError
from repro.monitor.report import render_report, render_serve_summary


def run_events(extra=()):
    events = [
        {"seq": 1, "ts": 1.0, "event": "run_start", "experiment": "myexp"},
        {"seq": 2, "ts": 2.0, "event": "span_start", "span_id": 1, "name": "run"},
        {"seq": 3, "ts": 5.0, "event": "span_end", "span_id": 1, "status": "ok"},
        {"seq": 4, "ts": 6.0, "event": "run_end", "status": "ok"},
    ]
    events.extend(extra)
    return events


def queue_events():
    return [
        {"seq": 1, "event": "job_submitted", "job": "job-000000",
         "experiment": "a", "tenant": "alice"},
        {"seq": 2, "event": "job_leased", "job": "job-000000", "attempt": 1},
        {"seq": 3, "event": "job_failed", "job": "job-000000", "error": "boom"},
        {"seq": 4, "event": "job_requeued", "job": "job-000000",
         "reason": "failed"},
        {"seq": 5, "event": "job_leased", "job": "job-000000", "attempt": 2},
        {"seq": 6, "event": "job_done", "job": "job-000000", "cached": False,
         "seconds": 1.5},
        {"seq": 7, "event": "job_submitted", "job": "job-000001",
         "experiment": "a", "tenant": "bob"},
        {"seq": 8, "event": "job_done", "job": "job-000001", "cached": True,
         "seconds": 0.0},
        {"seq": 9, "event": "job_shed", "tenant": "bob", "experiment": "a"},
        {"seq": 10, "event": "job_submitted", "job": "job-000002",
         "experiment": "b", "tenant": "bob"},
        {"seq": 11, "event": "job_requeued", "job": "job-000002",
         "reason": "lease-expired"},
        {"seq": 12, "event": "job_dead", "job": "job-000002", "attempts": 4,
         "error": "worker died mid-job"},
    ]


class TestUnknownKinds:
    def test_render_report_summarizes_them_generically(self):
        extra = [
            {"seq": 5, "ts": 7.0, "event": "job_submitted", "job": "j"},
            {"seq": 6, "ts": 8.0, "event": "job_submitted", "job": "k"},
            {"seq": 7, "ts": 9.0, "event": "telemetry_v9", "x": 1},
        ]
        report = render_report(run_events(extra))
        assert "status: ok" in report
        assert "other events: job_submitted=2, telemetry_v9=1" in report

    def test_known_only_journal_has_no_other_line(self):
        assert "other events" not in render_report(run_events())

    def test_events_without_a_kind_do_not_crash(self):
        report = render_report(run_events([{"seq": 9, "ts": 9.0, "x": 1}]))
        assert "other events: ?=1" in report


class TestServeSummary:
    def test_counts_and_sections(self):
        report = render_serve_summary(queue_events())
        assert "== serve queue" in report
        assert "submitted: 3" in report
        assert "done: 2 (1 cache-served)" in report
        assert "dead: 1" in report and "shed: 1" in report
        assert "tenants: alice, bob" in report
        assert "requeues: failed=1, lease-expired=1" in report
        assert "worker seconds: 1.500" in report
        assert "dead letters:" in report
        assert "job-000002 after 4 attempt(s): worker died mid-job" in report

    def test_torn_tail_is_surfaced(self):
        report = render_serve_summary(queue_events(), skipped=1)
        assert "1 torn trailing line skipped" in report

    def test_empty_journal_rejected(self):
        with pytest.raises(MonitorError):
            render_serve_summary([])
