"""Tests for the metric store."""

import numpy as np
import pytest

from repro.common.errors import MonitorError
from repro.monitor.metrics import MetricStore


class TestRecording:
    def test_record_and_values(self):
        store = MetricStore()
        store.record("latency", 1.0)
        store.record("latency", 2.0)
        np.testing.assert_array_equal(store.values("latency"), [1.0, 2.0])

    def test_logical_clock_monotone(self):
        store = MetricStore()
        a = store.record("m", 1.0)
        b = store.record("m", 2.0)
        assert b.timestamp > a.timestamp

    def test_explicit_timestamps(self):
        store = MetricStore()
        store.record("m", 1.0, timestamp=100.0)
        sample = store.record("m", 2.0)
        assert sample.timestamp > 100.0

    def test_label_filtering(self):
        store = MetricStore()
        store.record("time", 1.0, labels={"node": "n0"})
        store.record("time", 2.0, labels={"node": "n1"})
        store.record("time", 3.0, labels={"node": "n0", "phase": "run"})
        assert store.values("time", {"node": "n0"}).tolist() == [1.0, 3.0]
        assert store.values("time", {"node": "n0", "phase": "run"}).tolist() == [3.0]

    def test_rejects_bad_samples(self):
        store = MetricStore()
        with pytest.raises(MonitorError):
            store.record("", 1.0)
        with pytest.raises(MonitorError):
            store.record("m", float("nan"))

    def test_timer(self):
        store = MetricStore()
        with store.timer("elapsed"):
            sum(range(1000))
        assert store.values("elapsed").size == 1
        assert store.values("elapsed")[0] > 0


class TestSummary:
    def test_summary_statistics(self):
        store = MetricStore()
        for v in (1.0, 2.0, 3.0, 4.0):
            store.record("m", v)
        summary = store.summary("m")
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0 and summary.maximum == 4.0
        assert summary.p50 == pytest.approx(2.5)

    def test_cov(self):
        store = MetricStore()
        for v in (10.0, 10.0, 10.0):
            store.record("m", v)
        assert store.summary("m").cov == 0.0

    def test_single_sample_std_zero(self):
        store = MetricStore()
        store.record("m", 5.0)
        assert store.summary("m").std == 0.0

    def test_missing_series(self):
        with pytest.raises(MonitorError):
            MetricStore().summary("ghost")

    def test_summaries_group_exactly(self):
        store = MetricStore()
        store.record("time", 1.0, labels={"stage": "run"})
        store.record("time", 3.0, labels={"stage": "run"})
        store.record("time", 9.0, labels={"stage": "setup", "host": "n0"})
        store.record("other", 5.0)
        summaries = store.summaries("time")
        assert [(s.metric, dict(s.labels), s.count) for s in summaries] == [
            ("time", {"host": "n0", "stage": "setup"}, 1),
            ("time", {"stage": "run"}, 2),
        ]
        assert summaries[1].mean == pytest.approx(2.0)
        # unlike summary(), an exact group: the setup sample is excluded
        assert store.summary("time", {"stage": "run"}).count == 2
        assert len(store.summaries()) == 3

    def test_summaries_empty_store(self):
        assert MetricStore().summaries() == []


class TestExport:
    def test_to_table(self):
        store = MetricStore()
        store.record("time", 1.5, labels={"node": "n0", "nodes": 4})
        store.record("time", 2.5, labels={"node": "n1", "nodes": 4})
        table = store.to_table("time")
        assert set(table.columns) == {"metric", "timestamp", "node", "nodes", "value"}
        assert table.column("value") == [1.5, 2.5]

    def test_to_table_all_metrics(self):
        store = MetricStore()
        store.record("a", 1.0)
        store.record("b", 2.0)
        assert len(store.to_table()) == 2

    def test_to_table_empty(self):
        with pytest.raises(MonitorError):
            MetricStore().to_table()

    def test_merge(self):
        a = MetricStore()
        b = MetricStore()
        a.record("m", 1.0)
        b.record("m", 2.0)
        a.merge(b)
        assert len(a) == 2
        assert a.metrics() == ["m"]

    def test_merge_pools_colliding_label_series(self):
        """Same (metric, labels) series on both sides: samples pool into
        one series rather than shadowing each other."""
        a = MetricStore()
        b = MetricStore()
        a.record("time", 1.0, labels={"stage": "run"})
        a.record("time", 9.0, labels={"stage": "setup"})
        b.record("time", 2.0, labels={"stage": "run"})
        b.record("time", 3.0, labels={"stage": "run", "host": "n1"})
        a.merge(b)
        merged = a.series("time")
        assert merged[("time", (("stage", "run"),))] == [1.0, 2.0]
        assert merged[("time", (("stage", "setup"),))] == [9.0]
        # the extra label makes a distinct series, not a collision
        assert merged[("time", (("host", "n1"), ("stage", "run")))] == [3.0]
        assert len(a) == 4

    def test_merge_keeps_clock_monotone_across_stores(self):
        a = MetricStore()
        b = MetricStore()
        b.record("m", 1.0, timestamp=50.0)
        a.record("m", 2.0)
        a.merge(b)
        after = a.record("m", 3.0)
        assert after.timestamp > 50.0

    def test_summaries_ordering_is_stable_under_recording_order(self):
        """summaries() sorts by (metric, labels), so two stores fed the
        same samples in different orders summarize identically."""
        forward = MetricStore()
        backward = MetricStore()
        samples = [
            ("zeta", 1.0, {"node": "n1"}),
            ("alpha", 2.0, {"node": "n0"}),
            ("alpha", 4.0, {"node": "n0"}),
            ("alpha", 3.0, None),
        ]
        for metric, value, labels in samples:
            forward.record(metric, value, labels=labels)
        for metric, value, labels in reversed(samples):
            backward.record(metric, value, labels=labels)
        key = lambda s: (s.metric, s.labels, s.count, s.mean)  # noqa: E731
        assert [key(s) for s in forward.summaries()] == [
            key(s) for s in backward.summaries()
        ]
        assert [(s.metric, dict(s.labels)) for s in forward.summaries()] == [
            ("alpha", {}),
            ("alpha", {"node": "n0"}),
            ("zeta", {"node": "n1"}),
        ]

    def test_series_preserves_recording_order_within_a_key(self):
        store = MetricStore()
        for value in (3.0, 1.0, 2.0):
            store.record("m", value, labels={"k": "v"})
        store.record("other", 9.0)
        assert store.series("m") == {("m", (("k", "v"),)): [3.0, 1.0, 2.0]}
        assert list(store.series()) == [
            ("m", (("k", "v"),)),
            ("other", ()),
        ]
