"""Tests for hierarchical tracing spans."""

import threading

import pytest

from repro.common.errors import MonitorError
from repro.monitor.journal import RunJournal, read_journal
from repro.monitor.metrics import MetricStore
from repro.monitor.tracing import (
    SPAN_METRIC,
    NullTracer,
    Tracer,
    activate,
    current_tracer,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestSpans:
    def test_nested_spans_record_parentage(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grand:
                    pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grand.parent_id == child.span_id
        assert [s.name for s in tracer.finished()] == ["root", "child", "grandchild"]

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == b.parent_id == root.span_id
        assert tracer.span_tree() == ["root (ok)", "  a (ok)", "  b (ok)"]

    def test_durations_from_clock(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                pass
        # inner: start=2 end=3; outer: start=1 end=4
        assert inner.duration == pytest.approx(1.0)
        assert tracer.roots()[0].duration == pytest.approx(3.0)

    def test_error_status_propagates_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("kaput")
        span = tracer.finished()[0]
        assert span.status == "error"
        assert "kaput" in span.error

    def test_attributes_mutable_while_open(self):
        tracer = Tracer()
        with tracer.span("s", machine="ec2") as span:
            span.attributes["nodes"] = 4
        assert tracer.finished()[0].attributes == {"machine": "ec2", "nodes": 4}

    def test_empty_name_rejected(self):
        with pytest.raises(MonitorError):
            with Tracer().span(""):
                pass

    def test_thread_spans_are_roots(self):
        tracer = Tracer()
        seen = {}

        def worker():
            with tracer.span("worker") as span:
                seen["parent"] = span.parent_id

        with tracer.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["parent"] is None
        assert len(tracer.roots()) == 2


class TestSinks:
    def test_metrics_sink_records_span_seconds(self):
        store = MetricStore()
        tracer = Tracer(metrics=store, clock=FakeClock())
        with tracer.span("stage"):
            pass
        values = store.values(SPAN_METRIC, {"span": "stage"})
        assert values.tolist() == [1.0]

    def test_journal_sink_emits_start_and_end(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        tracer = Tracer(journal=journal)
        with tracer.span("a", k="v"):
            pass
        journal.close()
        events = read_journal(tmp_path / "j.jsonl")
        assert [e["event"] for e in events] == ["span_start", "span_end"]
        assert events[0]["attributes"] == {"k": "v"}
        assert events[1]["status"] == "ok"


class TestAmbient:
    def test_default_is_null_tracer(self):
        tracer = current_tracer()
        assert isinstance(tracer, NullTracer)
        with tracer.span("ignored") as span:
            span.attributes["x"] = 1  # must not blow up
        assert tracer.finished() == []

    def test_activate_installs_and_removes(self):
        tracer = Tracer()
        with activate(tracer):
            assert current_tracer() is tracer
            with current_tracer().span("seen"):
                pass
        assert isinstance(current_tracer(), NullTracer)
        assert [s.name for s in tracer.finished()] == ["seen"]

    def test_activate_nests(self):
        outer, inner = Tracer(), Tracer()
        with activate(outer):
            with activate(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer
