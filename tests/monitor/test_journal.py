"""Tests for the run journal and its report renderer."""

from pathlib import Path

import pytest

from repro.common.errors import MonitorError
from repro.monitor.journal import RunJournal, read_journal
from repro.monitor.report import (
    critical_path,
    render_report,
    spans_from_events,
    stage_table,
)
from repro.monitor.tracing import Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path, clock=FakeClock()) as journal:
            journal.event("run_start", experiment="myexp")
            journal.event("metric", metric="m", value=1.5, labels={"a": "b"})
            journal.event("run_end", status="ok")
        events = read_journal(path)
        assert [e["event"] for e in events] == ["run_start", "metric", "run_end"]
        assert [e["seq"] for e in events] == [1, 2, 3]
        assert events[1]["labels"] == {"a": "b"}

    def test_fresh_truncates_previous_run(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as journal:
            journal.event("run_start", experiment="one")
        with RunJournal(path) as journal:
            journal.event("run_start", experiment="two")
        events = read_journal(path)
        assert len(events) == 1 and events[0]["experiment"] == "two"

    def test_append_mode(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as journal:
            journal.event("run_start")
        with RunJournal(path, fresh=False) as journal:
            journal.event("run_end", status="ok")
        assert len(read_journal(path)) == 2

    def test_non_jsonable_values_coerced(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as journal:
            journal.event(
                "metric", path=Path("/tmp/x"), tags=("a", "b"), obj=object()
            )
        event = read_journal(path)[0]
        assert event["path"] == "/tmp/x"
        assert event["tags"] == ["a", "b"]
        assert isinstance(event["obj"], str)

    def test_write_after_close_rejected(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.close()
        with pytest.raises(MonitorError):
            journal.event("run_end")

    def test_read_missing_or_corrupt(self, tmp_path):
        with pytest.raises(MonitorError):
            read_journal(tmp_path / "ghost.jsonl")
        # Garbage *before* the tail means the file was edited: strict.
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"event": "ok"}\nnot json\n{"event": "late"}\n')
        with pytest.raises(MonitorError):
            read_journal(bad)

    def test_torn_trailing_line_skipped(self, tmp_path):
        from repro.monitor.journal import load_journal

        torn = tmp_path / "torn.jsonl"
        torn.write_text('{"event": "ok"}\n{"event": "run_e')
        with pytest.warns(UserWarning, match="torn trailing"):
            events, skipped = load_journal(torn)
        assert [e["event"] for e in events] == ["ok"]
        assert skipped == 1
        with pytest.warns(UserWarning):
            assert read_journal(torn) == events


def _traced_journal(tmp_path) -> list[dict]:
    """write -> parse: a realistic journal from a traced fake run."""
    path = tmp_path / "journal.jsonl"
    journal = RunJournal(path)
    tracer = Tracer(journal=journal, clock=FakeClock())
    journal.event("run_start", experiment="myexp")
    with tracer.span("pipeline/run/myexp"):
        with tracer.span("setup"):
            pass
        with tracer.span("run"):
            with tracer.span("runner/torpor-variability"):
                pass
        with tracer.span("validate"):
            pass
    journal.event("aver_verdict", assertion="expect x > 1", passed=True)
    journal.event("run_end", status="ok", duration_s=9.0)
    journal.close()
    return read_journal(path)


class TestReport:
    def test_spans_from_events_rebuilds_tree(self, tmp_path):
        roots = spans_from_events(_traced_journal(tmp_path))
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "pipeline/run/myexp"
        assert [c.name for c in root.children] == ["setup", "run", "validate"]
        assert root.children[1].children[0].name == "runner/torpor-variability"

    def test_open_span_survives_crash(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(path)
        journal.event("span_start", span_id=1, name="run")
        journal.close()  # no span_end: the run died here
        roots = spans_from_events(read_journal(path))
        assert roots[0].status == "open"

    def test_stage_table_shares_sum_to_one(self, tmp_path):
        table = stage_table(_traced_journal(tmp_path))
        assert table.column("stage") == ["setup", "run", "validate"]
        assert sum(table.column("share")) < 1.0 + 1e-9

    def test_critical_path_follows_slowest_child(self, tmp_path):
        path = [s.name for s in critical_path(_traced_journal(tmp_path))]
        # run (4 ticks) dominates setup/validate (2 ticks each)
        assert path == ["pipeline/run/myexp", "run", "runner/torpor-variability"]

    def test_render_report_contents(self, tmp_path):
        report = render_report(_traced_journal(tmp_path))
        assert "run journal: myexp" in report
        assert "status: ok" in report
        assert "critical path:" in report
        assert "validations: 1 passed, 0 failed" in report
        for stage in ("setup", "run", "validate"):
            assert stage in report

    def test_render_empty_journal_rejected(self):
        with pytest.raises(MonitorError):
            render_report([])
