"""Every module in the package imports cleanly and exports what it says."""

import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    out = []
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        out.append(module.name)
    return sorted(out)


@pytest.mark.parametrize("name", _all_modules())
def test_module_imports(name):
    module = importlib.import_module(name)
    for exported in getattr(module, "__all__", []):
        assert hasattr(module, exported), f"{name}.__all__ lists missing {exported!r}"


def test_package_version():
    assert repro.__version__ == "1.0.0"


def test_every_public_module_has_docstring():
    for name in _all_modules():
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"
