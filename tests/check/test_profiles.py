"""Commit-attached profiles: validation, merging, durable history."""

import json

import pytest

from repro.check.profiles import (
    PROFILE_FORMAT_VERSION,
    Profile,
    ProfileHistory,
    harvest_profile,
)
from repro.common.errors import CheckError
from repro.monitor.metrics import MetricStore


class TestProfile:
    def test_validation(self):
        with pytest.raises(CheckError):
            Profile(commit="")
        with pytest.raises(CheckError):
            Profile(commit="c", series={"": [1.0]})
        with pytest.raises(CheckError):
            Profile(commit="c", series={"k": ["oops"]})

    def test_merge_concatenates_shared_series(self):
        a = Profile("c", series={"x": [1.0, 2.0]}, meta={"run": 1})
        b = Profile("c", series={"x": [3.0], "y": [9.0]}, meta={"run": 2})
        merged = a.merged(b)
        assert merged.series == {"x": [1.0, 2.0, 3.0], "y": [9.0]}
        assert merged.meta == {"run": 2}
        # inputs untouched
        assert a.series == {"x": [1.0, 2.0]}

    def test_merge_rejects_different_commits(self):
        with pytest.raises(CheckError):
            Profile("c1").merged(Profile("c2"))

    def test_json_round_trip(self):
        profile = Profile(
            "abc123", series={"e/stage/run": [1.5, 2.5]}, meta={"backend": "serial"}
        )
        payload = profile.to_json()
        assert payload["version"] == PROFILE_FORMAT_VERSION
        assert Profile.from_json(payload) == profile

    def test_unsupported_version_rejected(self):
        with pytest.raises(CheckError):
            Profile.from_json({"version": 99, "commit": "c"})


class TestHarvest:
    def test_stage_seconds_become_experiment_scoped_keys(self):
        store = MetricStore()
        for value in (1.0, 1.1, 0.9):
            store.record(
                "popper.stage_seconds",
                value,
                labels={"experiment": "one", "stage": "run"},
            )
        store.record("custom.count", 7.0, labels={"phase": "a"})
        store.record("bare", 3.0)
        profile = harvest_profile("c1", store=store)
        assert profile.series["one/stage/run"] == [1.0, 1.1, 0.9]
        assert profile.series["custom.count{phase=a}"] == [7.0]
        assert profile.series["bare"] == [3.0]

    def test_run_start_event_contributes_meta(self):
        events = [
            {"event": "run_start", "backend": "process", "workers": 4},
            {"event": "metric", "name": "ignored"},
        ]
        profile = harvest_profile("c1", events=events, meta={"experiment": "one"})
        assert profile.meta["backend"] == "process"
        assert profile.meta["workers"] == 4
        assert profile.meta["experiment"] == "one"


class TestProfileHistory:
    def test_attach_get_require(self, tmp_path):
        history = ProfileHistory(tmp_path)
        assert history.get("c1") is None
        with pytest.raises(CheckError, match="no profile attached"):
            history.require("c1")
        path = history.attach(Profile("c1", series={"x": [1.0, 2.0, 3.0]}))
        assert path.is_file()
        assert history.require("c1").series == {"x": [1.0, 2.0, 3.0]}

    def test_reattach_merges_samples(self, tmp_path):
        history = ProfileHistory(tmp_path)
        history.attach(Profile("c1", series={"x": [1.0]}))
        history.attach(Profile("c1", series={"x": [2.0]}))
        assert history.require("c1").series == {"x": [1.0, 2.0]}
        # the index journal saw both attaches; commits() deduplicates
        assert history.commits() == ["c1"]

    def test_commits_in_first_attach_order(self, tmp_path):
        history = ProfileHistory(tmp_path)
        for commit in ("c-new", "c-old", "c-mid"):
            history.attach(Profile(commit, series={"x": [1.0]}))
        assert history.commits() == ["c-new", "c-old", "c-mid"]

    def test_torn_index_tail_is_skipped(self, tmp_path):
        history = ProfileHistory(tmp_path)
        history.attach(Profile("c1", series={"x": [1.0]}))
        with open(history.index_path, "a", encoding="utf-8") as handle:
            handle.write('{"commit": "c-torn", "ser')  # crash mid-append
        assert history.commits() == ["c1"]

    def test_profile_file_without_index_line_still_listed(self, tmp_path):
        history = ProfileHistory(tmp_path)
        history.attach(Profile("c1", series={"x": [1.0]}))
        orphan = Profile("c-orphan", series={"x": [2.0]})
        history._path_for("c-orphan").write_text(
            json.dumps(orphan.to_json()), encoding="utf-8"
        )
        assert history.commits() == ["c1", "c-orphan"]

    def test_unreadable_profile_errors(self, tmp_path):
        history = ProfileHistory(tmp_path)
        history.attach(Profile("c1", series={"x": [1.0]}))
        history._path_for("c1").write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckError, match="unreadable profile"):
            history.get("c1")

    def test_path_traversal_rejected(self, tmp_path):
        history = ProfileHistory(tmp_path)
        for bad in ("", "../escape", ".hidden"):
            with pytest.raises(CheckError):
                history._path_for(bad)

    def test_baseline_pools_newest_window(self, tmp_path):
        history = ProfileHistory(tmp_path)
        for i in range(4):
            history.attach(Profile(f"c{i}", series={"x": [float(i)]}))
        # oldest-first candidate list; window 2 pools c3 then c2
        baseline = history.baseline_for(["c0", "c1", "c2", "c3"], window=2)
        assert baseline.commit == "baseline"
        assert sorted(baseline.series["x"]) == [2.0, 3.0]

    def test_baseline_skips_unprofiled_commits(self, tmp_path):
        history = ProfileHistory(tmp_path)
        history.attach(Profile("c0", series={"x": [5.0]}))
        baseline = history.baseline_for(["c0", "c-unprofiled"], window=3)
        assert baseline.series["x"] == [5.0]

    def test_baseline_none_when_nothing_profiled(self, tmp_path):
        history = ProfileHistory(tmp_path)
        assert history.baseline_for(["c0", "c1"]) is None
        with pytest.raises(CheckError):
            history.baseline_for(["c0"], window=0)
