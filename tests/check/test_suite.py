"""The detector suite: batching, UNKNOWN fallbacks, consumer helpers."""

import pytest

from repro.check.detectors import PerformanceChange
from repro.check.suite import DetectorSuite, default_suite
from repro.common.errors import CheckError
from repro.common.rng import derive_rng


def noisy(mean, n=12, label="x"):
    rng = derive_rng(9, "check-suite", label, str(mean))
    return list(mean * (1.0 + 0.03 * rng.standard_normal(n)))


def test_compare_samples_runs_every_detector():
    suite = default_suite()
    verdicts = suite.compare_samples(noisy(10), noisy(13, label="slow"), metric="m")
    assert [v.detector for v in verdicts] == [d.name for d in suite.detectors]
    assert all(v.metric == "m" for v in verdicts)
    assert DetectorSuite.regressed(verdicts)


def test_short_samples_become_unknown_not_an_exception():
    verdicts = default_suite().compare_samples([1.0], [2.0], metric="tiny")
    assert all(v.change is PerformanceChange.UNKNOWN for v in verdicts)
    assert all("samples" in v.detail for v in verdicts)


def test_compare_series_covers_shared_and_one_sided_keys():
    suite = default_suite()
    baseline = {"a": noisy(10, label="a0"), "only-base": noisy(5)}
    current = {"a": noisy(10, label="a1"), "only-curr": noisy(5)}
    verdicts = suite.compare_series(baseline, current)
    by_metric = {}
    for v in verdicts:
        by_metric.setdefault(v.metric, []).append(v)
    assert len(by_metric["a"]) == len(suite.detectors)
    (base_only,) = by_metric["only-base"]
    assert base_only.change is PerformanceChange.UNKNOWN
    assert "baseline" in base_only.detail
    (curr_only,) = by_metric["only-curr"]
    assert "current" in curr_only.detail


def test_regressed_helper_needs_a_firm_verdict():
    maybe_only = default_suite().compare_samples(
        noisy(10, label="m0"), noisy(10.7, label="m1")
    )
    assert not DetectorSuite.regressed(
        [v for v in maybe_only if not v.regressed]
    )


def test_to_table_round_trips_verdict_fields():
    verdicts = default_suite().compare_samples(
        noisy(10, label="t0"), noisy(13, label="t1"), metric="m"
    )
    table = DetectorSuite.to_table(verdicts)
    assert table.columns[:3] == ["metric", "detector", "change"]
    assert len(table) == len(verdicts)
    assert {row["change"] for row in table} <= {c.value for c in PerformanceChange}
    text = table.to_text()
    assert text.splitlines()[0].startswith("metric")


def test_suite_construction_validation():
    with pytest.raises(CheckError):
        DetectorSuite([])
    detector = default_suite().detectors[0]
    with pytest.raises(CheckError):
        DetectorSuite([detector, detector])
