"""The ``popper perf`` subcommand over commit-attached profiles."""

import pytest

from repro.check.profiles import Profile
from repro.common.rng import derive_rng
from repro.core.cli import main
from repro.core.repo import PopperRepository


def noisy(mean, n=10, label="x"):
    rng = derive_rng(17, "cli-perf", label, str(mean))
    return [float(v) for v in mean * (1.0 + 0.03 * rng.standard_normal(n))]


@pytest.fixture
def repo(tmp_path):
    root = tmp_path / "perf-repo"
    root.mkdir()
    assert main(["-C", str(root), "init"]) == 0
    return PopperRepository.open(root)


def second_commit(repo):
    (repo.root / "note.txt").write_text("tweak\n")
    repo.vcs.add_all()
    return repo.vcs.commit("tweak")


def attach(repo, commit, mean, label):
    repo.profile_history.attach(
        Profile(
            commit,
            series={"one/results/runtime_s": noisy(mean, label=label)},
        )
    )


class TestPopperPerf:
    def test_clean_pair_exits_zero(self, repo, capsys):
        old = repo.vcs.head_commit()
        attach(repo, old, 10.0, "base")
        new = second_commit(repo)
        attach(repo, new, 10.0, "same")
        code = main(["-C", str(repo.root), "perf", old[:12], new[:12]])
        out = capsys.readouterr().out
        assert code == 0
        assert "no degradation detected" in out
        assert "(1 commit apart)" in out

    def test_degraded_pair_exits_one_with_verdict_table(self, repo, capsys):
        old = repo.vcs.head_commit()
        attach(repo, old, 10.0, "base")
        new = second_commit(repo)
        attach(repo, new, 14.0, "slow")
        code = main(["-C", str(repo.root), "perf", old[:12], "HEAD"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DEGRADATION in 1 metric(s): one/results/runtime_s" in out
        # all four detectors appear in the table
        for name in ("average-amount", "best-model", "integral",
                     "exclusive-time-outliers"):
            assert name in out

    def test_all_verdicts_shows_quiet_rows(self, repo, capsys):
        old = repo.vcs.head_commit()
        attach(repo, old, 10.0, "base")
        new = second_commit(repo)
        attach(repo, new, 10.0, "same")
        code = main(
            ["-C", str(repo.root), "perf", old[:12], "HEAD", "--all-verdicts"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "no-change" in out

    def test_unknown_revision_is_a_usage_error(self, repo, capsys):
        code = main(["-C", str(repo.root), "perf", "deadbeef"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown revision 'deadbeef'" in err

    def test_unprofiled_commit_names_profiled_ones(self, repo, capsys):
        old = repo.vcs.head_commit()
        attach(repo, old, 10.0, "base")
        new = second_commit(repo)
        code = main(["-C", str(repo.root), "perf", old[:12], new[:12]])
        err = capsys.readouterr().err
        assert code == 2
        assert "no profile attached" in err
        assert old[:12] in err  # the hint lists what IS profiled
