"""Each detector judged on synthetic degrading / noisy / improving
histories — the acceptance criterion for the ``repro.check`` suite."""

import numpy as np
import pytest

from repro.check.detectors import (
    AverageAmountDetector,
    BestModelDetector,
    Degradation,
    Detector,
    ExclusiveTimeOutliersDetector,
    IntegralDetector,
    PerformanceChange,
    default_detectors,
)
from repro.common.errors import CheckError
from repro.common.rng import derive_rng


def noisy(mean, n=12, cov=0.03, label="x"):
    """A stationary series around *mean* with mild multiplicative noise."""
    rng = derive_rng(7, "check-detectors", label, str(mean))
    return mean * (1.0 + cov * rng.standard_normal(n))


DETECTORS = [
    AverageAmountDetector,
    BestModelDetector,
    IntegralDetector,
    ExclusiveTimeOutliersDetector,
]


@pytest.mark.parametrize("cls", DETECTORS)
class TestEveryDetector:
    def test_satisfies_protocol(self, cls):
        assert isinstance(cls(), Detector)

    def test_degrading_history_is_flagged(self, cls):
        """A 40 % slowdown must at least raise a maybe on every detector."""
        verdict = cls(threshold=0.10).detect(
            noisy(10.0, label="base"), noisy(14.0, label="slow"), metric="m"
        )
        assert verdict.suspicious
        assert verdict.rate > 0.2
        assert verdict.metric == "m"
        assert verdict.detector == cls.name

    def test_noisy_history_is_clean(self, cls):
        """Identical distributions must never be a firm degradation."""
        verdict = cls(threshold=0.10).detect(
            noisy(10.0, label="a"), noisy(10.0, label="b")
        )
        assert not verdict.regressed

    def test_improving_history_is_not_a_degradation(self, cls):
        verdict = cls(threshold=0.10).detect(
            noisy(10.0, label="before"), noisy(6.5, label="after")
        )
        assert verdict.change in (
            PerformanceChange.OPTIMIZATION,
            PerformanceChange.MAYBE_OPTIMIZATION,
            PerformanceChange.NO_CHANGE,
        )
        assert not verdict.suspicious

    def test_too_few_samples_raise(self, cls):
        with pytest.raises(CheckError):
            cls(min_samples=3).detect([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_nonpositive_samples_raise(self, cls):
        with pytest.raises(CheckError):
            cls().detect([1.0, 0.0, 2.0], [1.0, 2.0, 3.0])

    def test_nonfinite_samples_raise(self, cls):
        with pytest.raises(CheckError):
            cls().detect([1.0, float("nan"), 2.0], [1.0, 2.0, 3.0])

    def test_parameter_validation(self, cls):
        with pytest.raises(CheckError):
            cls(threshold=0.0)
        with pytest.raises(CheckError):
            cls(min_samples=1)

    def test_confidence_in_unit_interval(self, cls):
        for candidate_mean in (10.0, 11.0, 14.0):
            verdict = cls().detect(
                noisy(10.0, label="conf-b"),
                noisy(candidate_mean, label=f"conf-{candidate_mean}"),
            )
            assert 0.0 <= verdict.confidence <= 1.0


class TestAverageAmount:
    def test_firm_needs_effect_and_significance(self):
        """The historical gate contract: threshold AND Mann-Whitney."""
        det = AverageAmountDetector(threshold=0.10)
        firm = det.detect(noisy(10.0, label="g1"), noisy(13.0, label="g2"))
        assert firm.change is PerformanceChange.DEGRADATION
        assert firm.confidence_kind == "p_value"
        assert firm.confidence > 0.9

    def test_small_shift_below_threshold_passes(self):
        det = AverageAmountDetector(threshold=0.10)
        verdict = det.detect(noisy(10.0, label="s1"), noisy(10.3, label="s2"))
        assert not verdict.regressed

    def test_zero_variance_decided_by_effect(self):
        det = AverageAmountDetector(threshold=0.10)
        assert det.detect([10.0] * 5, [14.0] * 5).regressed
        assert not det.detect([10.0] * 5, [10.0] * 5).regressed
        improved = det.detect([10.0] * 5, [6.0] * 5)
        assert improved.change is PerformanceChange.OPTIMIZATION

    def test_lower_is_worse_mode(self):
        det = AverageAmountDetector(threshold=0.10, higher_is_worse=False)
        verdict = det.detect(
            noisy(100.0, label="tp1"), noisy(70.0, label="tp2")
        )
        assert verdict.regressed

    def test_alpha_validation(self):
        with pytest.raises(CheckError):
            AverageAmountDetector(alpha=2.0)


class TestBestModel:
    def test_reports_model_kinds(self):
        verdict = BestModelDetector().detect(
            noisy(10.0, label="k1"), noisy(10.0, label="k2")
        )
        assert verdict.confidence_kind == "r_squared"
        assert "->" in verdict.detail

    def test_flat_series_turning_linear_is_flagged(self):
        """A shape change heading upward is at least a maybe, even when
        the medians still overlap."""
        baseline = noisy(10.0, n=16, label="flat")
        drift = 10.0 + 0.35 * np.arange(16) + noisy(0.001, n=16, label="eps")
        verdict = BestModelDetector(threshold=0.10).detect(baseline, drift)
        assert verdict.suspicious


class TestIntegral:
    def test_confidence_scales_with_effect(self):
        det = IntegralDetector(threshold=0.10)
        small = det.detect(noisy(10.0, label="i1"), noisy(11.0, label="i2"))
        large = det.detect(noisy(10.0, label="i1"), noisy(14.0, label="i3"))
        assert large.confidence > small.confidence
        assert large.confidence_kind == "integral_ratio"


class TestExclusiveTimeOutliers:
    def test_tail_regression_caught(self):
        """Half the candidate samples stall: medians barely move, but the
        fence detector fires."""
        baseline = noisy(10.0, n=12, cov=0.01, label="t1")
        tail = list(noisy(10.0, n=6, cov=0.01, label="t2")) + [30.0] * 6
        verdict = ExclusiveTimeOutliersDetector().detect(baseline, tail)
        assert verdict.regressed
        assert verdict.confidence_kind == "outlier_fraction"
        assert verdict.confidence >= 0.5

    def test_quarter_escape_is_a_maybe(self):
        baseline = noisy(10.0, n=12, cov=0.01, label="q1")
        tail = list(noisy(10.0, n=9, cov=0.01, label="q2")) + [30.0] * 3
        verdict = ExclusiveTimeOutliersDetector().detect(baseline, tail)
        assert verdict.change is PerformanceChange.MAYBE_DEGRADATION

    def test_zero_iqr_baseline_uses_relative_margin(self):
        verdict = ExclusiveTimeOutliersDetector(threshold=0.10).detect(
            [10.0] * 6, [11.0] * 6
        )
        assert verdict.regressed

    def test_fence_parameter_validation(self):
        with pytest.raises(CheckError):
            ExclusiveTimeOutliersDetector(fence=0.0)
        with pytest.raises(CheckError):
            ExclusiveTimeOutliersDetector(maybe_fraction=0.8, firm_fraction=0.5)


class TestDegradationVerdict:
    def test_str_names_metric_detector_and_confidence(self):
        verdict = Degradation(
            metric="one/stage/run",
            detector="average-amount",
            change=PerformanceChange.DEGRADATION,
            rate=0.31,
            confidence=0.97,
            confidence_kind="p_value",
        )
        text = str(verdict)
        assert "one/stage/run" in text
        assert "average-amount" in text
        assert "+31.0%" in text
        assert "0.97" in text

    def test_properties(self):
        firm = Degradation("m", "d", PerformanceChange.DEGRADATION)
        maybe = Degradation("m", "d", PerformanceChange.MAYBE_DEGRADATION)
        clean = Degradation("m", "d", PerformanceChange.NO_CHANGE)
        assert firm.regressed and firm.suspicious
        assert not maybe.regressed and maybe.suspicious
        assert not clean.regressed and not clean.suspicious


def test_default_detectors_is_the_four_battery():
    battery = default_detectors(threshold=0.2)
    assert [d.name for d in battery] == [
        "average-amount",
        "best-model",
        "integral",
        "exclusive-time-outliers",
    ]
    assert all(d.threshold == 0.2 for d in battery)
