"""Aver's ``no_regression(metric)`` bound to a profile baseline."""

import pytest

from repro.aver.evaluator import check
from repro.check.context import RegressionContext
from repro.check.profiles import Profile
from repro.common.errors import AverEvalError
from repro.common.rng import derive_rng
from repro.common.tables import MetricsTable


def noisy(mean, n=10, label="x"):
    rng = derive_rng(13, "check-context", label, str(mean))
    return [float(v) for v in mean * (1.0 + 0.03 * rng.standard_normal(n))]


def results_table(values):
    table = MetricsTable(["run", "runtime_s"])
    for i, value in enumerate(values):
        table.append({"run": i, "runtime_s": value})
    return table


def baseline_profile(values, key="one/results/runtime_s"):
    return Profile("baseline", series={key: values})


class TestNoRegressionBuiltin:
    def test_clean_run_passes(self):
        context = RegressionContext(
            baseline_profile(noisy(10.0, label="b")), experiment="one"
        )
        result = check(
            "expect no_regression(runtime_s)",
            results_table(noisy(10.0, label="c")),
            context=context.functions(),
        )
        assert result.passed
        assert context.verdicts  # the suite actually ran

    def test_firm_degradation_fails_the_assertion(self):
        context = RegressionContext(
            baseline_profile(noisy(10.0, label="b2")), experiment="one"
        )
        result = check(
            "expect no_regression(runtime_s)",
            results_table(noisy(14.0, label="slow")),
            context=context.functions(),
        )
        assert not result.passed
        assert any(v.regressed for v in context.verdicts)

    def test_no_baseline_is_a_vacuous_pass(self):
        context = RegressionContext(None, experiment="one")
        result = check(
            "expect no_regression(runtime_s)",
            results_table(noisy(10.0, label="v")),
            context=context.functions(),
        )
        assert result.passed
        assert context.verdicts == []
        assert any("vacuous" in note for note in context.notes)

    def test_metric_name_as_string_argument(self):
        context = RegressionContext(
            baseline_profile(noisy(10.0, label="b3")), experiment="one"
        )
        result = check(
            'expect no_regression("runtime_s")',
            results_table(noisy(10.0, label="c3")),
            context=context.functions(),
        )
        assert result.passed

    def test_exact_series_key_wins_over_scoped(self):
        profile = Profile(
            "baseline",
            series={
                "runtime_s": noisy(10.0, label="exact"),
                "one/results/runtime_s": noisy(99.0, label="scoped"),
            },
        )
        context = RegressionContext(profile, experiment="one")
        result = check(
            "expect no_regression(runtime_s)",
            results_table(noisy(10.0, label="c4")),
            context=context.functions(),
        )
        assert result.passed  # judged against the exact key, not the 99s

    def test_suffix_match_pools_across_experiments(self):
        profile = Profile(
            "baseline",
            series={"other/results/runtime_s": noisy(10.0, label="pool")},
        )
        context = RegressionContext(profile, experiment="one")
        result = check(
            "expect no_regression(runtime_s)",
            results_table(noisy(14.0, label="c5")),
            context=context.functions(),
        )
        assert not result.passed

    def test_metric_missing_from_baseline_is_vacuous_with_note(self):
        context = RegressionContext(
            baseline_profile(noisy(10.0, label="b6"), key="one/results/other"),
            experiment="one",
        )
        result = check(
            "expect no_regression(runtime_s)",
            results_table(noisy(10.0, label="c6")),
            context=context.functions(),
        )
        assert result.passed
        assert any("vacuous" in note for note in context.notes)

    def test_non_numeric_column_errors_cleanly(self):
        table = MetricsTable(["name", "runtime_s"])
        table.append({"name": "a", "runtime_s": 1.0})
        table.append({"name": "b", "runtime_s": 2.0})
        table.append({"name": "c", "runtime_s": 3.0})
        context = RegressionContext(
            baseline_profile(noisy(10.0, label="b7")), experiment="one"
        )
        result = check(
            "expect no_regression(name)", table, context=context.functions()
        )
        assert not result.passed
        assert "not numeric" in result.groups[0].detail

    def test_wrong_arity_rejected(self):
        context = RegressionContext(None)
        with pytest.raises(AverEvalError):
            context._no_regression("no_regression", (), None)


def test_standalone_no_regression_explains_missing_context():
    """Without a pipeline run there is no history; the stateless FUNCTIONS
    entry must say so instead of silently passing."""
    result = check(
        "expect no_regression(runtime_s)", results_table(noisy(10.0, label="s"))
    )
    assert not result.passed
    assert "context" in result.groups[0].detail
