"""The ``--perf-smoke`` self-check must catch its own injected slowdown."""

from repro.check.smoke import perf_smoke


def test_perf_smoke_passes_and_summarizes():
    summary = perf_smoke()
    assert summary.startswith("perf smoke ok")
    assert "stable metric clean" in summary


def test_perf_smoke_writes_real_profiles(tmp_path):
    perf_smoke(root=tmp_path)
    assert (tmp_path / "profiles" / "smoke-base.json").is_file()
    assert (tmp_path / "profiles" / "smoke-candidate.json").is_file()
