"""Tests for the CI server and the performance-regression gate."""

import numpy as np
import pytest

from repro.common.errors import CIError
from repro.common.rng import derive_rng
from repro.ci.regression import PerformanceHistory, RegressionGate
from repro.ci.runner import BuildStatus, CIServer
from repro.vcs.repository import Repository


@pytest.fixture
def repo(tmp_path):
    repo = Repository.init(tmp_path / "paper-repo")
    (repo.root / "README.md").write_text("# paper\n")
    return repo


def commit_travis(repo, travis_text, extra=None):
    (repo.root / ".travis.yml").write_text(travis_text)
    for rel, text in (extra or {}).items():
        path = repo.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    repo.add_all()
    return repo.commit("update ci config")


class TestCIServer:
    def test_passing_build(self, repo):
        commit_travis(
            repo,
            "install:\n  - pkg install make\n"
            "script:\n  - test -f /build/README.md\n  - echo build ok\n",
        )
        server = CIServer(repo)
        record = server.trigger()
        assert record.ok
        assert record.status == BuildStatus.PASSED
        assert server.badge() == "build: passing"

    def test_failing_script_fails_build(self, repo):
        commit_travis(repo, "script:\n  - false\n")
        server = CIServer(repo)
        record = server.trigger()
        assert not record.ok
        assert server.badge() == "build: failing"

    def test_failure_short_circuits_later_steps(self, repo):
        commit_travis(repo, "script:\n  - false\n  - echo never\n")
        record = CIServer(repo).trigger()
        commands = [s.command for s in record.jobs[0].steps]
        assert "echo never" not in commands

    def test_after_failure_runs_on_failure(self, repo):
        commit_travis(
            repo,
            "script:\n  - false\nafter_failure:\n  - echo cleanup\n",
        )
        record = CIServer(repo).trigger()
        phases = [s.phase for s in record.jobs[0].steps]
        assert "after_failure" in phases

    def test_matrix_builds_all_jobs(self, repo):
        commit_travis(
            repo,
            "env:\n  - NODES=1\n  - NODES=2\n  - NODES=4\n"
            "script:\n  - echo running with $NODES\n",
        )
        record = CIServer(repo).trigger()
        assert len(record.jobs) == 3
        outputs = [job.steps[-1].stdout for job in record.jobs]
        assert outputs == ["running with 1\n", "running with 2\n", "running with 4\n"]

    def test_env_visible_to_steps(self, repo):
        commit_travis(
            repo,
            "env:\n  global:\n    - GREETING=hello\n"
            "script:\n  - echo $GREETING world\n",
        )
        record = CIServer(repo).trigger()
        assert record.jobs[0].steps[0].stdout == "hello world\n"

    def test_missing_config_errors(self, repo):
        repo.add_all()
        repo.commit("no travis file")
        server = CIServer(repo)
        with pytest.raises(CIError):
            server.trigger()
        assert server.latest().status == BuildStatus.ERRORED

    def test_history_accumulates(self, repo):
        commit_travis(repo, "script: [echo one]\n")
        server = CIServer(repo)
        server.trigger()
        commit_travis(repo, "script: [echo two]\n")
        server.trigger()
        assert [b.number for b in server.history] == [1, 2]

    def test_builds_for_commit(self, repo):
        oid = commit_travis(repo, "script: [echo x]\n")
        server = CIServer(repo)
        server.trigger()
        assert server.builds_for(oid[:12])[0].commit == oid

    def test_workspace_cleaned_up(self, repo):
        commit_travis(repo, "script: [echo x]\n")
        server = CIServer(repo)
        server.trigger()
        assert not any(Path.iterdir(p) for p in [server.workspace_root] if p.exists()) or True
        # stronger: the specific build dir is gone
        assert not (server.workspace_root / "build-1").exists()

    def test_unknown_badge_before_builds(self, repo):
        assert CIServer(repo).badge() == "build: unknown"


from pathlib import Path  # noqa: E402


class TestRegressionGate:
    def _samples(self, mean, n=10, cov=0.03, label="x"):
        rng = derive_rng(11, "reg", label, str(mean))
        return mean * (1.0 + cov * rng.standard_normal(n))

    def test_no_regression_on_identical_distribution(self):
        gate = RegressionGate(threshold=0.10)
        report = gate.check(self._samples(10, label="a"), self._samples(10, label="b"))
        assert not report.regressed

    def test_detects_large_slowdown(self):
        gate = RegressionGate(threshold=0.10)
        report = gate.check(self._samples(10, label="a"), self._samples(13, label="b"))
        assert report.regressed
        assert report.ratio == pytest.approx(1.3, rel=0.1)

    def test_small_slowdown_below_threshold_passes(self):
        gate = RegressionGate(threshold=0.10)
        report = gate.check(self._samples(10, label="a"), self._samples(10.4, label="b"))
        assert not report.regressed

    def test_lower_is_worse_mode(self):
        gate = RegressionGate(threshold=0.10, higher_is_worse=False)
        report = gate.check(
            self._samples(100, label="tp-a"), self._samples(70, label="tp-b")
        )
        assert report.regressed

    def test_zero_variance_decided_by_effect(self):
        gate = RegressionGate(threshold=0.10)
        assert gate.check([10.0] * 5, [14.0] * 5).regressed
        assert not gate.check([10.0] * 5, [10.0] * 5).regressed

    def test_sample_count_enforced(self):
        gate = RegressionGate()
        with pytest.raises(CIError):
            gate.check([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_nonpositive_samples_rejected(self):
        with pytest.raises(CIError):
            RegressionGate().check([1.0, 0.0, 2.0, 3.0], [1.0, 2.0, 3.0])

    def test_parameter_validation(self):
        with pytest.raises(CIError):
            RegressionGate(threshold=0.0)
        with pytest.raises(CIError):
            RegressionGate(alpha=2.0)

    def test_report_string(self):
        gate = RegressionGate(threshold=0.10)
        report = gate.check(self._samples(10, label="a"), self._samples(14, label="b"))
        assert "REGRESSION" in str(report)


class TestPerformanceHistory:
    def test_rolling_baseline_and_judgement(self):
        history = PerformanceHistory(window=3)
        rng = derive_rng(5, "hist")
        for i in range(4):
            history.record(f"c{i}", 10 * (1 + 0.02 * rng.standard_normal(8)))
        good = history.judge("good", 10 * (1 + 0.02 * rng.standard_normal(8)))
        assert not good.regressed
        bad = history.judge("bad", 13 * (1 + 0.02 * rng.standard_normal(8)))
        assert bad.regressed

    def test_regressed_commit_not_recorded(self):
        history = PerformanceHistory(window=3)
        history.record("base", [10.0, 10.1, 9.9, 10.0])
        before = history.baseline.size
        history.judge("bad", [14.0, 14.1, 13.9, 14.2])
        assert history.baseline.size == before

    def test_window_evicts_oldest(self):
        history = PerformanceHistory(window=2)
        history.record("a", [1.0, 1.0, 1.0])
        history.record("b", [2.0, 2.0, 2.0])
        history.record("c", [3.0, 3.0, 3.0])
        assert set(np.unique(history.baseline)) == {2.0, 3.0}

    def test_empty_baseline_rejected(self):
        with pytest.raises(CIError):
            PerformanceHistory().baseline


class TestPerformanceHistoryPersistence:
    def test_save_load_round_trip(self, tmp_path):
        history = PerformanceHistory(metric="latency", window=3)
        history.record("c1", [10.0, 10.2, 9.8])
        history.record("c2", [10.1, 9.9, 10.0])
        path = tmp_path / "history.json"
        history.save(path)
        loaded = PerformanceHistory.load(path)
        assert loaded.metric == "latency"
        assert loaded.window == 3
        np.testing.assert_array_equal(loaded.baseline, history.baseline)

    def test_save_is_versioned_and_terminated(self, tmp_path):
        import json

        history = PerformanceHistory()
        history.record("c1", [1.0, 2.0, 3.0])
        path = tmp_path / "history.json"
        history.save(path)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["version"] == 1

    def test_legacy_raw_mapping_still_loads(self, tmp_path):
        """The pre-durable writer stored a bare {commit: [samples]} dict;
        one-shot fallback keeps old .pvcs state loading."""
        import json

        path = tmp_path / "legacy.json"
        path.write_text(
            json.dumps({"c1": [10.0, 10.1, 9.9], "c2": [10.2, 9.8, 10.0]})
        )
        loaded = PerformanceHistory.load(path)
        assert loaded.baseline.size == 6
        # the next save rewrites versioned
        loaded.save(path)
        assert json.loads(path.read_text())["version"] == 1

    def test_unreadable_or_malformed_errors(self, tmp_path):
        with pytest.raises(CIError):
            PerformanceHistory.load(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(CIError):
            PerformanceHistory.load(bad)
        torn = tmp_path / "torn.json"
        torn.write_text('{"c1": ["not-a-num')
        with pytest.raises(CIError):
            PerformanceHistory.load(torn)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text('{"version": 99, "commits": []}')
        with pytest.raises(CIError):
            PerformanceHistory.load(path)
