"""Tests for CI configuration parsing and matrix expansion."""

import pytest

from repro.common.errors import CIError
from repro.ci.config import CIConfig, parse_env_line


class TestParseEnvLine:
    def test_multiple(self):
        assert parse_env_line("A=1 B=two") == {"A": "1", "B": "two"}

    def test_empty_value(self):
        assert parse_env_line("A=") == {"A": ""}

    def test_missing_equals(self):
        with pytest.raises(CIError):
            parse_env_line("JUSTAKEY")


class TestCIConfig:
    def test_minimal(self):
        config = CIConfig.from_yaml("script: make test\n")
        assert config.script == ["make test"]
        assert config.expand_matrix() == [{}]

    def test_full(self):
        config = CIConfig.from_yaml(
            "language: python\n"
            "env:\n"
            "  global:\n"
            "    - MODE=ci\n"
            "  matrix:\n"
            "    - NODES=1\n"
            "    - NODES=2\n"
            "install:\n"
            "  - pkg install make\n"
            "before_script:\n"
            "  - echo before\n"
            "script:\n"
            "  - make test\n"
            "after_script:\n"
            "  - echo done\n"
        )
        jobs = config.expand_matrix()
        assert jobs == [
            {"MODE": "ci", "NODES": "1"},
            {"MODE": "ci", "NODES": "2"},
        ]

    def test_flat_env_list_is_matrix(self):
        config = CIConfig.from_yaml("env:\n  - A=1\n  - A=2\nscript: [t]\n")
        assert len(config.expand_matrix()) == 2

    def test_include_adds_job(self):
        config = CIConfig.from_yaml(
            "env: [A=1]\nmatrix:\n  include:\n    - env: A=9 EXTRA=1\nscript: [t]\n"
        )
        jobs = config.expand_matrix()
        assert {"A": "9", "EXTRA": "1"} in jobs

    def test_exclude_removes_job(self):
        config = CIConfig.from_yaml(
            "env: [A=1, A=2]\nmatrix:\n  exclude:\n    - env: A=2\nscript: [t]\n"
        )
        assert config.expand_matrix() == [{"A": "1"}]

    def test_excluding_everything_rejected(self):
        config = CIConfig.from_yaml(
            "env: [A=1]\nmatrix:\n  exclude:\n    - env: A=1\nscript: [t]\n"
        )
        with pytest.raises(CIError):
            config.expand_matrix()

    def test_script_required(self):
        with pytest.raises(CIError, match="script"):
            CIConfig.from_yaml("language: python\n")

    def test_empty_config_rejected(self):
        with pytest.raises(CIError):
            CIConfig.from_yaml("")

    def test_unknown_keys_rejected(self):
        with pytest.raises(CIError, match="unknown"):
            CIConfig.from_yaml("script: [t]\nsudo: required\n")

    def test_single_string_script(self):
        config = CIConfig.from_yaml("script: single command\n")
        assert config.script == ["single command"]
