"""Tests for stressors, batteries and fingerprint comparison."""

import numpy as np
import pytest

from repro.common.errors import PlatformError
from repro.common.rng import SeedSequenceFactory, derive_rng
from repro.baseliner.fingerprint import BaselineProfile, compare, run_battery
from repro.baseliner.stressors import STRESSORS, get_stressor, run_stressor
from repro.platform.sites import Site, default_sites


@pytest.fixture(scope="module")
def sites():
    return default_sites(seed=42)


@pytest.fixture(scope="module")
def profiles(sites):
    seeds = SeedSequenceFactory(42)
    base = run_battery(sites["lab"].node(0), seeds, runs=3)
    target = run_battery(sites["cloudlab-wisc"].node(0), seeds, runs=3)
    return base, target


class TestStressors:
    def test_catalog_composition(self):
        classes = {s.klass for s in STRESSORS.values()}
        assert {"cpu", "fp", "cache", "memory", "storage"} <= classes
        cpu_count = sum(1 for s in STRESSORS.values() if s.klass == "cpu")
        assert cpu_count >= 7  # the paper's (2.2, 2.3] band has 7 members

    def test_get_stressor(self):
        assert get_stressor("int64").klass == "cpu"
        with pytest.raises(PlatformError):
            get_stressor("quantum")

    def test_rates_positive_and_reproducible(self, sites):
        node = sites["lab"].node(0)
        rng_a = derive_rng(1, "s")
        rng_b = derive_rng(1, "s")
        a = run_stressor(get_stressor("int64"), node, rng_a)
        b = run_stressor(get_stressor("int64"), node, rng_b)
        assert a == b > 0

    def test_faster_machine_higher_rate(self, sites):
        old = sites["lab"].node(0)
        new = sites["cloudlab-wisc"].node(0)
        stressor = get_stressor("int64")
        assert stressor.modeled_time(new) < stressor.modeled_time(old)


class TestBattery:
    def test_profile_covers_battery(self, profiles):
        base, _ = profiles
        assert set(base.rates_dict()) == set(STRESSORS)

    def test_profile_json_round_trip(self, profiles):
        base, _ = profiles
        again = BaselineProfile.from_json(base.to_json())
        assert again.machine == base.machine
        assert again.rates_dict() == pytest.approx(base.rates_dict())

    def test_rate_lookup(self, profiles):
        base, _ = profiles
        assert base.rate("int64") > 0
        with pytest.raises(PlatformError):
            base.rate("ghost")

    def test_battery_deterministic(self, sites):
        node = sites["lab"].node(0)
        a = run_battery(node, SeedSequenceFactory(7), runs=2)
        b = run_battery(node, SeedSequenceFactory(7), runs=2)
        assert a.rates_dict() == b.rates_dict()

    def test_run_count_validated(self, sites):
        with pytest.raises(PlatformError):
            run_battery(sites["lab"].node(0), SeedSequenceFactory(1), runs=0)


class TestSpeedupProfile:
    def test_cpu_class_clusters_in_paper_band(self, profiles):
        """The headline Torpor claim: integer stressors of the new machine
        cluster tightly vs the 2006 Xeon, with the mode in (2.2, 2.3]."""
        base, target = profiles
        speedups = compare(base, target)
        lo, hi = speedups.range_for_class("cpu")
        assert 2.0 < lo and hi < 2.6
        mode_lo, mode_hi, count = speedups.mode_bucket(bin_width=0.1)
        assert (mode_lo, mode_hi) == pytest.approx((2.2, 2.3))
        assert count >= 7

    def test_memory_class_distinct_band(self, profiles):
        base, target = profiles
        speedups = compare(base, target)
        mem_lo, _ = speedups.range_for_class("memory")
        _, cpu_hi = speedups.range_for_class("cpu")
        assert mem_lo > cpu_hi  # memory-bandwidth jump dwarfs ALU jump

    def test_fp_faster_than_int(self, profiles):
        base, target = profiles
        speedups = compare(base, target)
        fp_lo, _ = speedups.range_for_class("fp")
        _, cpu_hi = speedups.range_for_class("cpu")
        assert fp_lo > cpu_hi

    def test_histogram_counts_sum_to_battery(self, profiles):
        base, target = profiles
        speedups = compare(base, target)
        total = sum(c for _, _, c in speedups.histogram(0.1))
        assert total == len(STRESSORS)

    def test_histogram_bin_width_validated(self, profiles):
        base, target = profiles
        with pytest.raises(PlatformError):
            compare(base, target).histogram(0.0)

    def test_table_export(self, profiles):
        base, target = profiles
        table = compare(base, target).to_table()
        assert len(table) == len(STRESSORS)
        assert set(table.column("class")) <= {"cpu", "fp", "cache", "memory", "storage"}

    def test_self_comparison_is_unity(self, profiles):
        base, _ = profiles
        speedups = compare(base, base)
        np.testing.assert_allclose(speedups.values(), 1.0)

    def test_disjoint_profiles_rejected(self):
        a = BaselineProfile(machine="a", rates=(("x", 1.0),))
        b = BaselineProfile(machine="b", rates=(("y", 1.0),))
        with pytest.raises(PlatformError):
            compare(a, b)
