"""The interestingness oracle's classification table."""

from repro.fuzz.oracle import (
    Observation,
    OracleVerdict,
    SEVERITY_BORING,
    SEVERITY_FAILURE,
    SEVERITY_SUSPICIOUS,
    judge,
)


class TestFailures:
    def test_escape_is_failure(self):
        v = judge(Observation(outcome="escape", detail="KeyError: 'x'"))
        assert v.severity == SEVERITY_FAILURE
        assert "escape" in v.kinds
        assert "KeyError" in v.detail

    def test_aver_fail_is_failure(self):
        v = judge(Observation(outcome="validation-failed", aver_passed=False))
        assert v.severity == SEVERITY_FAILURE
        assert "aver-fail" in v.kinds

    def test_doctor_findings_after_clean_run_are_failure(self):
        v = judge(Observation(outcome="ok", doctor_kinds=("torn-jsonl",)))
        assert v.severity == SEVERITY_FAILURE
        assert "doctor" in v.kinds

    def test_unrepaired_crash_debris_is_failure(self):
        v = judge(
            Observation(
                outcome="crash",
                doctor_kinds=("stale-lock",),
                doctor_repaired=False,
            )
        )
        assert v.severity == SEVERITY_FAILURE
        assert "crash-debris" in v.kinds


class TestNonFailures:
    def test_clean_run_is_boring(self):
        v = judge(Observation(outcome="ok", aver_passed=True))
        assert v.severity == SEVERITY_BORING
        assert v.kinds == ("clean",)
        assert not v.interesting

    def test_clean_rejection_is_boring(self):
        # A garbled spec rejected with a ReproError is the toolchain
        # working as designed — never a finding.
        v = judge(Observation(outcome="rejected"))
        assert v.severity == SEVERITY_BORING
        assert "rejected" in v.kinds

    def test_repaired_crash_is_boring(self):
        v = judge(
            Observation(
                outcome="crash",
                doctor_kinds=("torn-jsonl",),
                doctor_repaired=True,
            )
        )
        assert v.severity == SEVERITY_BORING

    def test_degradation_is_suspicious(self):
        v = judge(Observation(outcome="ok", degradations=("degradation",)))
        assert v.severity == SEVERITY_SUSPICIOUS
        assert v.interesting

    def test_non_firm_degradation_ignored(self):
        v = judge(Observation(outcome="ok", degradations=("maybe",)))
        assert v.severity == SEVERITY_BORING


class TestVerdictRecord:
    def test_json_round_trip(self):
        v = judge(Observation(outcome="escape", detail="boom"))
        assert OracleVerdict.from_json(v.to_json()) == v

    def test_compound_failure_lists_every_kind(self):
        v = judge(
            Observation(
                outcome="escape",
                aver_passed=False,
                doctor_kinds=("orphan-temp",),
            )
        )
        assert set(v.kinds) >= {"escape", "aver-fail", "doctor"}
