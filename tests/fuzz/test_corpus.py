"""Corpus storage: runnable variant directories + a durable index."""

import pytest

from repro.common.errors import FuzzError
from repro.fuzz.corpus import Corpus, CorpusEntry
from repro.fuzz.mutators import Mutation
from repro.fuzz.oracle import OracleVerdict
from repro.fuzz.scenario import Scenario


def make_entry(tag="a"):
    scenario = Scenario(
        name="exp",
        files={"vars.yml": f"runner: torpor\ntag: {tag}\n"},
    )
    return CorpusEntry(
        variant=scenario.fingerprint(),
        scenario=scenario,
        chain=(Mutation("vars-widen", {"key": "runs", "factor": 2}),),
        verdict=OracleVerdict(kinds=("aver-fail",), severity="failure"),
        outcome="validation-failed",
        detail="expect speedup > 1000 failed",
        novel=("aver:fail",),
    )


@pytest.fixture
def corpus(tmp_path):
    return Corpus(tmp_path / "fuzz" / "corpus")


class TestRoundTrip:
    def test_add_then_load(self, corpus):
        entry = make_entry()
        corpus.add(entry)
        back = corpus.load(entry.variant)
        assert back.scenario.fingerprint() == entry.scenario.fingerprint()
        assert back.chain == entry.chain
        assert back.verdict == entry.verdict
        assert back.outcome == entry.outcome

    def test_stored_variant_is_runnable_experiment_dir(self, corpus):
        entry = make_entry()
        target = corpus.add(entry)
        assert (target / "experiment" / "vars.yml").is_file()

    def test_add_is_idempotent(self, corpus):
        entry = make_entry()
        corpus.add(entry)
        corpus.add(entry)
        assert len(corpus) == 1

    def test_entries_lists_all(self, corpus):
        corpus.add(make_entry("a"))
        corpus.add(make_entry("b"))
        assert len(corpus.entries()) == 2

    def test_missing_variant_raises_cleanly(self, corpus):
        with pytest.raises(FuzzError):
            corpus.load("0" * 64)


class TestDurability:
    def test_index_records_survive_torn_tail(self, corpus):
        entry = make_entry()
        corpus.add(entry)
        with open(corpus.index_path, "a", encoding="utf-8") as handle:
            handle.write('{"variant": "torn')  # crashed append
        records = corpus.index_records()
        assert len(records) == 1
        assert records[0]["variant"] == entry.variant

    def test_partial_entry_without_meta_is_invisible(self, corpus):
        entry = make_entry()
        target = corpus.add(entry)
        # Simulate a crash between the files and the meta publish.
        (target / "meta.json").unlink()
        assert corpus.variants() == []
        assert len(corpus) == 0

    def test_no_timestamps_in_stored_state(self, corpus):
        # Byte-determinism across campaigns forbids wall-clock leakage.
        entry = make_entry()
        target = corpus.add(entry)
        meta = (target / "meta.json").read_text(encoding="utf-8")
        index = corpus.index_path.read_text(encoding="utf-8")
        for text in (meta, index):
            assert '"ts"' not in text
            assert "time" not in text
