"""ddmin over mutation chains, driven by a stub runner (no sandboxes)."""

from repro.fuzz.executor import ExecutionResult
from repro.fuzz.minimize import minimize
from repro.fuzz.mutators import Mutation
from repro.fuzz.oracle import Observation
from repro.fuzz.scenario import Scenario

SEED = Scenario(
    name="exp",
    files={
        "vars.yml": "runner: torpor\nruns: 3\n",
        "validations.aver": "expect speedup > 1\n",
    },
)

GUILTY = Mutation("aver-rewrite", {"find": "> 1", "replace": "> 1000"})


def innocent(i):
    return Mutation("seed-set", {"value": 100 + i})


class StubRunner:
    """Judges a scenario failing iff the guilty rewrite is present."""

    def __init__(self):
        self.executions = 0

    def run(self, scenario):
        self.executions += 1
        bad = "> 1000" in scenario.files.get("validations.aver", "")
        observation = Observation(
            outcome="validation-failed" if bad else "ok",
            aver_passed=not bad,
        )
        return ExecutionResult(
            variant=scenario.fingerprint(),
            outcome=observation.outcome,
            detail="",
            coverage=set(),
            observation=observation,
        )


class TestDdmin:
    def test_shrinks_to_single_guilty_mutation(self):
        chain = [innocent(0), innocent(1), GUILTY, innocent(2), innocent(3)]
        result = minimize(SEED, chain, StubRunner(), ("aver-fail",))
        assert [m.rule for m in result.chain] == ["aver-rewrite"]
        assert "aver-fail" in result.verdict.kinds

    def test_result_is_one_minimal(self):
        chain = [innocent(0), GUILTY]
        runner = StubRunner()
        result = minimize(SEED, chain, runner, ("aver-fail",))
        assert len(result.chain) == 1
        # Removing the survivor must lose the failure.
        clean = minimize(SEED, [], runner, ("aver-fail",))
        assert "aver-fail" not in clean.verdict.kinds

    def test_verdict_cache_avoids_duplicate_executions(self):
        chain = [innocent(i) for i in range(6)] + [GUILTY]
        runner = StubRunner()
        minimize(SEED, chain, runner, ("aver-fail",))
        # ddmin probes subsets; the cache must keep executions well
        # under the worst-case number of candidate evaluations.
        assert runner.executions <= 2 ** len(chain) / 4

    def test_already_minimal_chain_is_kept(self):
        result = minimize(SEED, [GUILTY], StubRunner(), ("aver-fail",))
        assert result.chain == (GUILTY,)

    def test_minimization_is_deterministic(self):
        chain = [innocent(0), GUILTY, innocent(1)]
        a = minimize(SEED, chain, StubRunner(), ("aver-fail",))
        b = minimize(SEED, chain, StubRunner(), ("aver-fail",))
        assert a.variant == b.variant
        assert a.chain == b.chain
