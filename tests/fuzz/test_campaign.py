"""The campaign loop end-to-end against a real (tiny) repository."""

import pytest

from repro.common import minyaml
from repro.common.errors import FuzzError
from repro.core.repo import PopperRepository
from repro.fuzz import FuzzCampaign, Scenario, fuzz_smoke
from repro.fuzz.oracle import SEVERITY_FAILURE, judge


@pytest.fixture
def repo(tmp_path):
    repo = PopperRepository.init(tmp_path / "repo")
    repo.add_experiment("torpor", "exp")
    vars_path = repo.experiment_dir("exp") / "vars.yml"
    doc = minyaml.load_file(vars_path)
    doc["runs"] = 2  # keep sandboxed pipeline runs cheap
    minyaml.dump_file(doc, vars_path)
    return repo


class TestCampaign:
    def test_rejects_empty_budget(self, repo):
        with pytest.raises(FuzzError):
            FuzzCampaign(repo, iterations=0)

    def test_rejects_unknown_experiment(self, repo):
        with pytest.raises(FuzzError):
            FuzzCampaign(repo, experiments=["nope"])

    def test_campaign_executes_scores_and_admits(self, repo):
        campaign = FuzzCampaign(repo, seed=5, iterations=4, do_minimize=False)
        report = campaign.run()
        assert report.executed >= 1
        assert report.coverage_size >= 1
        assert sum(report.outcomes.values()) == report.executed
        # interesting-or-novel variants land in the corpus as runnable
        # experiment directories
        for variant in campaign.corpus.variants():
            entry = campaign.corpus.load(variant)
            assert entry.scenario.name == "exp"

    def test_rerun_with_same_seed_deduplicates(self, repo):
        FuzzCampaign(repo, seed=5, iterations=4, do_minimize=False).run()
        report = FuzzCampaign(
            repo, seed=5, iterations=4, do_minimize=False
        ).run()
        # Already-seen variants are skipped, not re-executed; the rest
        # of the budget explores on from the admitted corpus (the first
        # run's survivors are new mutation bases — coverage guidance).
        assert report.duplicates >= 1
        assert report.executed + report.duplicates == 4

    def test_state_persists_under_pvcs_fuzz(self, repo):
        FuzzCampaign(repo, seed=5, iterations=2, do_minimize=False).run()
        state = repo.vcs.meta / "fuzz"
        assert (state / "coverage.jsonl").is_file()
        assert (state / "corpus.jsonl").is_file()
        # sandboxes are cleaned up after each variant
        work = state / "work"
        assert not work.is_dir() or not any(work.iterdir())


class TestOracleIntegration:
    def test_garbled_fault_spec_is_cleanly_rejected(self, repo):
        campaign = FuzzCampaign(repo, seed=1, iterations=1, do_minimize=False)
        scenario = Scenario.from_experiment(repo, "exp")
        bad = Scenario.from_json({**scenario.to_json(), "fault_spec": ":::"})
        result = campaign.runner.run(bad)
        assert result.outcome == "rejected"
        verdict = judge(result.observation)
        assert verdict.severity != SEVERITY_FAILURE

    def test_injected_crash_is_contained_and_repaired(self, repo):
        campaign = FuzzCampaign(repo, seed=1, iterations=1, do_minimize=False)
        scenario = Scenario.from_experiment(repo, "exp")
        crashing = Scenario.from_json(
            {**scenario.to_json(), "crash_spec": "at:journal.append.torn:1"}
        )
        result = campaign.runner.run(crashing)
        assert result.outcome == "crash"
        # the sandboxed doctor repaired the debris: not a finding
        assert judge(result.observation).severity != SEVERITY_FAILURE


def test_fuzz_smoke_passes(tmp_path):
    summary = fuzz_smoke(tmp_path)
    assert "known-bad caught" in summary
    assert "minimized" in summary
