"""The mutation engine: seeded, pure, total, and JSON round-trippable."""

import pytest

from repro.common.errors import FuzzError
from repro.common.rng import derive_rng
from repro.fuzz.mutators import (
    MUTATION_RULES,
    Mutation,
    apply_chain,
    apply_mutation,
    generate_mutation,
    generate_serve_payload,
)
from repro.fuzz.scenario import Scenario

VARS = "runner: torpor\nruns: 3\nlimits:\n  - 1\n  - 2\n"
AVER = "expect speedup > 1\n"
TRAVIS = "language: generic\nenv:\n  - A=1\nscript:\n  - popper check\n"


@pytest.fixture
def scenario():
    return Scenario(
        name="exp",
        files={
            "vars.yml": VARS,
            "validations.aver": AVER,
            "setup.yml": "- hosts: all\n  tasks: []\n",
        },
        travis=TRAVIS,
    )


class TestMutationRecord:
    def test_json_round_trip(self):
        m = Mutation("vars-widen", {"key": "runs", "factor": 10})
        assert Mutation.from_json(m.to_json()) == m

    def test_describe_names_rule_and_args(self):
        m = Mutation("hosts-set", {"count": 5})
        assert "hosts-set" in m.describe()
        assert "5" in m.describe()

    def test_unknown_rule_raises_cleanly(self, scenario):
        with pytest.raises(FuzzError):
            apply_mutation(scenario, Mutation("no-such-rule", {}))


class TestGeneration:
    def test_same_rng_same_mutation(self, scenario):
        a = generate_mutation(scenario, derive_rng(7, "m", 0))
        b = generate_mutation(scenario, derive_rng(7, "m", 0))
        assert a == b

    def test_generated_mutations_are_known_rules(self, scenario):
        for i in range(40):
            m = generate_mutation(scenario, derive_rng(3, "gen", i))
            assert m.rule in MUTATION_RULES

    def test_generation_covers_many_rules(self, scenario):
        rules = {
            generate_mutation(scenario, derive_rng(11, "cov", i)).rule
            for i in range(300)
        }
        # Not every rule applies to every scenario, but the generator
        # must explore well beyond a couple of favourites.
        assert len(rules) >= 8


class TestApplication:
    def test_apply_is_pure(self, scenario):
        m = generate_mutation(scenario, derive_rng(1, "p"))
        first = apply_mutation(scenario, m)
        second = apply_mutation(scenario, m)
        assert first.fingerprint() == second.fingerprint()
        assert scenario.files["vars.yml"] == VARS  # input untouched

    def test_apply_is_total_over_generated_chains(self, scenario):
        # Stacked mutations may invalidate each other's preconditions
        # (e.g. a dropped var then widened): apply must never raise.
        current = scenario
        for i in range(60):
            m = generate_mutation(current, derive_rng(5, "total", i))
            current = apply_mutation(current, m)
        assert isinstance(current, Scenario)

    def test_chain_application_matches_stepwise(self, scenario):
        chain = [
            generate_mutation(scenario, derive_rng(9, "c", i))
            for i in range(4)
        ]
        stepwise = scenario
        for m in chain:
            stepwise = apply_mutation(stepwise, m)
        assert apply_chain(scenario, chain).fingerprint() == (
            stepwise.fingerprint()
        )

    def test_runner_key_never_dropped(self, scenario):
        for i in range(200):
            m = generate_mutation(scenario, derive_rng(13, "drop", i))
            if m.rule == "vars-drop":
                assert m.args["key"] != "runner"

    def test_aver_rewrite_tightens_threshold(self, scenario):
        m = Mutation("aver-rewrite", {"find": "> 1", "replace": "> 1000"})
        out = apply_mutation(scenario, m)
        assert "> 1000" in out.files["validations.aver"]


class TestScenario:
    def test_fingerprint_is_content_addressed(self, scenario):
        same = Scenario(
            name="exp", files=dict(scenario.files), travis=TRAVIS
        )
        assert same.fingerprint() == scenario.fingerprint()
        changed = scenario.with_file("vars.yml", VARS + "extra: 1\n")
        assert changed.fingerprint() != scenario.fingerprint()

    def test_json_round_trip(self, scenario):
        back = Scenario.from_json(scenario.to_json())
        assert back.fingerprint() == scenario.fingerprint()

    def test_bad_record_raises_cleanly(self):
        with pytest.raises(FuzzError):
            Scenario.from_json({"nonsense": True})


class TestServePayloadGrammar:
    def test_deterministic_for_one_seed(self):
        first = [
            generate_serve_payload(derive_rng(9, "serve")) for _ in range(1)
        ]
        for _ in range(3):
            again = generate_serve_payload(derive_rng(9, "serve"))
            assert again == first[0]

    def test_streams_differ_across_seeds(self):
        a = [generate_serve_payload(derive_rng(1, "serve")) for _ in range(8)]
        b = [generate_serve_payload(derive_rng(2, "serve")) for _ in range(8)]
        assert a != b

    def test_total_and_byte_typed(self):
        rng = derive_rng(5, "serve")
        payloads = [generate_serve_payload(rng) for _ in range(200)]
        assert all(isinstance(p, bytes) for p in payloads)
        # The grammar mixes shapes: some payloads must not even decode,
        # and the oversized shape must trip the 64 KiB admission bound.
        from repro.serve import MAX_BODY_BYTES

        def decodes(p):
            try:
                p.decode("utf-8")
                return True
            except UnicodeDecodeError:
                return False

        assert any(not decodes(p) for p in payloads)
        assert any(len(p) > MAX_BODY_BYTES for p in payloads)
        assert any(len(p) <= MAX_BODY_BYTES for p in payloads)

    def test_crash_grammar_covers_the_queue_sites(self):
        from repro.fuzz.mutators import _CRASH_TARGETS

        assert "queue.claim" in _CRASH_TARGETS
        assert "queue.publish" in _CRASH_TARGETS
        assert "queue.*" in _CRASH_TARGETS
