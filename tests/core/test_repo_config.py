"""Tests for .popper.yml, repository init/add and the paper workflow."""

import pytest

from repro.common.errors import PopperError, TemplateNotFound
from repro.core.config import CONFIG_NAME, PopperConfig
from repro.core.repo import PopperRepository
from repro.core.templates import TEMPLATES, get_template, list_templates


@pytest.fixture
def repo(tmp_path):
    return PopperRepository.init(tmp_path / "paper-repo")


class TestConfig:
    def test_round_trip(self):
        config = PopperConfig(
            experiments={"myexp": "torpor"}, paper_template="generic-article"
        )
        again = PopperConfig.from_yaml(config.to_yaml())
        assert again.experiments == {"myexp": "torpor"}
        assert again.paper_template == "generic-article"

    def test_empty_yaml(self):
        config = PopperConfig.from_yaml("")
        assert config.experiments == {}

    def test_future_version_rejected(self):
        with pytest.raises(PopperError, match="convention v9"):
            PopperConfig.from_yaml("version: 9\n")

    def test_bad_shape(self):
        with pytest.raises(PopperError):
            PopperConfig.from_yaml("- a list\n")

    def test_load_missing(self, tmp_path):
        with pytest.raises(PopperError, match="not a Popper repository"):
            PopperConfig.load(tmp_path)


class TestTemplates:
    def test_paper_listing_names_all_present(self):
        for name in (
            "ceph-rados", "proteustm", "mpi-comm-variability",
            "cloverleaf", "gassyfs", "zlog",
            "spark-standalone", "torpor", "malacology",
        ):
            assert name in TEMPLATES

    def test_list_order_matches_listing2(self):
        names = [t.name for t in list_templates()]
        assert names[:3] == ["ceph-rados", "proteustm", "mpi-comm-variability"]

    def test_every_template_self_contained(self):
        for template in TEMPLATES.values():
            files = template.files_dict()
            for required in (
                "README.md", "vars.yml", "setup.yml", "run.sh",
                "validations.aver", "datasets/README.md",
            ):
                assert required in files, (template.name, required)

    def test_every_template_vars_parse_and_name_runner(self):
        from repro.common import minyaml
        from repro.core.runners import EXPERIMENT_RUNNERS

        for template in TEMPLATES.values():
            doc = minyaml.loads(template.files_dict()["vars.yml"])
            assert doc["runner"] in EXPERIMENT_RUNNERS, template.name

    def test_every_template_playbook_parses(self):
        from repro.orchestration.playbook import Playbook

        for template in TEMPLATES.values():
            playbook = Playbook.from_yaml(template.files_dict()["setup.yml"])
            assert playbook.plays, template.name

    def test_every_template_validations_parse(self):
        from repro.aver.parser import parse_file_text

        for template in TEMPLATES.values():
            statements = parse_file_text(template.files_dict()["validations.aver"])
            assert statements, template.name

    def test_unknown_template(self):
        with pytest.raises(TemplateNotFound):
            get_template("warpdrive")


class TestRepository:
    def test_init_layout(self, repo):
        assert (repo.root / CONFIG_NAME).is_file()
        assert (repo.root / ".travis.yml").is_file()
        assert (repo.root / "experiments").is_dir()
        assert (repo.root / "paper").is_dir()
        assert repo.vcs.status().clean  # everything committed

    def test_double_init_rejected(self, repo):
        with pytest.raises(PopperError, match="already"):
            PopperRepository.init(repo.root)

    def test_add_experiment_materializes_template(self, repo):
        target = repo.add_experiment("gassyfs", "myexp")
        assert (target / "vars.yml").is_file()
        assert (target / "validations.aver").is_file()
        assert repo.config.experiments == {"myexp": "gassyfs"}
        assert repo.vcs.status().clean
        assert "popper add gassyfs myexp" in [
            e.subject for e in repo.vcs.log()
        ]

    def test_add_duplicate_rejected(self, repo):
        repo.add_experiment("torpor", "x")
        with pytest.raises(PopperError, match="already exists"):
            repo.add_experiment("torpor", "x")

    def test_add_bad_name(self, repo):
        with pytest.raises(PopperError):
            repo.add_experiment("torpor", "a/b")

    def test_remove_experiment(self, repo):
        repo.add_experiment("torpor", "x")
        repo.remove_experiment("x")
        assert repo.experiments() == []
        assert not repo.experiment_dir("x").exists()

    def test_remove_unknown(self, repo):
        with pytest.raises(PopperError):
            repo.remove_experiment("ghost")

    def test_open_from_subdir(self, repo):
        sub = repo.root / "experiments"
        again = PopperRepository.open(sub)
        assert again.root == repo.root

    def test_paper_add_and_build(self, repo):
        repo.add_paper("generic-article")
        repo.add_experiment("torpor", "t1")
        output = repo.build_paper()
        text = output.read_text()
        assert "t1" in text and "not yet run" in text

    def test_paper_bad_template(self, repo):
        with pytest.raises(PopperError):
            repo.add_paper("powerpoint")

    def test_build_paper_without_template(self, repo):
        with pytest.raises(PopperError, match="paper/paper.md"):
            repo.build_paper()
