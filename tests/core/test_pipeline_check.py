"""Tests for the experiment pipeline and compliance checker."""

import pytest

from repro.common.errors import PopperError, ValidationFailure
from repro.common.fsutil import write_text
from repro.core.check import check_repository
from repro.core.pipeline import ExperimentPipeline
from repro.core.repo import PopperRepository
from repro.monitor.metrics import MetricStore


@pytest.fixture
def repo(tmp_path):
    return PopperRepository.init(tmp_path / "paper-repo")


def fast_vars(repo, name, extra=""):
    """Shrink a torpor experiment for test speed."""
    write_text(
        repo.experiment_dir(name) / "vars.yml",
        "runner: torpor-variability\nruns: 2\nseed: 7\n" + extra,
    )


class TestPipeline:
    def test_full_run_produces_artifacts(self, repo):
        repo.add_experiment("torpor", "myexp")
        fast_vars(repo, "myexp")
        result = ExperimentPipeline(repo, "myexp").run()
        assert result.validated
        assert (repo.experiment_dir("myexp") / "results.csv").is_file()
        report = (repo.experiment_dir("myexp") / "validation_report.txt").read_text()
        assert "ALL VALIDATIONS PASSED" in report
        assert {"setup", "run", "postprocess", "visualize", "validate"} <= set(
            result.stage_seconds
        )

    def test_unknown_experiment(self, repo):
        with pytest.raises(PopperError):
            ExperimentPipeline(repo, "ghost")

    def test_missing_vars(self, repo):
        repo.add_experiment("torpor", "x")
        (repo.experiment_dir("x") / "vars.yml").unlink()
        with pytest.raises(PopperError, match="vars.yml"):
            ExperimentPipeline(repo, "x").run()

    def test_vars_without_runner(self, repo):
        repo.add_experiment("torpor", "x")
        write_text(repo.experiment_dir("x") / "vars.yml", "foo: 1\n")
        with pytest.raises(PopperError, match="runner"):
            ExperimentPipeline(repo, "x").run()

    def test_unknown_runner(self, repo):
        repo.add_experiment("torpor", "x")
        write_text(repo.experiment_dir("x") / "vars.yml", "runner: warpdrive\n")
        with pytest.raises(PopperError, match="unknown runner"):
            ExperimentPipeline(repo, "x").run()

    def test_strict_mode_raises_on_failed_validation(self, repo):
        repo.add_experiment("torpor", "x")
        fast_vars(repo, "x")
        write_text(
            repo.experiment_dir("x") / "validations.aver",
            "expect speedup > 100\n",
        )
        with pytest.raises(ValidationFailure):
            ExperimentPipeline(repo, "x").run(strict=True)

    def test_non_strict_reports_failure(self, repo):
        repo.add_experiment("torpor", "x")
        fast_vars(repo, "x")
        write_text(
            repo.experiment_dir("x") / "validations.aver",
            "expect speedup > 100\n",
        )
        result = ExperimentPipeline(repo, "x").run(strict=False)
        assert not result.validated
        assert "VALIDATION FAILURES" in result.report_text()

    def test_setup_playbook_failure_aborts(self, repo):
        repo.add_experiment("torpor", "x")
        fast_vars(repo, "x")
        write_text(
            repo.experiment_dir("x") / "setup.yml",
            "- hosts: all\n  tasks:\n    - name: boom\n      command: {cmd: nosuchbinary}\n",
        )
        with pytest.raises(PopperError, match="setup playbook failed"):
            ExperimentPipeline(repo, "x").run()

    def test_validate_existing_without_results(self, repo):
        repo.add_experiment("torpor", "x")
        with pytest.raises(PopperError, match="results.csv"):
            ExperimentPipeline(repo, "x").validate_existing()

    def test_validate_existing_round_trip(self, repo):
        repo.add_experiment("torpor", "x")
        fast_vars(repo, "x")
        ExperimentPipeline(repo, "x").run()
        result = ExperimentPipeline(repo, "x").validate_existing()
        assert result.validated

    def test_stage_metrics_recorded(self, repo):
        repo.add_experiment("torpor", "x")
        fast_vars(repo, "x")
        store = MetricStore()
        ExperimentPipeline(repo, "x", metrics=store).run()
        stages = set(
            store.to_table("popper.stage_seconds").column("stage")
        )
        assert {"setup", "run", "postprocess", "validate"} <= stages

    def test_bww_pipeline_end_to_end(self, repo):
        repo.add_experiment("jupyter-bww", "airtemp-analysis")
        write_text(
            repo.experiment_dir("airtemp-analysis") / "vars.yml",
            "runner: bww-airtemp\nyears: 1\nlat_step: 10.0\nlon_step: 15.0\nseed: 3\n",
        )
        result = ExperimentPipeline(repo, "airtemp-analysis").run()
        assert result.validated
        assert set(result.results.column("season")) == {"DJF", "MAM", "JJA", "SON"}


class TestCompliance:
    def test_fresh_repo_compliant(self, repo):
        report = check_repository(repo)
        assert report.compliant

    def test_experiment_warnings_before_run(self, repo):
        repo.add_experiment("torpor", "x")
        report = check_repository(repo)
        assert report.compliant
        assert any("results.csv" in str(f) for f in report.warnings)

    def test_missing_required_file_is_error(self, repo):
        repo.add_experiment("torpor", "x")
        (repo.experiment_dir("x") / "validations.aver").unlink()
        report = check_repository(repo)
        assert not report.compliant
        assert any("validations.aver" in str(f) for f in report.errors)

    def test_missing_travis_is_error(self, repo):
        (repo.root / ".travis.yml").unlink()
        report = check_repository(repo)
        assert any(".travis.yml" in str(f) for f in report.errors)

    def test_registered_but_missing_folder(self, repo):
        repo.add_experiment("torpor", "x")
        repo.config.experiments["ghost"] = "torpor"
        report = check_repository(repo)
        assert any("folder missing" in str(f) for f in report.errors)

    def test_unregistered_folder_warns(self, repo):
        (repo.experiments_dir / "stray").mkdir(parents=True)
        (repo.experiments_dir / "stray" / "note.txt").write_text("hi")
        report = check_repository(repo)
        assert any("not in .popper.yml" in str(f) for f in report.findings)

    def test_untracked_files_warn(self, repo):
        (repo.root / "scratch.txt").write_text("temp")
        report = check_repository(repo)
        assert any("untracked" in str(f) for f in report.warnings)

    def test_bad_vars_yaml_is_error(self, repo):
        repo.add_experiment("torpor", "x")
        write_text(repo.experiment_dir("x") / "vars.yml", "a:\n\tb: tab\n")
        report = check_repository(repo)
        assert any("unparsable" in str(f) for f in report.errors)

    def test_describe_output(self, repo):
        assert "compliant" in check_repository(repo).describe()
