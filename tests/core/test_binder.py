"""Tests for Binder-style post-mortem notebook re-execution."""

import pytest

from repro.common.errors import PopperError
from repro.common.fsutil import write_text
from repro.core.binder import rerun_notebooks
from repro.core.cli import main
from repro.core.pipeline import ExperimentPipeline
from repro.core.repo import PopperRepository


@pytest.fixture
def repo(tmp_path):
    repo = PopperRepository.init(tmp_path / "paper-repo")
    repo.add_experiment("torpor", "myexp")
    write_text(
        repo.experiment_dir("myexp") / "vars.yml",
        "runner: torpor-variability\nruns: 2\nseed: 7\n",
    )
    return repo


class TestRerunNotebooks:
    def test_without_results_flags_missing(self, repo):
        statuses = rerun_notebooks(repo)
        assert statuses[0].ran is False
        assert statuses[0].ok is False
        assert "no stored results" in statuses[0].detail

    def test_reruns_against_stored_results(self, repo):
        ExperimentPipeline(repo, "myexp").run()
        figure = repo.experiment_dir("myexp") / "figure.svg"
        figure.unlink()  # pretend the reader only got results.csv
        statuses = rerun_notebooks(repo)
        assert statuses[0].ran and statuses[0].ok
        assert figure.is_file()  # notebook regenerated the figure

    def test_broken_notebook_reported(self, repo):
        ExperimentPipeline(repo, "myexp").run()
        write_text(
            repo.experiment_dir("myexp") / "visualize.nb.json",
            '{"cells": [{"cell_type": "code", "source": "1/0"}]}',
        )
        statuses = rerun_notebooks(repo)
        assert statuses[0].ran and not statuses[0].ok
        assert "ZeroDivisionError" in statuses[0].detail

    def test_experiment_without_notebook_skipped(self, repo):
        ExperimentPipeline(repo, "myexp").run()
        (repo.experiment_dir("myexp") / "visualize.nb.json").unlink()
        statuses = rerun_notebooks(repo)
        assert statuses[0].ran is False and statuses[0].ok

    def test_empty_repo_rejected(self, tmp_path):
        empty = PopperRepository.init(tmp_path / "empty")
        with pytest.raises(PopperError):
            rerun_notebooks(empty)

    def test_cli_verb(self, repo, capsys):
        ExperimentPipeline(repo, "myexp").run()
        assert main(["-C", str(repo.root), "notebooks"]) == 0
        assert "[ok] myexp" in capsys.readouterr().out

    def test_cli_verb_failure_exit(self, repo, capsys):
        assert main(["-C", str(repo.root), "notebooks"]) == 1
