"""CLI-level tests for the artifact cache: memoized sweeps, cache
administration verbs and the CI warm-cache mode."""

import pytest

from repro.core.cli import main
from repro.core.repo import PopperRepository

TORPOR_VARS = "runner: torpor-variability\nruns: 2\nseed: 11\n"


@pytest.fixture
def repo_dir(tmp_path):
    path = tmp_path / "mypaper-repo"
    path.mkdir()
    assert main(["-C", str(path), "init"]) == 0
    return path


def add_torpor(repo_dir, name, vars_text=TORPOR_VARS):
    assert main(["-C", str(repo_dir), "add", "torpor", name]) == 0
    (repo_dir / "experiments" / name / "vars.yml").write_text(vars_text)
    return repo_dir / "experiments" / name


class TestWarmSweep:
    def test_warm_rerun_is_all_cached_and_byte_identical(self, repo_dir, capsys):
        add_torpor(repo_dir, "one")
        add_torpor(repo_dir, "two")
        assert main(["-C", str(repo_dir), "run", "--all"]) == 0
        results = {
            name: (repo_dir / "experiments" / name / "results.csv").read_bytes()
            for name in ("one", "two")
        }
        capsys.readouterr()

        assert main(["-C", str(repo_dir), "run", "--all"]) == 0
        out = capsys.readouterr().out
        # Every experiment line reports a cache hit...
        for name in ("one", "two"):
            assert f"-- {name}:" in out
        assert out.count("(cached)") == 2
        # ...and the materialized artifacts are byte-identical.
        for name, before in results.items():
            path = repo_dir / "experiments" / name / "results.csv"
            assert path.read_bytes() == before

    def test_vars_edit_invalidates_cache(self, repo_dir, capsys):
        exp = add_torpor(repo_dir, "one")
        assert main(["-C", str(repo_dir), "run", "--all"]) == 0
        (exp / "vars.yml").write_text(
            "runner: torpor-variability\nruns: 3\nseed: 11\n"
        )
        capsys.readouterr()
        assert main(["-C", str(repo_dir), "run", "--all"]) == 0
        out = capsys.readouterr().out
        assert "(cached)" not in out
        # The edited experiment now caches under its new fingerprint.
        capsys.readouterr()
        assert main(["-C", str(repo_dir), "run", "--all"]) == 0
        assert "(cached)" in capsys.readouterr().out

    def test_warm_parallelism_is_deterministic(self, repo_dir, capsys):
        """-j1 and -j4 warm runs produce byte-identical artifacts."""
        add_torpor(repo_dir, "one")
        add_torpor(repo_dir, "two")
        assert main(["-C", str(repo_dir), "run", "--all", "-j", "1"]) == 0
        serial = {
            name: (repo_dir / "experiments" / name / "results.csv").read_bytes()
            for name in ("one", "two")
        }
        capsys.readouterr()
        assert main(["-C", str(repo_dir), "run", "--all", "-j", "4"]) == 0
        out = capsys.readouterr().out
        assert out.count("(cached)") == 2
        for name, before in serial.items():
            path = repo_dir / "experiments" / name / "results.csv"
            assert path.read_bytes() == before


class TestCacheCheck:
    def test_cache_check_passes_on_deterministic_repo(self, repo_dir, capsys):
        add_torpor(repo_dir, "one")
        assert main(["-C", str(repo_dir), "run", "--all", "--cache-check"]) == 0
        out = capsys.readouterr().out
        assert "cache check: 1/1 experiments served from cache" in out
        assert "results identical" in out

    def test_cache_check_rejects_no_cache(self, repo_dir, capsys):
        add_torpor(repo_dir, "one")
        assert (
            main(["-C", str(repo_dir), "run", "--all", "--cache-check", "--no-cache"])
            == 2
        )
        assert "cannot be combined" in capsys.readouterr().err


class TestCacheStats:
    def test_stats_after_run(self, repo_dir, capsys):
        add_torpor(repo_dir, "one")
        assert main(["-C", str(repo_dir), "run", "--all"]) == 0
        capsys.readouterr()
        assert main(["-C", str(repo_dir), "cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "-- artifact cache" in out
        assert "-- vcs object pool" in out
        assert "0 quarantined" in out
        assert "records: " in out


class TestCacheVerify:
    def test_clean_repo_verifies(self, repo_dir, capsys):
        add_torpor(repo_dir, "one")
        assert main(["-C", str(repo_dir), "run", "--all"]) == 0
        capsys.readouterr()
        assert main(["-C", str(repo_dir), "cache", "verify"]) == 0
        assert "-- verify: clean" in capsys.readouterr().out

    def test_corrupt_artifact_quarantined_and_blamed(self, repo_dir, capsys):
        add_torpor(repo_dir, "one")
        assert main(["-C", str(repo_dir), "run", "--all"]) == 0
        store = PopperRepository.open(repo_dir).artifact_store
        record = store.index.entries()[-1]
        oid = record.outputs[0].oid
        store.cas.object_path(oid).write_bytes(b"bit rot")
        capsys.readouterr()

        assert main(["-C", str(repo_dir), "cache", "verify"]) == 1
        out = capsys.readouterr().out
        assert f"corrupt (quarantined): {oid[:12]}" in out
        assert record.task in out
        assert "-- verify: CORRUPTION FOUND" in out
        assert store.cas.quarantined() == [oid]

        # The damaged entry misses, so the sweep transparently re-runs
        # and repopulates the pool.
        assert main(["-C", str(repo_dir), "run", "--all"]) == 0
        capsys.readouterr()
        assert main(["-C", str(repo_dir), "cache", "verify"]) == 0

    def test_corrupt_vcs_object_blames_commits(self, repo_dir, capsys):
        add_torpor(repo_dir, "one")
        repo = PopperRepository.open(repo_dir)
        blob = None
        for oid in repo.vcs.store.ids():
            blob = oid
            break
        repo.vcs.store._path(blob).write_bytes(b"garbage")
        capsys.readouterr()
        assert main(["-C", str(repo_dir), "cache", "verify"]) == 1
        out = capsys.readouterr().out
        assert f"corrupt (quarantined): {blob[:12]}" in out
        assert "-- verify: CORRUPTION FOUND" in out


class TestCacheGc:
    def test_gc_never_collects_latest_artifacts(self, repo_dir, capsys):
        exp = add_torpor(repo_dir, "one")
        assert main(["-C", str(repo_dir), "run", "--all"]) == 0
        # A second fingerprint for the same tasks: edit vars and re-run.
        (exp / "vars.yml").write_text(
            "runner: torpor-variability\nruns: 3\nseed: 11\n"
        )
        assert main(["-C", str(repo_dir), "run", "--all"]) == 0
        capsys.readouterr()

        assert main(["-C", str(repo_dir), "cache", "gc", "--keep-last", "1"]) == 0
        out = capsys.readouterr().out
        assert "-- gc: kept 1 record(s) per task" in out

        # The latest run is still served entirely from cache after gc.
        capsys.readouterr()
        assert main(["-C", str(repo_dir), "run", "--all"]) == 0
        assert "(cached)" in capsys.readouterr().out
