"""Tests for the popper CLI (the paper's Listing 2 session)."""

import pytest

from repro.core.cli import main


@pytest.fixture
def repo_dir(tmp_path):
    path = tmp_path / "mypaper-repo"
    path.mkdir()
    assert main(["-C", str(path), "init"]) == 0
    return path


class TestListing2:
    def test_init_message(self, tmp_path, capsys):
        path = tmp_path / "r"
        path.mkdir()
        assert main(["-C", str(path), "init"]) == 0
        assert "-- Initialized Popper repo" in capsys.readouterr().out

    def test_experiment_list_shows_paper_templates(self, repo_dir, capsys):
        assert main(["-C", str(repo_dir), "experiment", "list"]) == 0
        out = capsys.readouterr().out
        assert "-- available templates" in out
        for name in (
            "ceph-rados", "proteustm", "mpi-comm-variability", "cloverleaf",
            "gassyfs", "zlog", "spark-standalone", "torpor", "malacology",
        ):
            assert name in out

    def test_add_torpor_myexp(self, repo_dir, capsys):
        assert main(["-C", str(repo_dir), "add", "torpor", "myexp"]) == 0
        assert "Added experiment myexp" in capsys.readouterr().out
        assert (repo_dir / "experiments" / "myexp" / "vars.yml").is_file()

    def test_add_unknown_template(self, repo_dir, capsys):
        assert main(["-C", str(repo_dir), "add", "warpdrive", "x"]) == 2
        assert "no template" in capsys.readouterr().err


class TestOtherVerbs:
    def test_check_compliant(self, repo_dir, capsys):
        assert main(["-C", str(repo_dir), "check"]) == 0
        assert "compliant" in capsys.readouterr().out

    def test_check_failure_exit_code(self, repo_dir):
        (repo_dir / ".travis.yml").unlink()
        assert main(["-C", str(repo_dir), "check"]) == 1

    def test_run_requires_names(self, repo_dir, capsys):
        assert main(["-C", str(repo_dir), "run"]) == 2

    def test_run_executes_and_validates(self, repo_dir, capsys):
        main(["-C", str(repo_dir), "add", "torpor", "myexp"])
        (repo_dir / "experiments" / "myexp" / "vars.yml").write_text(
            "runner: torpor-variability\nruns: 2\nseed: 7\n"
        )
        assert main(["-C", str(repo_dir), "run", "myexp"]) == 0
        out = capsys.readouterr().out
        assert "result rows, ok" in out
        assert (repo_dir / "experiments" / "myexp" / "results.csv").is_file()

    def test_run_validate_only(self, repo_dir, capsys):
        main(["-C", str(repo_dir), "add", "torpor", "myexp"])
        (repo_dir / "experiments" / "myexp" / "vars.yml").write_text(
            "runner: torpor-variability\nruns: 2\nseed: 7\n"
        )
        main(["-C", str(repo_dir), "run", "myexp"])
        capsys.readouterr()
        assert main(["-C", str(repo_dir), "run", "--validate-only", "myexp"]) == 0

    def test_run_failing_validation_exit_code(self, repo_dir, capsys):
        main(["-C", str(repo_dir), "add", "torpor", "myexp"])
        exp = repo_dir / "experiments" / "myexp"
        (exp / "vars.yml").write_text("runner: torpor-variability\nruns: 2\n")
        (exp / "validations.aver").write_text("expect speedup > 1000\n")
        assert main(["-C", str(repo_dir), "run", "myexp"]) == 1

    def test_rm(self, repo_dir, capsys):
        main(["-C", str(repo_dir), "add", "torpor", "myexp"])
        assert main(["-C", str(repo_dir), "rm", "myexp"]) == 0
        assert not (repo_dir / "experiments" / "myexp").exists()

    def test_paper_list_add_build(self, repo_dir, capsys):
        assert main(["-C", str(repo_dir), "paper", "list"]) == 0
        out = capsys.readouterr().out
        assert "generic-article" in out and "bams-article" in out
        assert main(["-C", str(repo_dir), "paper", "add", "bams-article"]) == 0
        assert main(["-C", str(repo_dir), "paper", "build"]) == 0
        assert (repo_dir / "paper" / "output.pdf").is_file()

    def test_status(self, repo_dir, capsys):
        main(["-C", str(repo_dir), "add", "torpor", "myexp"])
        capsys.readouterr()
        assert main(["-C", str(repo_dir), "status"]) == 0
        out = capsys.readouterr().out
        assert "myexp" in out and "never ran" in out

    def test_outside_repo(self, tmp_path, capsys):
        assert main(["-C", str(tmp_path), "status"]) == 2


class TestCiVerb:
    def test_ci_passing(self, repo_dir, capsys):
        assert main(["-C", str(repo_dir), "ci"]) == 0
        out = capsys.readouterr().out
        assert "build #1" in out and "build: passing" in out

    def test_ci_failing(self, repo_dir, capsys):
        (repo_dir / ".travis.yml").write_text("script:\n  - false\n")
        from repro.core.repo import PopperRepository

        repo = PopperRepository.open(repo_dir)
        repo.vcs.add_all()
        repo.vcs.commit("break ci")
        assert main(["-C", str(repo_dir), "ci"]) == 1
        assert "build: failing" in capsys.readouterr().out
