"""Pipeline observability: span tree, journal artifact, trace/log CLI."""

import pytest

from repro.core.cli import main
from repro.core.pipeline import ExperimentPipeline
from repro.core.repo import PopperRepository
from repro.core.runners import register_runner
from repro.common.tables import MetricsTable
from repro.monitor.journal import read_journal
from repro.monitor.tracing import SPAN_METRIC, current_tracer


@register_runner("stub-observed")
def _stub_runner(variables: dict) -> MetricsTable:
    table = MetricsTable(["x", "y"])
    with current_tracer().span("stub/work", points=2):
        table.append({"x": 1, "y": 2.0})
        table.append({"x": 2, "y": 1.0})
    return table


@pytest.fixture
def repo(tmp_path):
    repo = PopperRepository.init(tmp_path / "r")
    repo.add_experiment("torpor", "myexp")
    (repo.experiment_dir("myexp") / "vars.yml").write_text(
        "runner: stub-observed\n"
    )
    (repo.experiment_dir("myexp") / "validations.aver").write_text(
        "expect y > 0\n"
    )
    (repo.experiment_dir("myexp") / "visualize.nb.json").unlink(missing_ok=True)
    (repo.experiment_dir("myexp") / "setup.yml").unlink(missing_ok=True)
    (repo.experiment_dir("myexp") / "process-result.py").unlink(missing_ok=True)
    return repo


class TestPipelineSpans:
    def test_expected_span_tree_for_stub_experiment(self, repo):
        pipeline = ExperimentPipeline(repo, "myexp")
        pipeline.run()
        assert pipeline.tracer.span_tree() == [
            "pipeline/run/myexp (ok)",
            "  task/setup (ok)",
            "  task/run (ok)",
            "    runner/stub-observed (ok)",
            "      stub/work (ok)",
            "  task/postprocess (ok)",
            "  task/validate (ok)",
        ]

    def test_span_seconds_land_in_metric_store(self, repo):
        pipeline = ExperimentPipeline(repo, "myexp")
        pipeline.run()
        values = pipeline.metrics.values(SPAN_METRIC, {"span": "task/run"})
        assert values.size == 1 and values[0] >= 0.0

    def test_journal_written_with_verdicts_and_exit_status(self, repo):
        pipeline = ExperimentPipeline(repo, "myexp")
        pipeline.run()
        events = read_journal(pipeline.journal_path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert events[-1]["status"] == "ok"
        verdicts = [e for e in events if e["event"] == "aver_verdict"]
        assert len(verdicts) == 1 and verdicts[0]["passed"] is True

    def test_crashed_run_leaves_partial_journal(self, repo):
        (repo.experiment_dir("myexp") / "vars.yml").write_text(
            "runner: no-such-runner\n"
        )
        pipeline = ExperimentPipeline(repo, "myexp")
        with pytest.raises(Exception):
            pipeline.run()
        events = read_journal(pipeline.journal_path)
        assert events[-1]["event"] == "run_end"
        assert events[-1]["status"] == "error"
        run_spans = [
            e
            for e in events
            if e["event"] == "span_end" and e["name"] == "task/run"
        ]
        assert run_spans and run_spans[0]["status"] == "error"

    def test_rerun_overwrites_journal(self, repo):
        pipeline = ExperimentPipeline(repo, "myexp")
        pipeline.run()
        first = len(read_journal(pipeline.journal_path))
        ExperimentPipeline(repo, "myexp").run()
        assert len(read_journal(pipeline.journal_path)) == first


class TestTraceCli:
    def run_myexp(self, repo):
        assert main(["-C", str(repo.root), "run", "myexp"]) == 0

    def test_trace_golden_output(self, repo, capsys):
        self.run_myexp(repo)
        capsys.readouterr()
        assert main(["-C", str(repo.root), "trace", "myexp"]) == 0
        out = capsys.readouterr().out
        assert "== run journal: myexp" in out
        assert "status: ok" in out
        for line_start in (
            "stage",
            "task/setup",
            "task/run",
            "task/postprocess",
            "task/validate",
        ):
            assert any(
                line.startswith(line_start) for line in out.splitlines()
            ), f"missing {line_start!r} row in:\n{out}"
        assert "critical path:" in out
        assert "pipeline/run/myexp" in out
        assert "validations: 1 passed, 0 failed" in out

    def test_log_lists_events(self, repo, capsys):
        self.run_myexp(repo)
        capsys.readouterr()
        assert main(["-C", str(repo.root), "log", "myexp"]) == 0
        out = capsys.readouterr().out
        assert "run_start" in out and "run_end" in out
        assert "name=stub/work" in out

    def test_trace_header_names_backend_and_workers(self, repo, capsys):
        """The run header answers "who executed this?" without digging
        through raw events."""
        self.run_myexp(repo)
        capsys.readouterr()
        assert main(["-C", str(repo.root), "trace", "myexp"]) == 0
        out = capsys.readouterr().out
        assert "backend: serial (1 workers)" in out.splitlines()[1]
        assert "status: ok" in out.splitlines()[1]

    def test_log_header_names_backend_and_workers(self, repo, capsys):
        self.run_myexp(repo)
        capsys.readouterr()
        assert main(["-C", str(repo.root), "log", "myexp"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("-- run: myexp   backend: serial (1 workers)")

    def test_log_raw_is_jsonl(self, repo, capsys):
        import json

        self.run_myexp(repo)
        capsys.readouterr()
        assert main(["-C", str(repo.root), "log", "--raw", "myexp"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert all(json.loads(line)["seq"] for line in lines)

    def test_trace_before_any_run_errors(self, repo, capsys):
        assert main(["-C", str(repo.root), "trace", "myexp"]) == 2
        assert "no run journal" in capsys.readouterr().err

    def test_trace_unknown_experiment(self, repo, capsys):
        assert main(["-C", str(repo.root), "trace", "ghost"]) == 2
        assert "no such experiment" in capsys.readouterr().err
