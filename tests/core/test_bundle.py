"""Tests for artifact-evaluation bundles."""

import json

import pytest

from repro.common.errors import PopperError
from repro.common.fsutil import write_text
from repro.core.bundle import create_bundle, load_bundle, unbundle
from repro.core.cli import main
from repro.core.pipeline import ExperimentPipeline
from repro.core.repo import PopperRepository


@pytest.fixture
def repo(tmp_path):
    repo = PopperRepository.init(tmp_path / "paper-repo")
    repo.add_experiment("torpor", "myexp")
    write_text(
        repo.experiment_dir("myexp") / "vars.yml",
        "runner: torpor-variability\nruns: 2\nseed: 7\n",
    )
    repo.vcs.add_all()
    repo.vcs.commit("shrink")
    return repo


class TestBundle:
    def test_round_trip(self, repo, tmp_path):
        bundle_path = tmp_path / "artifact.popper.json"
        manifest = create_bundle(repo, bundle_path)
        assert manifest["experiments"] == {"myexp": "torpor"}
        assert manifest["files"] > 5

        restored = unbundle(bundle_path, tmp_path / "restored")
        assert restored.experiments() == ["myexp"]
        assert (restored.experiment_dir("myexp") / "validations.aver").is_file()
        # and the restored repository actually runs
        result = ExperimentPipeline(restored, "myexp").run()
        assert result.validated

    def test_bundle_includes_committed_results(self, repo, tmp_path):
        ExperimentPipeline(repo, "myexp").run()
        repo.vcs.add_all()
        repo.vcs.commit("results")
        bundle_path = tmp_path / "b.json"
        create_bundle(repo, bundle_path)
        restored = unbundle(bundle_path, tmp_path / "r")
        assert (restored.experiment_dir("myexp") / "results.csv").is_file()

    def test_bundle_at_older_ref(self, repo, tmp_path):
        before = repo.vcs.head_commit()
        ExperimentPipeline(repo, "myexp").run()
        repo.vcs.add_all()
        repo.vcs.commit("results")
        create_bundle(repo, tmp_path / "old.json", ref=before)
        restored = unbundle(tmp_path / "old.json", tmp_path / "r")
        assert not (restored.experiment_dir("myexp") / "results.csv").exists()

    def test_tamper_detected(self, repo, tmp_path):
        bundle_path = tmp_path / "b.json"
        create_bundle(repo, bundle_path)
        doc = json.loads(bundle_path.read_text())
        doc["body"]["tree"]["README.md"] = "aGFja2Vk"  # "hacked"
        bundle_path.write_text(json.dumps(doc))
        with pytest.raises(PopperError, match="digest mismatch"):
            load_bundle(bundle_path)

    def test_not_a_bundle(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"format": "zip"}')
        with pytest.raises(PopperError, match="not a popper bundle"):
            load_bundle(path)

    def test_nonempty_target_rejected(self, repo, tmp_path):
        bundle_path = tmp_path / "b.json"
        create_bundle(repo, bundle_path)
        target = tmp_path / "t"
        target.mkdir()
        (target / "junk").write_text("x")
        with pytest.raises(PopperError, match="not empty"):
            unbundle(bundle_path, target)

    def test_cli_bundle_unbundle(self, repo, tmp_path, capsys):
        bundle_path = tmp_path / "artifact.json"
        assert main(["-C", str(repo.root), "bundle", str(bundle_path)]) == 0
        assert "bundled" in capsys.readouterr().out
        assert main(
            ["unbundle", str(bundle_path), str(tmp_path / "fresh")]
        ) == 0
        out = capsys.readouterr().out
        assert "recreated" in out and "myexp" in out
