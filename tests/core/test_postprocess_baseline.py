"""Tests for the post-processing stage and the baseline-fingerprint gate."""

import json

import pytest

from repro.common.errors import PopperError
from repro.common.fsutil import write_text
from repro.common.tables import MetricsTable
from repro.core.baseline import BASELINE_FILE, check_baseline
from repro.core.pipeline import ExperimentPipeline
from repro.core.postprocess import PROCESS_SCRIPT, run_postprocess
from repro.core.repo import PopperRepository


@pytest.fixture
def repo(tmp_path):
    return PopperRepository.init(tmp_path / "paper-repo")


@pytest.fixture
def results():
    table = MetricsTable(["machine", "nodes", "time"])
    for machine in ("a", "b"):
        for nodes in (1, 2, 4):
            for run in range(2):
                table.append(
                    {"machine": machine, "nodes": nodes, "time": 10.0 / nodes + run}
                )
    return table


class TestPostprocess:
    def test_no_script_is_noop(self, tmp_path, results):
        assert run_postprocess(tmp_path, results) == {}

    def test_single_table_becomes_figure_csv(self, tmp_path, results):
        write_text(
            tmp_path / PROCESS_SCRIPT,
            "def process(results):\n"
            "    return results.aggregate(['machine', 'nodes'], 'time')\n",
        )
        written = run_postprocess(tmp_path, results)
        assert set(written) == {"figure"}
        figure = MetricsTable.load_csv(written["figure"])
        assert len(figure) == 6  # 2 machines x 3 node counts

    def test_dict_of_tables(self, tmp_path, results):
        write_text(
            tmp_path / PROCESS_SCRIPT,
            "def process(results):\n"
            "    agg = results.aggregate(['nodes'], 'time')\n"
            "    return {'by_nodes': agg, 'raw': results}\n",
        )
        written = run_postprocess(tmp_path, results)
        assert set(written) == {"by_nodes", "raw"}
        assert (tmp_path / "by_nodes.csv").is_file()

    def test_script_without_process_function(self, tmp_path, results):
        write_text(tmp_path / PROCESS_SCRIPT, "x = 1\n")
        with pytest.raises(PopperError, match="must define"):
            run_postprocess(tmp_path, results)

    def test_script_raises(self, tmp_path, results):
        write_text(
            tmp_path / PROCESS_SCRIPT,
            "def process(results):\n    raise RuntimeError('kaboom')\n",
        )
        with pytest.raises(PopperError, match="kaboom"):
            run_postprocess(tmp_path, results)

    def test_script_syntax_error(self, tmp_path, results):
        write_text(tmp_path / PROCESS_SCRIPT, "def process(:\n")
        with pytest.raises(PopperError, match="failed to load"):
            run_postprocess(tmp_path, results)

    def test_bad_return_type(self, tmp_path, results):
        write_text(
            tmp_path / PROCESS_SCRIPT,
            "def process(results):\n    return 42\n",
        )
        with pytest.raises(PopperError, match="must return"):
            run_postprocess(tmp_path, results)

    def test_bad_figure_name(self, tmp_path, results):
        write_text(
            tmp_path / PROCESS_SCRIPT,
            "def process(results):\n    return {'a/b': results}\n",
        )
        with pytest.raises(PopperError, match="bad figure name"):
            run_postprocess(tmp_path, results)

    def test_pipeline_writes_template_figure(self, repo):
        repo.add_experiment("torpor", "myexp")
        write_text(
            repo.experiment_dir("myexp") / "vars.yml",
            "runner: torpor-variability\nruns: 2\nseed: 7\n",
        )
        result = ExperimentPipeline(repo, "myexp").run()
        assert "figure" in result.figures
        figure = MetricsTable.load_csv(repo.experiment_dir("myexp") / "figure.csv")
        assert set(figure.columns) == {"class", "speedup"}


class TestBaselineGate:
    SPEC = {"machine": "cloudlab-c220g1", "max_deviation": 0.15}

    def test_first_run_stores_profile(self, tmp_path):
        fresh, message = check_baseline(tmp_path, self.SPEC)
        assert fresh and "stored new baseline" in message
        assert (tmp_path / BASELINE_FILE).is_file()

    def test_matching_environment_passes(self, tmp_path):
        check_baseline(tmp_path, self.SPEC)
        fresh, message = check_baseline(tmp_path, self.SPEC)
        assert not fresh and "matches" in message

    def test_drifted_environment_refused(self, tmp_path):
        check_baseline(tmp_path, self.SPEC)
        stored = json.loads((tmp_path / BASELINE_FILE).read_text())
        # sabotage: claim the CPU stressors used to run 2x faster
        for name in list(stored["rates"]):
            stored["rates"][name] *= 2.0
        (tmp_path / BASELINE_FILE).write_text(json.dumps(stored))
        with pytest.raises(PopperError, match="cannot be reproduced"):
            check_baseline(tmp_path, self.SPEC)

    def test_spec_validation(self, tmp_path):
        with pytest.raises(PopperError, match="machine"):
            check_baseline(tmp_path, {})
        with pytest.raises(PopperError, match="max_deviation"):
            check_baseline(tmp_path, {"machine": "ec2-m4", "max_deviation": 5})

    def test_pipeline_integration(self, repo):
        repo.add_experiment("torpor", "myexp")
        write_text(
            repo.experiment_dir("myexp") / "vars.yml",
            "runner: torpor-variability\n"
            "runs: 2\nseed: 7\n"
            "baseline:\n  machine: cloudlab-c220g1\n  max_deviation: 0.15\n",
        )
        result = ExperimentPipeline(repo, "myexp").run()
        assert "baseline" in result.stage_seconds
        assert "stored new baseline" in result.baseline_message
        # second run validates against the stored profile
        again = ExperimentPipeline(repo, "myexp").run()
        assert "matches" in again.baseline_message

    def test_pipeline_aborts_on_drift(self, repo):
        repo.add_experiment("torpor", "myexp")
        write_text(
            repo.experiment_dir("myexp") / "vars.yml",
            "runner: torpor-variability\n"
            "runs: 2\nseed: 7\n"
            "baseline:\n  machine: cloudlab-c220g1\n",
        )
        ExperimentPipeline(repo, "myexp").run()
        profile_path = repo.experiment_dir("myexp") / BASELINE_FILE
        stored = json.loads(profile_path.read_text())
        for name in list(stored["rates"]):
            stored["rates"][name] *= 3.0
        profile_path.write_text(json.dumps(stored))
        with pytest.raises(PopperError, match="refusing to run"):
            ExperimentPipeline(repo, "myexp").run()
