"""`popper run` through the execution engine: -j, --strict, error recovery."""

import pytest

from repro.core.cli import main
from repro.core.repo import PopperRepository


@pytest.fixture
def repo_dir(tmp_path):
    path = tmp_path / "mypaper-repo"
    path.mkdir()
    assert main(["-C", str(path), "init"]) == 0
    return path


def add_torpor(repo_dir, name, vars_text=None):
    assert main(["-C", str(repo_dir), "add", "torpor", name]) == 0
    if vars_text is not None:
        (repo_dir / "experiments" / name / "vars.yml").write_text(vars_text)
    return repo_dir / "experiments" / name


class TestStrictForwarding:
    """The --strict flag must reach ExperimentPipeline.run."""

    def test_strict_failure_reported_and_exit_1(self, repo_dir, capsys):
        exp = add_torpor(
            repo_dir, "myexp", "runner: torpor-variability\nruns: 2\nseed: 7\n"
        )
        (exp / "validations.aver").write_text("expect speedup > 1000\n")
        assert main(["-C", str(repo_dir), "run", "--strict", "myexp"]) == 1
        out = capsys.readouterr().out
        assert "myexp: VALIDATION FAILED (strict)" in out

    def test_strict_marks_journal_validation_failed(self, repo_dir):
        from repro.monitor.journal import read_journal

        exp = add_torpor(
            repo_dir, "myexp", "runner: torpor-variability\nruns: 2\nseed: 7\n"
        )
        (exp / "validations.aver").write_text("expect speedup > 1000\n")
        main(["-C", str(repo_dir), "run", "--strict", "myexp"])
        events = read_journal(exp / "journal.jsonl")
        assert events[-1]["status"] == "validation-failed"

    def test_strict_passing_run_still_exits_0(self, repo_dir):
        add_torpor(
            repo_dir, "myexp", "runner: torpor-variability\nruns: 2\nseed: 7\n"
        )
        assert main(["-C", str(repo_dir), "run", "--strict", "myexp"]) == 0


class TestSweepErrorRecovery:
    """One broken experiment must not abort `popper run --all`."""

    def setup_sweep(self, repo_dir):
        add_torpor(
            repo_dir, "broken", "runner: no-such-runner\nseed: 7\n"
        )
        add_torpor(
            repo_dir, "healthy", "runner: torpor-variability\nruns: 2\nseed: 7\n"
        )

    def test_sweep_continues_past_errored_experiment(self, repo_dir, capsys):
        self.setup_sweep(repo_dir)
        assert main(["-C", str(repo_dir), "run", "--all"]) == 2
        out = capsys.readouterr().out
        assert "broken: ERRORED" in out
        assert "healthy" in out and "result rows, ok" in out
        results = repo_dir / "experiments" / "healthy" / "results.csv"
        assert results.is_file()

    def test_errored_beats_validation_failure_in_exit_code(self, repo_dir, capsys):
        self.setup_sweep(repo_dir)
        failing = repo_dir / "experiments" / "healthy" / "validations.aver"
        failing.write_text("expect speedup > 1000\n")
        assert main(["-C", str(repo_dir), "run", "--all"]) == 2

    def test_validation_failure_alone_exits_1(self, repo_dir):
        add_torpor(
            repo_dir, "healthy", "runner: torpor-variability\nruns: 2\nseed: 7\n"
        )
        failing = repo_dir / "experiments" / "healthy" / "validations.aver"
        failing.write_text("expect speedup > 1000\n")
        assert main(["-C", str(repo_dir), "run", "--all"]) == 1


class TestParallelSweep:
    def test_jobs_flag_runs_all_experiments(self, repo_dir, capsys):
        for name in ("one", "two", "three"):
            add_torpor(
                repo_dir,
                name,
                "runner: torpor-variability\nruns: 2\nseed: 7\n",
            )
        assert main(["-C", str(repo_dir), "run", "--all", "-j", "3"]) == 0
        out = capsys.readouterr().out
        for name in ("one", "two", "three"):
            assert f"-- {name}:" in out
            exp = repo_dir / "experiments" / name
            assert (exp / "results.csv").is_file()
            assert (exp / "journal.jsonl").is_file()

    def test_parallel_journals_are_not_cross_contaminated(self, repo_dir):
        from repro.monitor.journal import read_journal

        for name in ("one", "two"):
            add_torpor(
                repo_dir,
                name,
                "runner: torpor-variability\nruns: 2\nseed: 7\n",
            )
        assert main(["-C", str(repo_dir), "run", "--all", "-j", "2"]) == 0
        for name in ("one", "two"):
            events = read_journal(
                repo_dir / "experiments" / name / "journal.jsonl"
            )
            assert events[0]["event"] == "run_start"
            assert events[0]["experiment"] == name
            assert events[-1]["event"] == "run_end"
            assert events[-1]["status"] == "ok"
            seqs = [e["seq"] for e in events]
            assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_bad_jobs_value_rejected(self, repo_dir, capsys):
        add_torpor(repo_dir, "myexp")
        assert main(["-C", str(repo_dir), "run", "-j", "0", "myexp"]) == 2
        assert "--jobs" in capsys.readouterr().err


class TestParallelCi:
    def test_ci_with_jobs_passes(self, repo_dir, capsys):
        assert main(["-C", str(repo_dir), "ci", "-j", "2"]) == 0
        out = capsys.readouterr().out
        assert "build #1" in out and "build: passing" in out

    def test_parallel_ci_matches_serial_verdict(self, repo_dir):
        (repo_dir / ".travis.yml").write_text(
            "env:\n"
            "  - CHECK=layout\n"
            "  - CHECK=layout2\n"
            "script:\n"
            "  - popper check\n"
        )
        repo = PopperRepository.open(repo_dir)
        repo.vcs.add_all()
        repo.vcs.commit("matrix ci")
        assert main(["-C", str(repo_dir), "ci"]) == 0
        assert main(["-C", str(repo_dir), "ci", "-j", "2"]) == 0
