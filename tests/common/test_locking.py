"""Inter-process locking: RepoLock semantics, holder metadata, the
ScopedLock naming convention."""

import json
import os
import subprocess
import sys
import threading

import pytest

from repro.common.errors import LockError, LockTimeout
from repro.common.locking import LockInfo, RepoLock, ScopedLock


class TestAcquireRelease:
    def test_context_manager_round_trip(self, tmp_path):
        lock = RepoLock(tmp_path / "x.lock")
        assert not lock.held
        with lock:
            assert lock.held
        assert not lock.held

    def test_release_clears_metadata(self, tmp_path):
        """An empty lock file is the 'released cleanly' marker doctor
        trusts; holder metadata must not outlive the hold."""
        lock = RepoLock(tmp_path / "x.lock", label="unit")
        with lock:
            assert lock.holder() is not None
        assert (tmp_path / "x.lock").read_bytes() == b""
        assert lock.holder() is None

    def test_release_without_acquire_raises(self, tmp_path):
        lock = RepoLock(tmp_path / "x.lock")
        with pytest.raises(LockError, match="not held"):
            lock.release()

    def test_reentrant_per_instance(self, tmp_path):
        lock = RepoLock(tmp_path / "x.lock")
        with lock:
            with lock:
                assert lock.held
            # Inner release must not drop the outer hold.
            assert lock.held
        assert not lock.held

    def test_creates_parent_directories(self, tmp_path):
        lock = RepoLock(tmp_path / "a" / "b" / "x.lock")
        with lock:
            assert lock.path.is_file()


class TestHolderMetadata:
    def test_holder_names_this_process(self, tmp_path):
        lock = RepoLock(tmp_path / "x.lock", label="sweeper")
        with lock:
            info = lock.holder()
            assert info is not None
            assert info.pid == os.getpid()
            assert info.label == "sweeper"
            assert info.host == os.uname().nodename
            assert info.alive()

    def test_dead_holder_is_not_alive(self, tmp_path):
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        info = LockInfo(pid=proc.pid, host=os.uname().nodename, label="", created=1.0)
        assert not info.alive()

    def test_foreign_host_assumed_alive(self):
        info = LockInfo(pid=1, host="some-other-box", label="", created=1.0)
        assert info.alive()

    def test_from_json_rejects_garbage(self):
        assert LockInfo.from_json("not json") is None
        assert LockInfo.from_json(json.dumps({"host": "x"})) is None
        info = LockInfo.from_json(json.dumps({"pid": 7}))
        assert info is not None and info.pid == 7


class TestContention:
    def test_second_instance_times_out_and_names_holder(self, tmp_path):
        path = tmp_path / "x.lock"
        held = RepoLock(path, label="first")
        other = RepoLock(path, label="second", timeout_s=0.1, poll_s=0.01)
        with held:
            with pytest.raises(LockTimeout, match="held by pid"):
                other.acquire()
        # Once the first holder lets go the same instance succeeds.
        with other:
            assert other.held

    def test_blocked_thread_proceeds_after_release(self, tmp_path):
        path = tmp_path / "x.lock"
        order = []
        first = RepoLock(path)
        second = RepoLock(path, poll_s=0.005)
        first.acquire()

        def contender():
            with second:
                order.append("second")

        thread = threading.Thread(target=contender)
        thread.start()
        order.append("first")
        first.release()
        thread.join(timeout=5)
        assert order == ["first", "second"]

    def test_exclusion_against_another_process(self, tmp_path):
        """A child process cannot take the lock while we hold it."""
        path = tmp_path / "x.lock"
        probe = (
            "import sys\n"
            "from repro.common.errors import LockTimeout\n"
            "from repro.common.locking import RepoLock\n"
            "lock = RepoLock(sys.argv[1], timeout_s=0.2, poll_s=0.01)\n"
            "try:\n"
            "    lock.acquire()\n"
            "except LockTimeout:\n"
            "    sys.exit(9)\n"
            "sys.exit(0)\n"
        )
        with RepoLock(path):
            held = subprocess.run([sys.executable, "-c", probe, str(path)])
            assert held.returncode == 9
        free = subprocess.run([sys.executable, "-c", probe, str(path)])
        assert free.returncode == 0


class TestScopedLock:
    def test_layout_is_locks_directory(self, tmp_path):
        lock = ScopedLock(tmp_path / ".pvcs", "store")
        assert lock.path == tmp_path / ".pvcs" / "locks" / "store.lock"
        assert lock.label == "store"

    @pytest.mark.parametrize("scope", ["", "a/b", ".hidden"])
    def test_bad_scopes_rejected(self, tmp_path, scope):
        with pytest.raises(LockError, match="bad lock scope"):
            ScopedLock(tmp_path / ".pvcs", scope)
