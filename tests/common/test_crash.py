"""Deterministic crash injection: plan grammar, hit counting, seeding,
and the process-wide install hook."""

import pytest

from repro.common.crash import (
    EXIT_CRASH,
    CrashPlan,
    SimulatedCrash,
    active_crash_plan,
    crashpoint,
    install_crash_plan,
)
from repro.common.errors import EngineError


@pytest.fixture(autouse=True)
def no_leftover_plan():
    """Crash plans are process-global; never leak one across tests."""
    yield
    install_crash_plan(None)


class TestGrammar:
    def test_parse_round_trips(self):
        plan = CrashPlan.parse("at:cas.*:2, rate:refs.update:0.5")
        assert plan.describe() == "at:cas.*:2,rate:refs.update:0.5"

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "at:cas.ingest.tmp",  # missing arg
            "boom:cas.*:1",  # unknown mode
            "at::1",  # empty glob
            "at:cas.*:zero",  # non-numeric
            "at:cas.*:0",  # 'at' needs >= 1
            "at:cas.*:1.5",  # 'at' needs an integer
            "rate:cas.*:1.5",  # rate outside [0, 1]
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(EngineError):
            CrashPlan.parse(spec)

    @pytest.mark.parametrize(
        "spec",
        [
            "at:cas.*:nan",  # float('nan') parses; int(nan) explodes
            "at:cas.*:inf",  # OverflowError path
            "at:cas.*:-inf",
            "rate:cas.*:nan",
            "rate:cas.*:inf",
            ":::",
            "at:cas.*:1:extra",
            "at : cas.* : ∞",
            "at:cas.*:0x10",
            "at:cas.*:1e309",  # overflows to inf after float()
            "\x00at:cas.*:1",
        ],
    )
    def test_adversarial_specs_never_traceback(self, spec):
        # The fuzzer feeds these verbatim: every garbled spec must be
        # refused with a clean EngineError, never a ValueError /
        # OverflowError escaping the parser.
        with pytest.raises(EngineError):
            CrashPlan.parse(spec)

    def test_describe_parse_round_trip_is_stable(self):
        plan = CrashPlan.parse("at:cas.*:2, rate:refs.update:0.25")
        again = CrashPlan.parse(plan.describe())
        assert again.describe() == plan.describe()


class TestAtClauses:
    def test_nth_hit_crashes(self):
        plan = CrashPlan.parse("at:cas.ingest.tmp:3")
        plan.check("cas.ingest.tmp")
        plan.check("cas.ingest.tmp")
        with pytest.raises(SimulatedCrash) as excinfo:
            plan.check("cas.ingest.tmp")
        assert excinfo.value.point == "cas.ingest.tmp"
        assert excinfo.value.hit == 3

    def test_glob_matches_site_family(self):
        plan = CrashPlan.parse("at:cas.*:1")
        plan.check("refs.update")  # no match, no count
        with pytest.raises(SimulatedCrash):
            plan.check("cas.ingest.publish")

    def test_simulated_crash_evades_except_exception(self):
        """Recovery paths catch Exception; an injected kill must not be
        absorbed by them, exactly like a real one would not be."""
        assert not issubclass(SimulatedCrash, Exception)
        plan = CrashPlan.parse("at:x:1")
        with pytest.raises(SimulatedCrash):
            try:
                plan.check("x")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("SimulatedCrash was absorbed by except Exception")


class TestRateClauses:
    def collect(self, seed):
        plan = CrashPlan.parse("rate:site:0.5", seed=seed)
        fired = []
        for hit in range(40):
            try:
                plan.check("site")
            except SimulatedCrash:
                fired.append(hit)
        return fired

    def test_same_seed_same_crashes(self):
        assert self.collect(7) == self.collect(7)

    def test_different_seed_different_crashes(self):
        assert self.collect(7) != self.collect(8)

    def test_rate_zero_never_fires(self):
        plan = CrashPlan.parse("rate:site:0")
        for _ in range(50):
            plan.check("site")

    def test_rate_one_always_fires(self):
        plan = CrashPlan.parse("rate:site:1")
        with pytest.raises(SimulatedCrash):
            plan.check("site")


class TestInstall:
    def test_crashpoint_is_noop_without_plan(self):
        assert active_crash_plan() is None
        crashpoint("cas.ingest.tmp")  # must not raise

    def test_install_returns_previous_for_restore(self):
        first = CrashPlan.parse("at:a:1")
        second = CrashPlan.parse("at:b:1")
        assert install_crash_plan(first) is None
        assert install_crash_plan(second) is first
        assert install_crash_plan(None) is second
        assert active_crash_plan() is None

    def test_installed_plan_fires_through_crashpoint(self):
        install_crash_plan(CrashPlan.parse("at:site:1"))
        with pytest.raises(SimulatedCrash):
            crashpoint("site")

    def test_exit_code_is_sysexits_software(self):
        # 70 is EX_SOFTWARE; the CLI contract tested end to end in
        # tests/integration/test_crash_recovery.py.
        assert EXIT_CRASH == 70
