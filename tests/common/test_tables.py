"""Tests for the MetricsTable columnar container."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.tables import MetricsTable


@pytest.fixture
def table():
    t = MetricsTable(["machine", "nodes", "time"])
    t.extend(
        [
            {"machine": "cloudlab", "nodes": 1, "time": 100.0},
            {"machine": "cloudlab", "nodes": 2, "time": 60.0},
            {"machine": "cloudlab", "nodes": 4, "time": 40.0},
            {"machine": "ec2", "nodes": 1, "time": 120.0},
            {"machine": "ec2", "nodes": 2, "time": 75.0},
        ]
    )
    return t


class TestConstruction:
    def test_append_sequence_row(self):
        t = MetricsTable(["a", "b"])
        t.append([1, 2])
        assert t[0] == {"a": 1, "b": 2}

    def test_append_wrong_length(self):
        t = MetricsTable(["a", "b"])
        with pytest.raises(ValueError):
            t.append([1])

    def test_append_unknown_column(self):
        t = MetricsTable(["a"])
        with pytest.raises(KeyError):
            t.append({"z": 1})

    def test_missing_keys_become_none(self):
        t = MetricsTable(["a", "b"])
        t.append({"a": 1})
        assert t[0]["b"] is None

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            MetricsTable(["a", "a"])

    def test_from_records_unions_keys(self):
        t = MetricsTable.from_records([{"a": 1}, {"b": 2}])
        assert t.columns == ["a", "b"]
        assert t.to_records() == [{"a": 1, "b": None}, {"a": None, "b": 2}]


class TestAccess:
    def test_column(self, table):
        assert table.column("nodes") == [1, 2, 4, 1, 2]

    def test_unknown_column(self, table):
        with pytest.raises(KeyError):
            table.column("nope")

    def test_numeric(self, table):
        np.testing.assert_allclose(
            table.numeric("time"), [100.0, 60.0, 40.0, 120.0, 75.0]
        )

    def test_numeric_none_is_nan(self):
        t = MetricsTable(["x"])
        t.append({"x": None})
        assert np.isnan(t.numeric("x")[0])

    def test_numeric_rejects_strings(self, table):
        with pytest.raises(TypeError):
            table.numeric("machine")

    def test_distinct_order(self, table):
        assert table.distinct("machine") == ["cloudlab", "ec2"]


class TestRelational:
    def test_where_equals(self, table):
        sub = table.where_equals(machine="ec2")
        assert len(sub) == 2
        assert all(r["machine"] == "ec2" for r in sub)

    def test_where_equals_unknown_column(self, table):
        with pytest.raises(KeyError):
            table.where_equals(bogus=1)

    def test_where_predicate(self, table):
        assert len(table.where(lambda r: r["time"] < 70)) == 2

    def test_select(self, table):
        sub = table.select("nodes", "time")
        assert sub.columns == ["nodes", "time"]
        assert "machine" not in sub[0]

    def test_sort_by(self, table):
        ordered = table.sort_by("time")
        assert ordered.column("time") == sorted(table.column("time"))

    def test_sort_does_not_mutate(self, table):
        before = table.column("time")
        table.sort_by("time", reverse=True)
        assert table.column("time") == before

    def test_group_by(self, table):
        groups = table.group_by("machine")
        assert set(groups) == {("cloudlab",), ("ec2",)}
        assert len(groups[("cloudlab",)]) == 3

    def test_aggregate_mean(self, table):
        agg = table.aggregate(["machine"], "time")
        by_machine = {r["machine"]: r["time"] for r in agg}
        assert by_machine["ec2"] == pytest.approx(97.5)

    def test_aggregate_custom_func(self, table):
        agg = table.aggregate(["machine"], "time", func=np.min, output="best")
        by_machine = {r["machine"]: r["best"] for r in agg}
        assert by_machine["cloudlab"] == 40.0

    def test_with_column(self, table):
        t2 = table.with_column("run", list(range(len(table))))
        assert t2.column("run") == [0, 1, 2, 3, 4]
        assert "run" not in table.columns

    def test_with_column_length_mismatch(self, table):
        with pytest.raises(ValueError):
            table.with_column("run", [1])

    def test_concat(self, table):
        both = table.concat(table)
        assert len(both) == 2 * len(table)

    def test_concat_mismatched(self, table):
        with pytest.raises(ValueError):
            table.concat(MetricsTable(["x"]))


class TestCsv:
    def test_round_trip(self, table):
        again = MetricsTable.from_csv(table.to_csv())
        assert again == table

    def test_types_recovered(self):
        t = MetricsTable(["i", "f", "b", "s", "n"])
        t.append({"i": 3, "f": 1.5, "b": True, "s": "xy", "n": None})
        again = MetricsTable.from_csv(t.to_csv())
        assert again[0] == {"i": 3, "f": 1.5, "b": True, "s": "xy", "n": None}

    def test_file_round_trip(self, table, tmp_path):
        path = tmp_path / "results.csv"
        table.save_csv(path)
        assert MetricsTable.load_csv(path) == table

    def test_empty_csv_rejected(self):
        with pytest.raises(ValueError):
            MetricsTable.from_csv("")

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            MetricsTable.from_csv("a,b\n1\n")


from repro.common.tables import _coerce  # noqa: E402

_cell = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    # Strings that survive the type-recovery pass unchanged (e.g. not
    # "false", "42", or whitespace-padded — those are ambiguous in CSV).
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz ,'\"-_",
        max_size=12,
    ).filter(lambda s: _coerce(s) == s),
)


@given(
    rows=st.lists(
        st.tuples(_cell, _cell, _cell),
        max_size=12,
    )
)
def test_csv_round_trip_property(rows):
    t = MetricsTable(["a", "b", "c"])
    for row in rows:
        t.append(list(row))
    assert MetricsTable.from_csv(t.to_csv()) == t
