"""Tests for deterministic RNG derivation and content hashing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import hashing, rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert rng.derive_seed(7, "a", 1) == rng.derive_seed(7, "a", 1)

    def test_labels_matter(self):
        assert rng.derive_seed(7, "a") != rng.derive_seed(7, "b")

    def test_root_matters(self):
        assert rng.derive_seed(7, "a") != rng.derive_seed(8, "a")

    def test_label_order_matters(self):
        assert rng.derive_seed(7, "a", "b") != rng.derive_seed(7, "b", "a")

    def test_nonnegative_63bit(self):
        seed = rng.derive_seed(123456789, "x")
        assert 0 <= seed < 2**63

    def test_rng_streams_reproducible(self):
        a = rng.derive_rng(1, "net").standard_normal(8)
        b = rng.derive_rng(1, "net").standard_normal(8)
        np.testing.assert_array_equal(a, b)

    def test_streams_independent(self):
        a = rng.derive_rng(1, "net").standard_normal(8)
        b = rng.derive_rng(1, "cpu").standard_normal(8)
        assert not np.allclose(a, b)


class TestSeedFactory:
    def test_child_namespacing(self):
        factory = rng.SeedSequenceFactory(42)
        child = factory.child("gassyfs")
        assert child.seed("node", 0) == rng.SeedSequenceFactory(
            factory.seed("gassyfs")
        ).seed("node", 0)

    def test_child_differs_from_parent(self):
        factory = rng.SeedSequenceFactory(42)
        assert factory.seed("x") != factory.child("x").seed("x")


class TestHashing:
    def test_text_matches_bytes(self):
        assert hashing.sha256_text("abc") == hashing.sha256_bytes(b"abc")

    def test_known_vector(self):
        assert (
            hashing.sha256_text("")
            == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_file_hash(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"payload")
        assert hashing.sha256_file(path) == hashing.sha256_bytes(b"payload")

    def test_stream_matches_whole(self):
        data = b"0123456789" * 1000
        chunks = [data[i : i + 997] for i in range(0, len(data), 997)]
        assert hashing.sha256_stream(chunks) == hashing.sha256_bytes(data)

    def test_short_id(self):
        digest = hashing.sha256_text("x")
        assert hashing.short_id(digest) == digest[:12]
        assert hashing.short_id(digest, 7) == digest[:7]

    def test_short_id_too_short(self):
        with pytest.raises(ValueError):
            hashing.short_id("abcd", 3)

    def test_combine_order_sensitive(self):
        a = hashing.sha256_text("a")
        b = hashing.sha256_text("b")
        assert hashing.combine_digests([a, b]) != hashing.combine_digests([b, a])

    @given(st.binary(max_size=64))
    def test_digest_is_hex64(self, payload):
        digest = hashing.sha256_bytes(payload)
        assert len(digest) == 64
        int(digest, 16)
