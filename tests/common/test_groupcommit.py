"""GroupCommitWriter: write-through visibility, window triggers, batch
mode, and the crash-injection degradation that keeps torn-tail
semantics deterministic."""

import json

import pytest

from repro.common.crash import CrashPlan, SimulatedCrash, install_crash_plan
from repro.common.groupcommit import GroupCommitWriter


@pytest.fixture
def path(tmp_path):
    return tmp_path / "events.jsonl"


class TestWriteThrough:
    def test_lines_visible_before_flush(self, path):
        with GroupCommitWriter(path, durable=True) as writer:
            writer.append('{"n": 1}')
            # The write already reached the kernel: a killed process
            # loses nothing, only the fsync barrier is deferred.
            assert path.read_text() == '{"n": 1}\n'

    def test_appends_reject_embedded_newlines(self, path):
        with GroupCommitWriter(path) as writer:
            with pytest.raises(ValueError):
                writer.append("two\nlines")

    def test_fresh_truncates_and_append_grows(self, path):
        path.write_text("stale\n")
        with GroupCommitWriter(path, fresh=True) as writer:
            writer.append("a")
        assert path.read_text() == "a\n"
        with GroupCommitWriter(path) as writer:
            writer.append("b")
        assert path.read_text() == "a\nb\n"

    def test_closed_writer_rejects_appends(self, path):
        writer = GroupCommitWriter(path)
        writer.close()
        assert writer.closed
        with pytest.raises(ValueError):
            writer.append("late")


class TestWindows:
    def test_syncs_amortized_across_event_window(self, path):
        with GroupCommitWriter(path, durable=True, max_events=10) as writer:
            for i in range(25):
                writer.append(json.dumps({"n": i}))
        # 25 appends, window of 10: two full windows plus the close's
        # flush of the remainder — not 25 barriers.
        assert writer.appends == 25
        assert writer.syncs == 3
        assert writer.commits == 3
        assert len(path.read_text().splitlines()) == 25

    def test_time_trigger_commits_an_aged_window(self, path):
        now = [0.0]
        writer = GroupCommitWriter(
            path, durable=True, max_delay_s=0.5, clock=lambda: now[0]
        )
        writer.append("a")
        assert writer.syncs == 0
        now[0] = 1.0  # the window is past its deadline at the next append
        writer.append("b")
        assert writer.syncs == 1
        writer.close()

    def test_non_durable_never_syncs(self, path):
        with GroupCommitWriter(path, durable=False, max_events=2) as writer:
            for i in range(10):
                writer.append(str(i))
        assert writer.syncs == 0
        assert len(path.read_text().splitlines()) == 10

    def test_explicit_flush_commits_the_open_window(self, path):
        writer = GroupCommitWriter(path, durable=True)
        writer.append("span event")
        assert writer.pending() == 1
        writer.flush()
        assert writer.pending() == 0
        assert writer.syncs == 1
        writer.flush()  # idempotent: nothing pending, no extra barrier
        assert writer.syncs == 1
        writer.close()


class TestBatched:
    def test_batch_buffers_then_lands_on_exit(self, path):
        with GroupCommitWriter(path, durable=True) as writer:
            with writer.batched():
                writer.append("a")
                writer.append("b")
                assert writer.in_batch
                assert path.read_text() == ""  # buffered, not written
            assert path.read_text() == "a\nb\n"
        assert writer.syncs == 1

    def test_batch_window_bound_still_commits(self, path):
        with GroupCommitWriter(path, durable=True, max_events=3) as writer:
            with writer.batched():
                for i in range(7):
                    writer.append(str(i))
        assert writer.syncs == 3  # two full windows + the closing partial
        assert len(path.read_text().splitlines()) == 7

    def test_batches_nest(self, path):
        with GroupCommitWriter(path, durable=True) as writer:
            with writer.batched():
                writer.append("outer")
                with writer.batched():
                    writer.append("inner")
                assert path.read_text() == ""  # only the outermost commits
            assert len(path.read_text().splitlines()) == 2
        assert writer.syncs == 1


class TestCrashInjection:
    def test_window_crashpoint_loses_the_event_whole(self, path):
        install_crash_plan(CrashPlan.parse("at:journal.append.window:1"))
        try:
            writer = GroupCommitWriter(path, durable=True)
            with pytest.raises(SimulatedCrash):
                writer.append('{"doomed": true}')
        finally:
            install_crash_plan(None)
        # The window crash fires before any byte lands: no tear, the
        # event is simply absent — nothing for the doctor to repair.
        assert path.read_text() == ""
        writer.close()

    def test_torn_crashpoint_keeps_legacy_half_line(self, path):
        line = '{"event": "span_end", "span": "stage"}'
        install_crash_plan(CrashPlan.parse("at:journal.append.torn:2"))
        try:
            writer = GroupCommitWriter(path, durable=True)
            writer.append('{"event": "run_start"}')
            with pytest.raises(SimulatedCrash):
                writer.append(line)
        finally:
            install_crash_plan(None)
        raw = path.read_text()
        # Exactly the first record plus half of the doomed line — the
        # same bytes the pre-group-commit journal_append left, so every
        # existing torn-tail test and doctor repair stays valid.
        assert raw == '{"event": "run_start"}\n' + line[: len(line) // 2]
        writer.close()
        assert path.read_text() == raw  # close() must not un-tear the file

    def test_crash_plan_degrades_batches_to_per_line_windows(self, path):
        install_crash_plan(CrashPlan.parse("at:no.such.point:1"))
        try:
            with GroupCommitWriter(path, durable=True) as writer:
                with writer.batched():
                    writer.append("a")
                    # Determinism beats batching while a plan is live:
                    # the line must be on disk at the same moment it
                    # would have been without group commit.
                    assert path.read_text() == "a\n"
        finally:
            install_crash_plan(None)

    def test_custom_label_scopes_the_crashpoints(self, path):
        install_crash_plan(CrashPlan.parse("at:fuzz.coverage.window:1"))
        try:
            journal = GroupCommitWriter(path, crash_label="journal.append")
            journal.append("safe")  # other label: plan does not match
            journal.close()
            coverage = GroupCommitWriter(
                path.with_name("cov.jsonl"), crash_label="fuzz.coverage"
            )
            with pytest.raises(SimulatedCrash):
                coverage.append("doomed")
            coverage.close()
        finally:
            install_crash_plan(None)
