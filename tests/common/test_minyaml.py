"""Unit and property tests for the built-in YAML-subset parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import minyaml
from repro.common.errors import YamlError


class TestScalars:
    def test_int(self):
        assert minyaml.loads("x: 42") == {"x": 42}

    def test_negative_int(self):
        assert minyaml.loads("x: -7") == {"x": -7}

    def test_float(self):
        assert minyaml.loads("x: 3.25") == {"x": 3.25}

    def test_scientific(self):
        assert minyaml.loads("x: 1e-3") == {"x": 1e-3}

    def test_bool_variants(self):
        doc = minyaml.loads("a: true\nb: False\nc: yes\nd: off")
        assert doc == {"a": True, "b": False, "c": True, "d": False}

    def test_null_variants(self):
        doc = minyaml.loads("a: null\nb: ~\nc:")
        assert doc == {"a": None, "b": None, "c": None}

    def test_plain_string(self):
        assert minyaml.loads("x: hello world") == {"x": "hello world"}

    def test_single_quoted(self):
        assert minyaml.loads("x: 'a: b #c'") == {"x": "a: b #c"}

    def test_single_quote_escape(self):
        assert minyaml.loads("x: 'it''s'") == {"x": "it's"}

    def test_double_quoted_escapes(self):
        assert minyaml.loads(r'x: "a\nb\tc"') == {"x": "a\nb\tc"}

    def test_unknown_escape_rejected(self):
        with pytest.raises(YamlError):
            minyaml.loads(r'x: "\q"')

    def test_quoted_number_stays_string(self):
        assert minyaml.loads("x: '42'") == {"x": "42"}


class TestCollections:
    def test_nested_mapping(self):
        doc = minyaml.loads("a:\n  b:\n    c: 1\n  d: 2")
        assert doc == {"a": {"b": {"c": 1}, "d": 2}}

    def test_sequence_of_scalars(self):
        assert minyaml.loads("- 1\n- 2\n- three") == [1, 2, "three"]

    def test_mapping_with_sequence_value(self):
        doc = minyaml.loads("xs:\n  - 1\n  - 2")
        assert doc == {"xs": [1, 2]}

    def test_sequence_same_indent_as_key(self):
        # Common Travis style: list items at the same indent as the key.
        doc = minyaml.loads("script:\n- make\n- make test")
        assert doc == {"script": ["make", "make test"]}

    def test_sequence_of_mappings(self):
        doc = minyaml.loads("- name: a\n  value: 1\n- name: b\n  value: 2")
        assert doc == [
            {"name": "a", "value": 1},
            {"name": "b", "value": 2},
        ]

    def test_deep_nesting(self):
        doc = minyaml.loads(
            "hosts:\n"
            "  - name: node0\n"
            "    tags:\n"
            "      - head\n"
            "      - storage\n"
            "  - name: node1\n"
            "    tags: []\n"
        )
        assert doc == {
            "hosts": [
                {"name": "node0", "tags": ["head", "storage"]},
                {"name": "node1", "tags": []},
            ]
        }

    def test_flow_list(self):
        assert minyaml.loads("x: [1, 2, a b]") == {"x": [1, 2, "a b"]}

    def test_flow_mapping(self):
        assert minyaml.loads("x: {a: 1, b: two}") == {"x": {"a": 1, "b": "two"}}

    def test_nested_flow(self):
        assert minyaml.loads("x: [[1, 2], {a: [3]}]") == {"x": [[1, 2], {"a": [3]}]}

    def test_empty_flow(self):
        assert minyaml.loads("a: []\nb: {}") == {"a": [], "b": {}}

    def test_comments_ignored(self):
        doc = minyaml.loads("# header\na: 1  # trailing\n# footer\nb: 2")
        assert doc == {"a": 1, "b": 2}

    def test_literal_block(self):
        doc = minyaml.loads("script: |\n  line one\n  line two\nafter: 1")
        assert doc == {"script": "line one\nline two\n", "after": 1}

    def test_literal_block_chomped(self):
        doc = minyaml.loads("script: |-\n  single")
        assert doc == {"script": "single"}


class TestDocuments:
    def test_empty_stream(self):
        assert minyaml.loads("") is None
        assert minyaml.loads("\n# only a comment\n") is None

    def test_multi_document(self):
        docs = minyaml.load_all("a: 1\n---\nb: 2\n---\n- 3")
        assert docs == [{"a": 1}, {"b": 2}, [3]]

    def test_multi_document_via_loads_rejected(self):
        with pytest.raises(YamlError):
            minyaml.loads("a: 1\n---\nb: 2")

    def test_leading_document_separator(self):
        assert minyaml.loads("---\na: 1") == {"a": 1}


class TestErrors:
    def test_duplicate_key(self):
        with pytest.raises(YamlError, match="duplicate"):
            minyaml.loads("a: 1\na: 2")

    def test_tab_indent(self):
        with pytest.raises(YamlError, match="tab"):
            minyaml.loads("a:\n\tb: 1")

    def test_bad_indentation(self):
        with pytest.raises(YamlError):
            minyaml.loads("a: 1\n   b: 2")

    def test_unterminated_flow(self):
        with pytest.raises(YamlError):
            minyaml.loads("x: [1, 2")

    def test_unterminated_quote(self):
        with pytest.raises(YamlError):
            minyaml.loads("x: 'oops")

    def test_error_carries_line_number(self):
        with pytest.raises(YamlError) as info:
            minyaml.loads("a: 1\nb: 2\nb: 3")
        assert info.value.line == 3


class TestFileRoundTrip:
    def test_file_io(self, tmp_path):
        doc = {"name": "exp", "params": [1, 2, 3], "nested": {"k": "v"}}
        path = tmp_path / "doc.yml"
        minyaml.dump_file(doc, path)
        assert minyaml.load_file(path) == doc


# ---------------------------------------------------------------------------
# Property-based round-trip: dumps(x) parses back to x.
# ---------------------------------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(
        alphabet=st.characters(
            blacklist_categories=("Cs", "Cc"),
            max_codepoint=0x2FF,
        ),
        max_size=24,
    ),
)

_keys = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_0123456789",
    min_size=1,
    max_size=12,
)

_documents = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(_keys, children, max_size=4),
    ),
    max_leaves=20,
)


@given(doc=st.one_of(st.dictionaries(_keys, _documents, max_size=4),
                     st.lists(_documents, max_size=4)))
def test_dump_load_round_trip(doc):
    assert minyaml.loads(minyaml.dumps(doc)) == doc
