"""Edge-case coverage across the common and substrate layers."""

import pytest

from repro.common import minyaml
from repro.common.errors import VcsError, YamlError
from repro.common.fsutil import atomic_write, walk_files
from repro.common.units import format_size


class TestMinyamlEdges:
    def test_explicit_end_of_document(self):
        docs = minyaml.load_all("a: 1\n...\nb: 2\n")
        assert docs == [{"a": 1}, {"b": 2}]

    def test_literal_block_inside_nested_mapping(self):
        doc = minyaml.loads(
            "outer:\n  script: |\n    line1\n    line2\n  after: ok\n"
        )
        assert doc == {"outer": {"script": "line1\nline2\n", "after": "ok"}}

    def test_hex_integers(self):
        assert minyaml.loads("x: 0x10") == {"x": 16}

    def test_colon_without_space_is_plain_scalar(self):
        assert minyaml.loads("url: http://host:8080/path") == {
            "url": "http://host:8080/path"
        }

    def test_comment_hash_inside_plain_scalar(self):
        # '#' only starts a comment after whitespace
        assert minyaml.loads("tag: a#b") == {"tag": "a#b"}

    def test_deeply_nested_sequences(self):
        doc = minyaml.loads("- - - 1\n- 2\n")
        assert doc == [[[1]], 2]

    def test_dump_special_strings_quoted(self):
        for value in ("true", "123", "- dash", "a: b", ""):
            assert minyaml.loads(minyaml.dumps({"k": value})) == {"k": value}

    def test_error_offset_information(self):
        try:
            minyaml.loads("x: [1,")
        except YamlError as exc:
            assert "flow" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected YamlError")


class TestFsUtil:
    def test_atomic_write_replaces(self, tmp_path):
        target = tmp_path / "deep" / "file.bin"
        atomic_write(target, b"one")
        atomic_write(target, b"two")
        assert target.read_bytes() == b"two"
        assert not target.with_name(target.name + ".tmp").exists()

    def test_walk_files_sorted(self, tmp_path):
        for name in ("b/z.txt", "b/a.txt", "a.txt"):
            path = tmp_path / name
            path.parent.mkdir(exist_ok=True)
            path.write_text("x")
        rels = [p.relative_to(tmp_path).as_posix() for p in walk_files(tmp_path)]
        assert rels == ["a.txt", "b/a.txt", "b/z.txt"]


class TestUnitsEdges:
    def test_format_size_boundaries(self):
        assert format_size(1023) == "1023B"
        assert format_size(1024) == "1.0KiB"
        assert format_size(1024**4) == "1.0TiB"


class TestIndexConflicts:
    def test_file_directory_conflict_detected(self, tmp_path):
        from repro.vcs.index import Index
        from repro.vcs.objects import Blob
        from repro.vcs.store import ObjectStore

        store = ObjectStore(tmp_path / "objects")
        oid = store.put(Blob(b"x"))
        index = Index(tmp_path / "index")
        index.stage("a", oid)
        index.stage("a/b", oid)
        with pytest.raises(VcsError, match="conflict"):
            index.build_tree(store)

    def test_illegal_paths_rejected(self, tmp_path):
        from repro.vcs.index import Index

        index = Index(tmp_path / "index")
        for bad in ("", "/abs", "a/../b", "a//b", "."):
            with pytest.raises(VcsError):
                index.stage(bad, "0" * 64)


class TestRefEdges:
    def test_branch_name_validation(self, tmp_path):
        from repro.vcs.refs import RefStore

        refs = RefStore(tmp_path)
        for bad in ("", "-lead", "a..b", "name/", "sp ace"):
            with pytest.raises(VcsError):
                refs.write_branch(bad, "0" * 64)

    def test_delete_checked_out_branch_refused(self, tmp_path):
        from repro.vcs.repository import Repository

        repo = Repository.init(tmp_path / "r")
        (repo.root / "f").write_text("x")
        repo.add("f")
        repo.commit("c")
        with pytest.raises(VcsError, match="checked-out"):
            repo.refs.delete_branch("main")

    def test_delete_other_branch(self, tmp_path):
        from repro.vcs.repository import Repository

        repo = Repository.init(tmp_path / "r")
        (repo.root / "f").write_text("x")
        repo.add("f")
        repo.commit("c")
        repo.branch("dev")
        repo.refs.delete_branch("dev")
        assert repo.refs.branches() == ["main"]


class TestCIConfigEdges:
    def test_matrix_include_dict_form(self):
        from repro.ci.config import CIConfig

        config = CIConfig.from_yaml(
            "env: [A=1]\n"
            "matrix:\n"
            "  include:\n"
            "    - env: B=2\n"
            "script: [t]\n"
        )
        jobs = config.expand_matrix()
        assert {"B": "2"} in jobs
