"""Tests for unit parsing/formatting."""

import pytest

from repro.common import units


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4GiB", 4 * units.GiB),
            ("512MiB", 512 * units.MiB),
            ("1kb", 1000),
            ("1KiB", 1024),
            ("2.5GiB", int(2.5 * units.GiB)),
            (4096, 4096),
            ("0b", 0),
            ("3", 3),
        ],
    )
    def test_values(self, text, expected):
        assert units.parse_size(text) == expected

    def test_unknown_unit(self):
        with pytest.raises(ValueError):
            units.parse_size("3parsecs")

    def test_garbage(self):
        with pytest.raises(ValueError):
            units.parse_size("lots")


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("250us", 250e-6),
            ("1.5ms", 1.5e-3),
            ("2s", 2.0),
            ("3min", 180.0),
            ("1h", 3600.0),
            (0.5, 0.5),
            ("10ns", 10e-9),
        ],
    )
    def test_values(self, text, expected):
        assert units.parse_duration(text) == pytest.approx(expected)

    def test_unknown_unit(self):
        with pytest.raises(ValueError):
            units.parse_duration("3fortnights")


class TestParseRate:
    def test_bits(self):
        assert units.parse_rate("10Gbit/s") == pytest.approx(10e9 / 8)

    def test_bytes(self):
        assert units.parse_rate("1.2GiB/s") == pytest.approx(1.2 * units.GiB)

    def test_plain_number(self):
        assert units.parse_rate(100.0) == 100.0

    def test_bare_bytes_unit(self):
        assert units.parse_rate("100MB") == pytest.approx(100e6)

    def test_unknown(self):
        with pytest.raises(ValueError):
            units.parse_rate("5furlong/s")


class TestFormat:
    def test_format_size(self):
        assert units.format_size(4 * units.GiB) == "4.0GiB"
        assert units.format_size(10) == "10B"

    @pytest.mark.parametrize(
        "value,text",
        [
            (2e-9, "2.0ns"),
            (5e-6, "5.0us"),
            (1.5e-3, "1.5ms"),
            (2.5, "2.50s"),
            (200, "3m20s"),
            (7200, "2h0m"),
        ],
    )
    def test_format_duration(self, value, text):
        assert units.format_duration(value) == text

    def test_negative_duration(self):
        assert units.format_duration(-2.5) == "-2.50s"
