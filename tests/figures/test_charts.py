"""Tests for ASCII/SVG chart rendering."""

import pytest

from repro.common.tables import MetricsTable
from repro.figures import (
    FigureError,
    Series,
    bar_chart_ascii,
    bar_chart_svg,
    line_chart_ascii,
    line_chart_svg,
    series_from_table,
)


@pytest.fixture
def scaling_table():
    table = MetricsTable(["machine", "nodes", "time"])
    for machine in ("cloudlab", "ec2"):
        for nodes in (1, 2, 4, 8):
            table.append(
                {"machine": machine, "nodes": nodes, "time": 40.0 / nodes}
            )
    return table


class TestSeries:
    def test_from_table_grouped(self, scaling_table):
        series = series_from_table(scaling_table, "nodes", "time", group="machine")
        assert [s.label for s in series] == ["cloudlab", "ec2"]
        assert series[0].x == (1.0, 2.0, 4.0, 8.0)

    def test_from_table_ungrouped(self, scaling_table):
        series = series_from_table(scaling_table, "nodes", "time")
        assert len(series) == 1 and len(series[0].x) == 8

    def test_sorted_by_x(self):
        table = MetricsTable(["x", "y"], [{"x": 3, "y": 1}, {"x": 1, "y": 2}])
        (series,) = series_from_table(table, "x", "y")
        assert series.x == (1.0, 3.0)

    def test_validation(self):
        with pytest.raises(FigureError):
            Series("s", (1.0,), (1.0, 2.0))
        with pytest.raises(FigureError):
            Series("s", (), ())


class TestAscii:
    def test_line_chart_renders_all_series(self, scaling_table):
        series = series_from_table(scaling_table, "nodes", "time", group="machine")
        text = line_chart_ascii(series, title="scalability")
        assert "scalability" in text
        assert "a=cloudlab" in text and "b=ec2" in text
        assert "a" in text and "+" in text

    def test_empty_series_rejected(self):
        with pytest.raises(FigureError):
            line_chart_ascii([])

    def test_bar_chart(self):
        text = bar_chart_ascii(["(2.2,2.3]", "(2.3,2.4]"], [10, 1], title="hist")
        assert "hist" in text
        lines = text.splitlines()
        assert lines[1].count("#") > lines[2].count("#")

    def test_bar_chart_validation(self):
        with pytest.raises(FigureError):
            bar_chart_ascii(["a"], [1.0, 2.0])

    def test_constant_series_no_crash(self):
        text = line_chart_ascii([Series("flat", (1.0, 2.0), (5.0, 5.0))])
        assert "flat" in text


class TestSvg:
    def test_line_chart_valid_svg(self, scaling_table):
        series = series_from_table(scaling_table, "nodes", "time", group="machine")
        svg = line_chart_svg(series, title="fig", x_label="nodes", y_label="time")
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert svg.count("<polyline") == 2
        assert "fig" in svg and "nodes" in svg and "time" in svg

    def test_line_chart_parses_as_xml(self, scaling_table):
        import xml.etree.ElementTree as ET

        series = series_from_table(scaling_table, "nodes", "time", group="machine")
        root = ET.fromstring(line_chart_svg(series))
        assert root.tag.endswith("svg")

    def test_bar_chart_valid_svg(self):
        import xml.etree.ElementTree as ET

        svg = bar_chart_svg(["a", "b", "c"], [3.0, 1.0, 2.0], title="hist")
        root = ET.fromstring(svg)
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        assert len(rects) == 4  # background + 3 bars

    def test_bar_heights_proportional(self):
        svg = bar_chart_svg(["big", "small"], [10.0, 5.0])
        import re

        heights = [
            float(m)
            for m in re.findall(r'height="([\d.]+)" fill="#', svg)
        ]
        assert heights[0] == pytest.approx(2 * heights[1], rel=0.01)

    def test_empty_rejected(self):
        with pytest.raises(FigureError):
            line_chart_svg([])
        with pytest.raises(FigureError):
            bar_chart_svg([], [])
