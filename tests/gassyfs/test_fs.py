"""Functional tests for GassyFS: POSIX semantics, placement, capacity."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import FSError, GassyFSError
from repro.gassyfs.fs import GassyFS, MountOptions
from repro.gassyfs.gasnet import GasnetCluster
from repro.gassyfs.placement import LocalFirst, RoundRobin, make_policy
from repro.platform.sites import Site


def make_fs(nodes=4, **options):
    site = Site("t", "cloudlab-c220g1", capacity=nodes)
    cluster = GasnetCluster(site.allocate(nodes))
    return GassyFS(cluster, options=MountOptions(**options))


class TestDirectories:
    def test_mkdir_readdir(self):
        fs = make_fs()
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        assert fs.readdir("/") == ["a"]
        assert fs.readdir("/a") == ["b"]

    def test_mkdir_duplicate(self):
        fs = make_fs()
        fs.mkdir("/a")
        with pytest.raises(FSError, match="EEXIST"):
            fs.mkdir("/a")

    def test_mkdir_missing_parent(self):
        fs = make_fs()
        with pytest.raises(FSError, match="ENOENT"):
            fs.mkdir("/ghost/child")

    def test_rmdir(self):
        fs = make_fs()
        fs.mkdir("/a")
        fs.rmdir("/a")
        assert fs.readdir("/") == []

    def test_rmdir_nonempty(self):
        fs = make_fs()
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        with pytest.raises(FSError, match="ENOTEMPTY"):
            fs.rmdir("/a")

    def test_relative_path_rejected(self):
        fs = make_fs()
        with pytest.raises(FSError, match="EINVAL"):
            fs.mkdir("relative")

    def test_dotdot_rejected(self):
        fs = make_fs()
        with pytest.raises(FSError, match="EINVAL"):
            fs.mkdir("/a/../b")


class TestFiles:
    def test_write_read_round_trip(self):
        fs = make_fs(block_size=1024)
        fs.create("/f.bin")
        payload = bytes(range(256)) * 20  # spans multiple blocks
        fs.write("/f.bin", payload)
        assert fs.read("/f.bin") == payload

    def test_overwrite_replaces(self):
        fs = make_fs()
        fs.create("/f")
        fs.write("/f", b"first")
        fs.write("/f", b"second!")
        assert fs.read("/f") == b"second!"

    def test_append(self):
        fs = make_fs(block_size=4)
        fs.create("/f")
        fs.write("/f", b"abcd")
        fs.write("/f", b"efgh", append=True)
        assert fs.read("/f") == b"abcdefgh"

    def test_create_duplicate(self):
        fs = make_fs()
        fs.create("/f")
        with pytest.raises(FSError, match="EEXIST"):
            fs.create("/f")

    def test_read_missing(self):
        fs = make_fs()
        with pytest.raises(FSError, match="ENOENT"):
            fs.read("/ghost")

    def test_read_directory_rejected(self):
        fs = make_fs()
        fs.mkdir("/d")
        with pytest.raises(FSError, match="EISDIR"):
            fs.read("/d")

    def test_unlink_frees_capacity(self):
        fs = make_fs(block_size=1024)
        fs.create("/f")
        fs.write("/f", b"x" * 8192)
        used_before = fs.statfs()["used_bytes"]
        fs.unlink("/f")
        assert fs.statfs()["used_bytes"] == used_before - 8192
        assert not fs.exists("/f")

    def test_truncate(self):
        fs = make_fs()
        fs.create("/f")
        fs.write("/f", b"data")
        fs.truncate("/f")
        assert fs.read("/f") == b""
        assert fs.stat("/f").size == 0

    def test_rename(self):
        fs = make_fs()
        fs.create("/old")
        fs.write("/old", b"payload")
        fs.mkdir("/dir")
        fs.rename("/old", "/dir/new")
        assert fs.read("/dir/new") == b"payload"
        assert not fs.exists("/old")

    def test_rename_onto_existing_rejected(self):
        fs = make_fs()
        fs.create("/a")
        fs.create("/b")
        with pytest.raises(FSError, match="EEXIST"):
            fs.rename("/a", "/b")

    def test_stat(self):
        fs = make_fs(block_size=1024)
        fs.create("/f")
        fs.write("/f", b"z" * 3000)
        st_ = fs.stat("/f")
        assert st_.size == 3000 and st_.blocks == 3 and not st_.is_dir
        assert fs.stat("/").is_dir

    @settings(
        suppress_health_check=[HealthCheck.function_scoped_fixture],
        deadline=None,
        max_examples=25,
    )
    @given(payload=st.binary(max_size=5000), block=st.integers(min_value=1, max_value=512))
    def test_round_trip_property(self, payload, block):
        fs = make_fs(nodes=3, block_size=block)
        fs.create("/p")
        fs.write("/p", payload)
        assert fs.read("/p") == payload


class TestPlacementAndCapacity:
    def test_round_robin_stripes(self):
        fs = make_fs(nodes=4, block_size=100)
        fs.create("/f")
        fs.write("/f", b"x" * 400)
        assert fs.block_locations("/f") == [0, 1, 2, 3]

    def test_local_first_fills_client(self):
        site = Site("t", "cloudlab-c220g1", capacity=4)
        cluster = GasnetCluster(site.allocate(4))
        fs = GassyFS(
            cluster,
            options=MountOptions(block_size=100, segment_bytes=250),
            policy=LocalFirst(),
        )
        fs.create("/f")
        fs.write("/f", b"x" * 400)
        locations = fs.block_locations("/f")
        assert locations[0] == 0 and locations[1] == 0  # client fills first
        assert any(l != 0 for l in locations[2:])       # then spills

    def test_enospc(self):
        fs = make_fs(nodes=2, block_size=1024, segment_bytes=1024)
        fs.create("/f")
        with pytest.raises(FSError, match="ENOSPC"):
            fs.write("/f", b"x" * 4096)

    def test_aggregate_capacity_grows_with_nodes(self):
        small = make_fs(nodes=2, segment_bytes=1 << 20)
        large = make_fs(nodes=8, segment_bytes=1 << 20)
        assert large.statfs()["capacity_bytes"] == 4 * small.statfs()["capacity_bytes"]

    def test_policy_factory(self):
        for name in ("round-robin", "local-first", "hash", "least-used"):
            assert make_policy(name).name == name
        with pytest.raises(GassyFSError):
            make_policy("quantum")

    def test_hash_placement_deterministic(self):
        a = make_policy("hash")
        b = make_policy("hash")
        used, cap = [0] * 4, [1 << 30] * 4
        assert [a.place(i, 0, used, cap) for i in range(16)] == [
            b.place(i, 0, used, cap) for i in range(16)
        ]

    def test_mount_options_validated(self):
        with pytest.raises(GassyFSError):
            MountOptions(block_size=0)
        with pytest.raises(GassyFSError):
            MountOptions(block_size=1024, segment_bytes=512)


class TestTimeAccounting:
    def test_clock_advances(self):
        fs = make_fs()
        fs.create("/f")
        before = fs.clock
        fs.write("/f", b"x" * (1 << 20))
        assert fs.clock > before

    def test_remote_read_slower_than_local(self):
        site = Site("t", "cloudlab-c220g1", capacity=2)
        cluster = GasnetCluster(site.allocate(2))
        fs = GassyFS(
            cluster,
            options=MountOptions(block_size=1 << 20),
            policy=LocalFirst(),
        )
        fs.create("/local")
        fs.write("/local", b"x" * (1 << 20), rank=0)
        fs.read("/local", rank=0)
        local = fs.last_op_elapsed
        fs.read("/local", rank=1)  # block lives on node 0
        remote = fs.last_op_elapsed
        assert remote > local

    def test_metrics_recorded(self):
        from repro.monitor.metrics import MetricStore

        store = MetricStore()
        site = Site("t", "cloudlab-c220g1", capacity=2)
        fs = GassyFS(GasnetCluster(site.allocate(2)), metrics=store)
        fs.create("/f")
        fs.write("/f", b"data")
        fs.read("/f")
        ops = set(store.to_table("gassyfs.op_latency").column("op"))
        assert {"create", "write", "read"} <= ops

    def test_checkpoint_cost_scales_with_data(self):
        fs = make_fs(nodes=4, block_size=1 << 20)
        fs.create("/small")
        fs.write("/small", b"x" * (1 << 20))
        small = fs.checkpoint()
        fs.create("/big")
        fs.write("/big", b"x" * (8 << 20))
        big = fs.checkpoint()
        assert big > small


class TestGasnet:
    def test_transfer_cost_components(self):
        site = Site("t", "cloudlab-c220g1", capacity=2)
        cluster = GasnetCluster(site.allocate(2))
        small = cluster.transfer_time(0, 1, 1)
        large = cluster.transfer_time(0, 1, 1 << 24)
        assert small > 0 and large > small

    def test_local_transfer_cheaper(self):
        site = Site("t", "cloudlab-c220g1", capacity=2)
        cluster = GasnetCluster(site.allocate(2))
        assert cluster.transfer_time(0, 0, 1 << 20) < cluster.transfer_time(0, 1, 1 << 20)

    def test_stats_updated(self):
        site = Site("t", "cloudlab-c220g1", capacity=2)
        cluster = GasnetCluster(site.allocate(2))
        cluster.put(0, 1, 1000)
        cluster.get(0, 1, 500)
        assert cluster.stats[0].bytes_out == 1000
        assert cluster.stats[1].bytes_in == 1000
        assert cluster.stats[1].bytes_out == 500
        assert cluster.total_remote_bytes() == 1500

    def test_rank_bounds(self):
        site = Site("t", "cloudlab-c220g1", capacity=2)
        cluster = GasnetCluster(site.allocate(2))
        with pytest.raises(GassyFSError):
            cluster.put(0, 5, 10)

    def test_oversubscription_slows_big_clusters(self):
        site = Site("t", "cloudlab-c220g1", capacity=8)
        flat = GasnetCluster(site.allocate(4), oversubscription=0.0)
        congested = GasnetCluster(site.allocate(4), oversubscription=0.2)
        assert congested.transfer_time(0, 1, 1 << 24) > flat.transfer_time(0, 1, 1 << 24)

    def test_empty_cluster_rejected(self):
        with pytest.raises(GassyFSError):
            GasnetCluster([])


class TestReplication:
    def _fs(self, replicas, nodes=4, block=1024, segment=1 << 20):
        site = Site("r", "cloudlab-c220g1", capacity=nodes)
        return GassyFS(
            GasnetCluster(site.allocate(nodes)),
            options=MountOptions(
                block_size=block, segment_bytes=segment, replicas=replicas
            ),
        )

    def test_replicas_validated(self):
        with pytest.raises(GassyFSError):
            MountOptions(replicas=0)

    def test_replicated_blocks_use_more_capacity(self):
        single = self._fs(1)
        double = self._fs(2)
        for fs in (single, double):
            fs.create("/f")
            fs.write("/f", b"x" * 4096)
        assert double.statfs()["used_bytes"] == 2 * single.statfs()["used_bytes"]

    def test_read_survives_single_failure_with_replicas(self):
        fs = self._fs(2)
        payload = bytes(range(256)) * 16
        fs.create("/f")
        fs.write("/f", payload)
        lost = fs.fail_node(1)
        assert lost == 0  # every block has a surviving replica
        assert fs.read("/f") == payload

    def test_unreplicated_fails_replicated_survives(self):
        for replicas, expect_ok in ((1, False), (2, True)):
            fs = self._fs(replicas)
            fs.create("/f")
            fs.write("/f", b"z" * 4096)
            fs.fail_node(0 if 0 in set(fs.block_locations("/f")) else 1)
            if expect_ok:
                assert fs.read("/f") == b"z" * 4096
            else:
                with pytest.raises(FSError, match="EIO"):
                    fs.read("/f")

    def test_replicas_capped_by_cluster_size(self):
        fs = self._fs(8, nodes=2)  # requests 8 copies, cluster has 2
        fs.create("/f")
        fs.write("/f", b"x" * 2048)
        # each block is on both nodes, no more
        ranks, _ = fs._blocks[0]
        assert len(ranks) == 2 and len(set(ranks)) == 2

    def test_write_cost_grows_with_replication(self):
        single = self._fs(1)
        triple = self._fs(3)
        for fs in (single, triple):
            fs.create("/f")
        single.write("/f", b"x" * (1 << 16))
        t1 = single.last_op_elapsed
        triple.write("/f", b"x" * (1 << 16))
        t3 = triple.last_op_elapsed
        assert t3 > t1

    def test_enospc_when_replicas_dont_fit(self):
        fs = self._fs(2, nodes=2, block=1024, segment=1024)
        fs.create("/f")
        with pytest.raises(FSError, match="ENOSPC"):
            fs.write("/f", b"x" * 2048)  # 2 blocks x 2 replicas > capacity
