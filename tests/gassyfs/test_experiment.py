"""Tests for GassyFS workloads and the scalability experiment."""

import pytest

from repro.aver import check
from repro.common.errors import GassyFSError
from repro.common.rng import SeedSequenceFactory
from repro.gassyfs.experiment import (
    ScalabilityConfig,
    run_point,
    run_scalability_experiment,
)
from repro.gassyfs.fs import GassyFS, MountOptions
from repro.gassyfs.gasnet import GasnetCluster
from repro.gassyfs.workloads import GIT_COMPILE, CompileWorkload, SequentialIO
from repro.platform.sites import Site, default_sites


@pytest.fixture(scope="module")
def results():
    config = ScalabilityConfig(node_counts=(1, 2, 4, 8), sites=("cloudlab-wisc", "ec2"))
    return run_scalability_experiment(config)


def small_workload():
    return CompileWorkload(
        name="tiny", files=24, source_kib=8, object_kib=8,
        compile_ops=2e8, configure_ops=5e8, link_ops=1e9,
    )


class TestWorkloads:
    def test_materialize_creates_tree(self):
        site = Site("t", "cloudlab-c220g1", capacity=2)
        fs = GassyFS(GasnetCluster(site.allocate(2)))
        workload = small_workload()
        workload.materialize_sources(fs, SeedSequenceFactory(1).rng("m"))
        assert len(fs.readdir("/src")) == workload.files

    def test_run_returns_positive_time(self):
        site = Site("t", "cloudlab-c220g1", capacity=2)
        fs = GassyFS(GasnetCluster(site.allocate(2)))
        workload = small_workload()
        workload.materialize_sources(fs, SeedSequenceFactory(1).rng("m"))
        assert workload.run(fs, SeedSequenceFactory(1)) > 0

    def test_jobs_per_node_validated(self):
        site = Site("t", "cloudlab-c220g1", capacity=1)
        fs = GassyFS(GasnetCluster(site.allocate(1)))
        workload = small_workload()
        workload.materialize_sources(fs, SeedSequenceFactory(1).rng("m"))
        with pytest.raises(GassyFSError):
            workload.run(fs, SeedSequenceFactory(1), jobs_per_node=0)

    def test_sequential_io(self):
        site = Site("t", "cloudlab-c220g1", capacity=4)
        fs = GassyFS(GasnetCluster(site.allocate(4)))
        write_t, read_t = SequentialIO(total_bytes=1 << 24).run(
            fs, SeedSequenceFactory(3)
        )
        assert write_t > 0 and read_t > 0


class TestScalabilityExperiment:
    def test_figure_shape_monotone_decreasing(self, results):
        """Fig gassyfs-git: runtime falls as nodes grow, on every platform."""
        for machine in results.distinct("machine"):
            sub = results.where_equals(machine=machine).sort_by("nodes")
            times = sub.column("time")
            assert all(a > b for a, b in zip(times, times[1:]))

    def test_figure_shape_diminishing_returns(self, results):
        """Speedup per doubling shrinks (the curve flattens)."""
        sub = results.where_equals(machine="cloudlab-wisc").sort_by("nodes")
        times = sub.column("time")
        gains = [a / b for a, b in zip(times, times[1:])]
        assert gains[0] > gains[-1]
        assert all(g < 2.05 for g in gains)

    def test_listing3_assertion_passes(self, results):
        """The paper's Aver assertion validates the generated results."""
        result = check(
            "when workload=* and machine=* expect sublinear(nodes,time)", results
        )
        assert result.passed

    def test_ec2_slower_than_cloudlab(self, results):
        cl = results.where_equals(machine="cloudlab-wisc", nodes=1).column("time")[0]
        ec2 = results.where_equals(machine="ec2", nodes=1).column("time")[0]
        assert ec2 > cl  # hypervisor tax + slower clock

    def test_deterministic(self):
        config = ScalabilityConfig(
            node_counts=(1, 2),
            sites=("cloudlab-wisc",),
            workloads=(small_workload(),),
        )
        a = run_scalability_experiment(config)
        b = run_scalability_experiment(config)
        assert a.column("time") == b.column("time")

    def test_run_point_single(self):
        sites = default_sites(1)
        config = ScalabilityConfig(workloads=(small_workload(),))
        elapsed = run_point(
            sites["cloudlab-wisc"], 2, small_workload(), config, SeedSequenceFactory(1)
        )
        assert elapsed > 0

    def test_bad_config_rejected(self):
        with pytest.raises(GassyFSError):
            ScalabilityConfig(node_counts=())
        with pytest.raises(GassyFSError):
            run_scalability_experiment(
                ScalabilityConfig(sites=("atlantis",))
            )


class TestMultiWorkloadSweep:
    def test_gassyfs_runner_two_workloads(self):
        """The runner sweeps several workloads in one experiment, like the
        paper repository's gassyfs experiment does."""
        from repro.core.runners import run_experiment_runner

        table = run_experiment_runner(
            "gassyfs-scaling",
            {
                "workloads": ["git-compile", "kernel-build"],
                "workload_scale": 0.05,
                "node_counts": [1, 2],
                "sites": ["cloudlab-wisc"],
                "seed": 5,
            },
        )
        assert set(table.column("workload")) == {"git-compile", "kernel-build"}
        assert check(
            "when workload=* and machine=* expect sublinear(nodes,time)", table
        ).passed

    def test_unknown_workload_rejected(self):
        from repro.common.errors import PopperError
        from repro.core.runners import run_experiment_runner

        with pytest.raises(PopperError, match="unknown gassyfs workload"):
            run_experiment_runner(
                "gassyfs-scaling", {"workloads": ["doom-compile"]}
            )
