"""Tests for numerical reproducibility checking and GassyFS fault story."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.stats import check_numerical, digest_output


class TestDigest:
    def test_array_digest_exact(self):
        a = np.arange(10, dtype=np.float64)
        b = np.arange(10, dtype=np.float64)
        assert digest_output(a) == digest_output(b)
        b[3] += 1e-15
        assert digest_output(a) != digest_output(b)

    def test_dtype_matters(self):
        a = np.arange(4, dtype=np.float32)
        b = np.arange(4, dtype=np.float64)
        assert digest_output(a) != digest_output(b)

    def test_table_digest(self):
        from repro.common.tables import MetricsTable

        t1 = MetricsTable(["a"], [{"a": 1}])
        t2 = MetricsTable(["a"], [{"a": 1}])
        assert digest_output(t1) == digest_output(t2)


class TestCheckNumerical:
    def test_deterministic_simulation_reproduces_across_machines(self):
        """The paper's example: the same simulation on distinct platforms
        yields identical numbers — true here because workload *results*
        (not timings) are pure functions of the seed."""
        from repro.weather import generate_air_temperature

        def simulation(env):
            return generate_air_temperature(
                seed=7, lat_step=15.0, lon_step=30.0
            ).data

        report = check_numerical(
            simulation,
            {"x86-haswell": "cloudlab-c220g1", "arm-m400": "cloudlab-m400"},
        )
        assert report.reproducible
        assert "reproducible across 2" in report.describe()

    def test_divergence_detected_and_attributed(self):
        def flaky(env):
            return np.array([1.0, 2.0, 3.0 + (0.1 if env == "bad" else 0.0)])

        report = check_numerical(
            flaky, {"ref": "ref", "ok": "ok", "bad": "bad"}
        )
        assert not report.reproducible
        assert report.divergent_pairs == [("ref", "bad")]
        assert "DIVERGENCE" in report.describe()

    def test_empty_environments_rejected(self):
        with pytest.raises(ReproError):
            check_numerical(lambda e: 1, {})


class TestGassyFSFaults:
    def _fs(self):
        from repro.common.rng import SeedSequenceFactory
        from repro.gassyfs import GassyFS, GasnetCluster, MountOptions
        from repro.gassyfs.placement import RoundRobin
        from repro.platform.sites import Site

        site = Site("f", "cloudlab-c220g1", capacity=4,
                    seeds=SeedSequenceFactory(3))
        return GassyFS(
            GasnetCluster(site.allocate(4)),
            options=MountOptions(block_size=1024),
            policy=RoundRobin(),
        )

    def test_node_failure_loses_blocks(self):
        from repro.common.errors import FSError

        fs = self._fs()
        fs.create("/f")
        fs.write("/f", bytes(range(256)) * 16)  # 4 blocks across 4 nodes
        lost = fs.fail_node(1)
        assert lost >= 1
        with pytest.raises(FSError, match="EIO"):
            fs.read("/f")

    def test_checkpoint_restore_survives_failure(self, tmp_path):
        fs = self._fs()
        payload = bytes(range(256)) * 16
        fs.mkdir("/data")
        fs.create("/data/f.bin")
        fs.write("/data/f.bin", payload)
        image = tmp_path / "fs.ckpt"
        fs.checkpoint(str(image))
        fs.fail_node(1)
        elapsed = fs.restore(str(image))
        assert elapsed > 0
        assert fs.read("/data/f.bin") == payload

    def test_unlink_after_failure_does_not_crash(self):
        fs = self._fs()
        fs.create("/f")
        fs.write("/f", b"x" * 4096)
        fs.fail_node(0)
        fs.unlink("/f")  # must tolerate already-lost blocks
        assert not fs.exists("/f")

    def test_failed_rank_validated(self):
        from repro.common.errors import GassyFSError

        fs = self._fs()
        with pytest.raises(GassyFSError):
            fs.fail_node(9)
