"""Tests for controlled/statistical/naive comparison methods."""

import numpy as np
import pytest

from repro.common.rng import derive_rng
from repro.platform.perfmodel import KernelDemand
from repro.platform.sites import default_sites
from repro.stats import (
    ComparisonError,
    controlled_comparison,
    demand_runner,
    naive_comparison,
    required_runs,
    sample_across_environments,
    statistical_comparison,
)


def noisy(mean, n, cov=0.05, label="x"):
    rng = derive_rng(17, "cmp", label, str(mean))
    return mean * (1.0 + cov * rng.standard_normal(n))


class TestControlled:
    def test_exact_ratio(self):
        estimate = controlled_comparison(10.0, 5.0)
        assert estimate.point == estimate.low == estimate.high == 2.0
        assert estimate.significant

    def test_slower_system(self):
        estimate = controlled_comparison(5.0, 10.0)
        assert estimate.point == 0.5
        assert "slower" in estimate.claim()

    def test_validation(self):
        with pytest.raises(ComparisonError):
            controlled_comparison(-1.0, 2.0)


class TestStatistical:
    def test_detects_real_speedup(self):
        a = noisy(10.0, 20, label="a")
        b = noisy(5.0, 20, label="b")
        estimate = statistical_comparison(a, b, seed=1)
        assert estimate.significant
        assert estimate.low < 2.0 < estimate.high or abs(estimate.point - 2.0) < 0.2
        assert "faster" in estimate.claim()

    def test_indistinguishable_systems(self):
        a = noisy(10.0, 15, label="same-a")
        b = noisy(10.0, 15, label="same-b")
        estimate = statistical_comparison(a, b, seed=1)
        assert not estimate.significant
        assert "indistinguishable" in estimate.claim()

    def test_interval_contains_point(self):
        a = noisy(12.0, 10, label="p-a")
        b = noisy(8.0, 10, label="p-b")
        estimate = statistical_comparison(a, b, seed=2)
        assert estimate.low <= estimate.point <= estimate.high

    def test_higher_confidence_wider_interval(self):
        a = noisy(10.0, 12, label="w-a")
        b = noisy(7.0, 12, label="w-b")
        narrow = statistical_comparison(a, b, confidence=0.80, seed=3)
        wide = statistical_comparison(a, b, confidence=0.99, seed=3)
        assert (wide.high - wide.low) > (narrow.high - narrow.low)

    def test_sample_minimum(self):
        with pytest.raises(ComparisonError):
            statistical_comparison([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_confidence_validation(self):
        a = noisy(10.0, 5, label="c-a")
        with pytest.raises(ComparisonError):
            statistical_comparison(a, a, confidence=1.5)

    def test_deterministic_given_seed(self):
        a = noisy(10.0, 8, label="d-a")
        b = noisy(9.0, 8, label="d-b")
        one = statistical_comparison(a, b, seed=5)
        two = statistical_comparison(a, b, seed=5)
        assert (one.low, one.high) == (two.low, two.high)


class TestNaive:
    def test_point_is_mean_ratio(self):
        a = [10.0, 12.0]
        b = [5.0, 6.0]
        estimate = naive_comparison(a, b)
        assert estimate.point == pytest.approx(2.0)
        assert estimate.method == "naive-mean-ratio"

    def test_naive_overconfident_vs_bootstrap(self):
        """The methodological point: with few same-machine runs, the naive
        interval is far narrower than a defensible bootstrap interval over
        heterogeneous environments with the same nominal means."""
        a_homogeneous = noisy(10.0, 10, cov=0.01, label="n-a")
        b_homogeneous = noisy(9.0, 10, cov=0.01, label="n-b")
        naive = naive_comparison(a_homogeneous, b_homogeneous)
        a_heterogeneous = noisy(10.0, 10, cov=0.15, label="h-a")
        b_heterogeneous = noisy(9.0, 10, cov=0.15, label="h-b")
        honest = statistical_comparison(a_heterogeneous, b_heterogeneous, seed=7)
        assert (naive.high - naive.low) < (honest.high - honest.low)


class TestRequiredRuns:
    def test_more_noise_more_runs(self):
        assert required_runs(0.10, 0.05) > required_runs(0.02, 0.05)

    def test_smaller_effect_more_runs(self):
        assert required_runs(0.05, 0.01) > required_runs(0.05, 0.10)

    def test_typical_value_sane(self):
        # 3% cov, want to resolve 5% difference: a handful of runs.
        assert 3 <= required_runs(0.03, 0.05) <= 30

    def test_validation(self):
        with pytest.raises(ComparisonError):
            required_runs(0.0, 0.1)
        with pytest.raises(ComparisonError):
            required_runs(0.1, 0.1, confidence=0.3)


class TestEnvironmentSampling:
    def test_samples_across_sites(self):
        sites = default_sites(9)
        workload = demand_runner(KernelDemand(ops=5e9, working_set_kib=64))
        samples = sample_across_environments(
            workload, sites, runs_per_site=3,
            site_names=["cloudlab-wisc", "ec2", "hpc"], seed=4,
        )
        assert samples.shape == (9,)
        assert np.all(samples > 0)

    def test_noisy_site_increases_spread(self):
        sites = default_sites(9)
        workload = demand_runner(KernelDemand(ops=5e9, working_set_kib=64))
        quiet = sample_across_environments(
            workload, sites, runs_per_site=12, site_names=["cloudlab-wisc"], seed=4
        )
        noisy_env = sample_across_environments(
            workload, sites, runs_per_site=12, site_names=["ec2"], seed=4
        )
        assert np.std(noisy_env) / np.mean(noisy_env) > np.std(quiet) / np.mean(quiet)

    def test_unknown_site(self):
        sites = default_sites(9)
        with pytest.raises(Exception):
            sample_across_environments(
                lambda n: 1.0, sites, site_names=["atlantis"]
            )

    def test_end_to_end_claim(self):
        """Compare two 'systems' (different demands) across environments
        and state the paper's sentence."""
        sites = default_sites(9)
        system_a = demand_runner(KernelDemand(ops=2e10, working_set_kib=64))
        system_b = demand_runner(KernelDemand(ops=1e10, working_set_kib=64))
        a = sample_across_environments(
            system_a, sites, runs_per_site=4,
            site_names=["cloudlab-wisc", "ec2", "hpc"], seed=11,
        )
        b = sample_across_environments(
            system_b, sites, runs_per_site=4,
            site_names=["cloudlab-wisc", "ec2", "hpc"], seed=12,
        )
        estimate = statistical_comparison(a, b, seed=1)
        assert estimate.significant and estimate.point > 1.2
        assert "confidence" in estimate.claim()
