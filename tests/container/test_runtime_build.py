"""Tests for the container runtime, shell, package manager and builder."""

import pytest

from repro.common.errors import BuildError
from repro.container.containerfile import ImageBuilder, parse_containerfile
from repro.container.image import Layer, scratch
from repro.container.packaging import (
    BARE_METAL,
    CONTAINER,
    VIRTUAL_MACHINE,
    packaged_time,
)
from repro.container.registry import Registry
from repro.container.runtime import Container, default_binaries


@pytest.fixture
def container():
    return Container(scratch())


class TestShell:
    def test_echo(self, container):
        result = container.run("echo hello world")
        assert result.ok and result.stdout == "hello world\n"

    def test_command_not_found(self, container):
        result = container.run("doesnotexist")
        assert result.exit_code == 127

    def test_and_chain_stops_on_failure(self, container):
        result = container.run("false && echo never")
        assert not result.ok
        assert "never" not in result.stdout

    def test_semicolon_continues(self, container):
        result = container.run("echo a; echo b")
        assert result.stdout == "a\nb\n"

    def test_redirect_creates_file(self, container):
        container.run("echo data > /out.txt")
        assert container.read_file("/out.txt") == b"data\n"

    def test_redirect_append(self, container):
        container.run("echo one > /f; echo two >> /f")
        assert container.read_file("/f") == b"one\ntwo\n"

    def test_cd_and_relative_paths(self, container):
        container.run("cd /work; echo x > out.txt")
        assert container.read_file("/work/out.txt") == b"x\n"

    def test_export_and_expansion(self, container):
        result = container.run("export NAME=world; echo hello $NAME")
        assert result.stdout == "hello world\n"

    def test_test_builtin(self, container):
        container.run("touch /f")
        assert container.run("test -f /f").ok
        assert not container.run("test -f /ghost").ok

    def test_path_normalization(self, container):
        assert container.resolve_path("/a/./b/../c") == "/a/c"
        container.workdir = "/w"
        assert container.resolve_path("x/y") == "/w/x/y"


class TestPackages:
    def test_install_provides_binary(self, container):
        assert container.run("stress-ng --help").exit_code == 127
        assert container.run("pkg install stress-ng").ok
        # stress-ng is provided but has no registered implementation in the
        # default registry; the marker file alone is not enough.
        assert container.read_file("/usr/bin/stress-ng") is not None

    def test_dependencies_resolved(self, container):
        container.run("pkg install gassyfs")
        for pkg in ("gassyfs", "gasnet", "fuse", "gcc", "binutils"):
            assert container.read_file(f"/var/lib/pkg/{pkg}") is not None

    def test_unknown_package(self, container):
        result = container.run("pkg install leftpad")
        assert not result.ok and "unknown package" in result.stderr


class TestOverlay:
    def test_diff_captures_writes(self, container):
        container.run("echo x > /new.txt")
        layer = container.diff(created_by="test")
        assert dict(layer.files)["/new.txt"] == b"x\n"

    def test_diff_captures_deletes_as_tombstones(self):
        base = scratch().with_layer(Layer.from_dict({"/old": b"data"}))
        container = Container(base)
        container.delete_file("/old")
        layer = container.diff()
        from repro.container.image import TOMBSTONE

        assert dict(layer.files)["/old"] == TOMBSTONE

    def test_commit_round_trip(self, container):
        container.run("echo x > /f")
        image = container.commit("snap")
        fresh = Container(image)
        assert fresh.read_file("/f") == b"x\n"

    def test_image_never_mutated(self):
        base = scratch().with_layer(Layer.from_dict({"/f": b"orig"}))
        container = Container(base)
        container.write_file("/f", b"changed")
        assert base.flatten()["/f"] == b"orig"

    def test_mount_read_write(self, tmp_path):
        (tmp_path / "input.csv").write_text("a,b\n1,2\n")
        container = Container(scratch(), mounts={"/data": tmp_path})
        assert container.read_file("/data/input.csv") == b"a,b\n1,2\n"
        container.write_file("/data/results.csv", b"out\n")
        assert (tmp_path / "results.csv").read_text() == "out\n"

    def test_mounted_files_not_in_diff(self, tmp_path):
        container = Container(scratch(), mounts={"/data": tmp_path})
        container.write_file("/data/results.csv", b"x")
        assert len(container.diff()) == 0


class TestContainerfile:
    def test_parse_basic(self):
        ins = parse_containerfile("FROM scratch\nRUN echo hi\n# comment\nENV A=1\n")
        assert [i.op for i in ins] == ["FROM", "RUN", "ENV"]

    def test_parse_continuation(self):
        ins = parse_containerfile("FROM scratch\nRUN echo a && \\\n    echo b\n")
        assert ins[1].args == "echo a && echo b"

    def test_must_start_with_from(self):
        with pytest.raises(BuildError):
            parse_containerfile("RUN echo x\n")

    def test_unknown_instruction(self):
        with pytest.raises(BuildError, match="unknown instruction"):
            parse_containerfile("FROM scratch\nTELEPORT now\n")

    def test_build_end_to_end(self, tmp_path):
        (tmp_path / "run.sh").write_text("echo experiment\n")
        registry = Registry()
        builder = ImageBuilder(registry)
        image = builder.build(
            "FROM scratch\n"
            "RUN pkg install git make gcc\n"
            "COPY run.sh /exp/run.sh\n"
            "ENV MODE=test\n"
            "WORKDIR /exp\n"
            "LABEL popper=true\n"
            "CMD echo done\n",
            context=tmp_path,
            repo="exp",
            tag="v1",
        )
        fs = image.flatten()
        assert "/exp/run.sh" in fs
        assert "/var/lib/pkg/git" in fs
        assert image.config.env_dict()["MODE"] == "test"
        assert image.config.workdir == "/exp"
        assert image.config.labels_dict()["popper"] == "true"
        assert registry.get("exp:v1").digest == image.digest

    def test_build_from_existing_base(self, tmp_path):
        registry = Registry()
        builder = ImageBuilder(registry)
        builder.build("FROM scratch\nRUN pkg install python3\n", repo="base", tag="v1")
        derived = builder.build(
            "FROM base:v1\nRUN pkg install jupyter\n", repo="app", tag="v1"
        )
        fs = derived.flatten()
        assert "/var/lib/pkg/python3" in fs and "/var/lib/pkg/jupyter" in fs

    def test_failed_run_aborts_build(self):
        builder = ImageBuilder(Registry())
        with pytest.raises(BuildError, match="RUN"):
            builder.build("FROM scratch\nRUN nosuchcommand\n")

    def test_missing_base_rejected(self):
        builder = ImageBuilder(Registry())
        with pytest.raises(BuildError):
            builder.build("FROM ghost:v9\nRUN echo x\n")

    def test_builds_reproducible(self, tmp_path):
        text = "FROM scratch\nRUN pkg install make\nENV X=1\n"
        a = ImageBuilder(Registry()).build(text)
        b = ImageBuilder(Registry()).build(text)
        assert a.digest == b.digest


class TestPackagingModel:
    def test_container_overhead_negligible(self):
        base = 100.0
        assert packaged_time(base, CONTAINER, include_startup=False) < base * 1.02

    def test_vm_overhead_significant(self):
        base = 100.0
        vm = packaged_time(base, VIRTUAL_MACHINE, include_startup=False)
        assert vm > base * 1.05

    def test_startup_ordering(self):
        assert BARE_METAL.startup_s < CONTAINER.startup_s < VIRTUAL_MACHINE.startup_s

    def test_image_weight_ordering(self):
        assert CONTAINER.image_size_factor < VIRTUAL_MACHINE.image_size_factor
