"""Tests for layered images and registries."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ContainerError, ImageNotFound
from repro.container.image import TOMBSTONE, Image, ImageConfig, Layer, scratch
from repro.container.registry import Registry, parse_reference


class TestLayer:
    def test_from_dict_sorts(self):
        layer = Layer.from_dict({"/b": b"2", "/a": b"1"})
        assert [p for p, _ in layer.files] == ["/a", "/b"]

    def test_digest_content_sensitive(self):
        a = Layer.from_dict({"/f": b"x"})
        b = Layer.from_dict({"/f": b"y"})
        assert a.digest != b.digest

    def test_digest_includes_provenance(self):
        a = Layer.from_dict({"/f": b"x"}, created_by="RUN a")
        b = Layer.from_dict({"/f": b"x"}, created_by="RUN b")
        assert a.digest != b.digest

    @pytest.mark.parametrize("bad", ["relative", "/a//b", "/a/../b", " /pad"])
    def test_path_validation(self, bad):
        with pytest.raises(ContainerError):
            Layer.from_dict({bad: b""})


class TestImage:
    def test_flatten_later_layer_wins(self):
        image = scratch().with_layer(Layer.from_dict({"/f": b"old"}))
        image = image.with_layer(Layer.from_dict({"/f": b"new", "/g": b"x"}))
        fs = image.flatten()
        assert fs["/f"] == b"new" and fs["/g"] == b"x"

    def test_tombstone_deletes(self):
        image = scratch().with_layer(Layer.from_dict({"/f": b"data"}))
        image = image.with_layer(Layer.from_dict({"/f": TOMBSTONE}))
        assert "/f" not in image.flatten()

    def test_digest_changes_with_layers(self):
        base = scratch()
        derived = base.with_layer(Layer.from_dict({"/f": b"x"}))
        assert base.digest != derived.digest
        assert derived.parent_digest == base.digest

    def test_digest_changes_with_config(self):
        base = scratch()
        other = Image(base.layers, ImageConfig(workdir="/app"))
        assert base.digest != other.digest

    def test_size_excludes_tombstones(self):
        image = scratch().with_layer(
            Layer.from_dict({"/f": b"abcd", "/g": TOMBSTONE})
        )
        assert image.size_bytes() == 4

    def test_config_env_and_labels(self):
        config = ImageConfig().with_env("A", "1").with_label("role", "ci")
        assert config.env_dict() == {"A": "1"}
        assert config.labels_dict() == {"role": "ci"}

    @given(
        files=st.dictionaries(
            st.sampled_from(["/a", "/b", "/c/d", "/e"]),
            # content equal to the TOMBSTONE sentinel is reserved (it marks
            # deletions), so exclude it from the identity property
            st.binary(max_size=16).filter(lambda b: b != TOMBSTONE),
            max_size=4,
        )
    )
    def test_flatten_single_layer_identity(self, files):
        image = scratch().with_layer(Layer.from_dict(files))
        assert image.flatten() == files


class TestReferences:
    def test_name_tag(self):
        assert parse_reference("ubuntu:20.04") == ("ubuntu", "tag:20.04")

    def test_default_tag(self):
        assert parse_reference("ubuntu") == ("ubuntu", "tag:latest")

    def test_digest_ref(self):
        name, sel = parse_reference("repo@sha256:abcd")
        assert name == "repo" and sel == "digest:abcd"

    def test_empty_rejected(self):
        with pytest.raises(ContainerError):
            parse_reference("@sha256:x")


class TestRegistry:
    def test_store_and_get(self):
        registry = Registry()
        image = scratch().with_layer(Layer.from_dict({"/f": b"x"}))
        digest = registry.store("base", image, "v1")
        assert registry.get("base:v1").digest == digest
        assert registry.get(f"base@sha256:{digest}").digest == digest

    def test_digest_prefix_lookup(self):
        registry = Registry()
        image = scratch().with_layer(Layer.from_dict({"/f": b"x"}))
        digest = registry.store("base", image)
        assert registry.get(f"base@sha256:{digest[:16]}").digest == digest

    def test_missing_image(self):
        registry = Registry()
        with pytest.raises(ImageNotFound):
            registry.get("ghost:latest")

    def test_tag_mutation_preserves_digest_access(self):
        registry = Registry()
        v1 = scratch().with_layer(Layer.from_dict({"/f": b"1"}))
        v2 = scratch().with_layer(Layer.from_dict({"/f": b"2"}))
        d1 = registry.store("app", v1, "latest")
        registry.store("app", v2, "latest")
        assert registry.get("app:latest").digest == v2.digest
        assert registry.get(f"app@sha256:{d1}").digest == d1

    def test_untag(self):
        registry = Registry()
        registry.store("app", scratch(), "v1")
        registry.untag("app", "v1")
        assert not registry.contains("app:v1")
        with pytest.raises(ImageNotFound):
            registry.untag("app", "v1")

    def test_push_pull(self):
        local = Registry("local")
        remote = Registry("hub")
        image = scratch().with_layer(Layer.from_dict({"/f": b"x"}))
        local.store("exp", image, "v1")
        local.push("exp:v1", remote)
        assert remote.get("exp:v1").digest == image.digest
        fresh = Registry("reader")
        pulled = fresh.pull("exp:v1", remote)
        assert pulled.digest == image.digest
        assert fresh.contains("exp:v1")

    def test_repositories_listing(self):
        registry = Registry()
        registry.store("a", scratch())
        registry.store("b", scratch())
        assert registry.repositories() == ["a", "b"]


class TestArchive:
    def _image(self):
        from repro.container import ImageBuilder, Registry

        return ImageBuilder(Registry()).build(
            "FROM scratch\nRUN pkg install git\nENV A=1\nWORKDIR /exp\n"
            "LABEL who=me\nCMD run.sh\nEXPOSE 8080\n"
        )

    def test_save_load_round_trip(self, tmp_path):
        from repro.container import load_image, save_image

        image = self._image()
        path = tmp_path / "image.json"
        save_image(image, path)
        again = load_image(path)
        assert again.digest == image.digest
        assert again.flatten() == image.flatten()
        assert again.config == image.config

    def test_load_from_text(self):
        from repro.container import load_image, save_image

        image = self._image()
        assert load_image(save_image(image)).digest == image.digest

    def test_tamper_detected(self, tmp_path):
        import json

        from repro.container import load_image, save_image

        image = self._image()
        doc = json.loads(save_image(image))
        doc["layers"][0]["created_by"] = "RUN something-else"
        with pytest.raises(ContainerError, match="digest mismatch"):
            load_image(json.dumps(doc))

    def test_bad_format(self):
        from repro.container import load_image

        with pytest.raises(ContainerError):
            load_image('{"format": "docker-v2"}')
        with pytest.raises(ContainerError):
            load_image("not json at all\nreally")

    def test_history(self):
        from repro.container import image_history

        image = self._image()
        lines = image_history(image)
        assert len(lines) == len(image.layers)
        assert any("RUN pkg install git" in line for line in lines)
