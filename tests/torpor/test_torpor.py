"""Tests for Torpor variability profiles, prediction and throttling."""

import pytest

from repro.common.errors import PlatformError
from repro.torpor.experiment import run_torpor_experiment
from repro.torpor.throttle import Throttle, recreation_error, throttle_for
from repro.torpor.variability import (
    VariabilityProfile,
    VariabilityRange,
    predict_speedup,
)


@pytest.fixture(scope="module")
def result():
    return run_torpor_experiment(seed=42, runs=3)


class TestExperiment:
    def test_figure_shape(self, result):
        """The variability-profile figure: multi-modal histogram with the
        CPU mode in the paper's (2.2, 2.3] bucket."""
        mode_lo, mode_hi, count = result.speedups.mode_bucket(0.1)
        assert (mode_lo, mode_hi) == pytest.approx((2.2, 2.3))
        assert count >= 7

    def test_speedup_table_complete(self, result):
        table = result.speedup_table()
        assert {"stressor", "class", "speedup"} <= set(table.columns)
        assert all(v > 1 for v in table.column("speedup"))

    def test_histogram_table(self, result):
        table = result.histogram_table(0.1)
        assert sum(table.column("stressors")) == len(result.speedups.speedups)

    def test_deterministic(self):
        a = run_torpor_experiment(seed=7, runs=2)
        b = run_torpor_experiment(seed=7, runs=2)
        assert a.speedups.speedups == b.speedups.speedups

    def test_seed_changes_results(self):
        a = run_torpor_experiment(seed=7, runs=2)
        b = run_torpor_experiment(seed=8, runs=2)
        assert a.speedups.speedups != b.speedups.speedups


class TestVariabilityProfile:
    def test_classes_present(self, result):
        profile = result.variability
        assert {"cpu", "fp", "memory", "storage", "cache"} <= set(profile.classes())

    def test_cpu_range_tight(self, result):
        r = result.variability.range_for("cpu")
        assert (r.high - r.low) / r.low < 0.10  # tight cluster

    def test_unknown_class(self, result):
        with pytest.raises(PlatformError):
            result.variability.range_for("quantum")

    def test_range_validation(self):
        with pytest.raises(PlatformError):
            VariabilityRange(klass="x", low=2.0, high=1.0)

    def test_contains_and_widened(self):
        r = VariabilityRange(klass="cpu", low=2.0, high=2.5)
        assert r.contains(2.2) and not r.contains(2.6)
        w = r.widened(0.05)
        assert w.low < 2.0 and w.high > 2.5


class TestPrediction:
    def test_pure_cpu_app(self, result):
        prediction = predict_speedup(result.variability, {"cpu": 1.0})
        r = result.variability.range_for("cpu")
        assert prediction.low == pytest.approx(r.low)
        assert prediction.high == pytest.approx(r.high)

    def test_mixed_app_between_classes(self, result):
        prediction = predict_speedup(
            result.variability, {"cpu": 0.5, "memory": 0.5}
        )
        cpu = result.variability.range_for("cpu")
        mem = result.variability.range_for("memory")
        assert cpu.low < prediction.low < mem.high
        assert prediction.low < prediction.high

    def test_prediction_brackets_simulated_app(self, result):
        """The paper's claim: profiles predict an unseen app's speedup.
        Simulate a 70% cpu / 30% memory app on both machines and check the
        measured speedup falls in the (slightly widened) predicted range."""
        from repro.platform.machines import get_machine
        from repro.platform.perfmodel import KernelDemand, execution_time

        demand = KernelDemand(
            ops=7e9, fp_fraction=0.0, mem_bytes=9e9, working_set_kib=1 << 18
        )
        old = execution_time(demand, get_machine("lab-xeon-2006"))
        new = execution_time(demand, get_machine("cloudlab-c220g1"))
        measured = old / new
        # compute the cpu/memory time mix on the base machine
        cpu_only = execution_time(
            KernelDemand(ops=7e9, working_set_kib=64), get_machine("lab-xeon-2006")
        )
        mix_cpu = cpu_only / old
        prediction = predict_speedup(
            result.variability, {"cpu": mix_cpu, "memory": 1 - mix_cpu}
        ).widened(0.15)
        assert prediction.contains(measured)

    def test_mix_must_sum_to_one(self, result):
        with pytest.raises(PlatformError):
            predict_speedup(result.variability, {"cpu": 0.7})

    def test_negative_fraction_rejected(self, result):
        with pytest.raises(PlatformError):
            predict_speedup(result.variability, {"cpu": 1.5, "memory": -0.5})


class TestThrottle:
    def test_quota_bounds(self):
        with pytest.raises(PlatformError):
            Throttle(cpu_quota=0.0)
        with pytest.raises(PlatformError):
            Throttle(cpu_quota=1.5)

    def test_apply_stretches_cpu_share_only(self):
        throttle = Throttle(cpu_quota=0.5)
        assert throttle.apply(10.0, cpu_fraction=1.0) == pytest.approx(20.0)
        assert throttle.apply(10.0, cpu_fraction=0.0) == pytest.approx(10.0)
        assert throttle.apply(10.0, cpu_fraction=0.5) == pytest.approx(15.0)

    def test_throttle_for_recreates_base_cpu_time(self, result):
        """Quota = 1/speedup: a CPU-bound second on the old machine takes
        one throttled second on the new machine (within a few percent)."""
        throttle = throttle_for(result.variability, "cpu")
        r = result.variability.range_for("cpu")
        native_new = 1.0 / ((r.low + r.high) / 2.0)
        recreated = throttle.apply(native_new, cpu_fraction=1.0)
        assert recreated == pytest.approx(1.0, rel=0.02)

    def test_no_throttle_when_target_slower(self):
        profile = VariabilityProfile(
            base="new",
            target="old",
            ranges=(VariabilityRange(klass="cpu", low=0.4, high=0.5),),
        )
        assert throttle_for(profile, "cpu").cpu_quota == 1.0

    def test_recreation_error_cpu_small_memory_large(self, result):
        throttle = throttle_for(result.variability, "cpu")
        cpu_err = recreation_error(result.variability, {"cpu": 1.0}, throttle)
        mem_err = recreation_error(result.variability, {"memory": 1.0}, throttle)
        assert cpu_err < 0.05
        assert mem_err > 0.5  # CPU quota cannot slow DRAM: recreation fails
