"""Tests for the simulated MPI communicator and mpiP profiler."""

import numpy as np
import pytest

from repro.common.errors import MPIError
from repro.common.rng import derive_rng
from repro.mpicomm.mpi import SimComm
from repro.mpicomm.mpip import profile
from repro.platform.sites import Site


def make_comm(n=4, machine="hpc-haswell-ib"):
    site = Site("t", machine, capacity=n)
    return SimComm(list(site.allocate(n)))


class TestSimComm:
    def test_size_and_clocks(self):
        comm = make_comm(4)
        assert comm.size == 4
        np.testing.assert_array_equal(comm.clocks, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(MPIError):
            SimComm([])

    def test_compute_advances_clocks(self):
        comm = make_comm(2)
        comm.compute([1.0, 2.0])
        np.testing.assert_allclose(comm.clocks, [1.0, 2.0])
        assert comm.wall_time == 2.0

    def test_compute_scalar_broadcasts(self):
        comm = make_comm(3)
        comm.compute(0.5)
        np.testing.assert_allclose(comm.clocks, 0.5)

    def test_negative_compute_rejected(self):
        comm = make_comm(2)
        with pytest.raises(MPIError):
            comm.compute([-1.0, 0.0])

    def test_barrier_synchronizes(self):
        comm = make_comm(4)
        comm.compute([1.0, 2.0, 3.0, 4.0])
        comm.barrier()
        clocks = comm.clocks
        assert np.all(clocks == clocks[0])
        assert clocks[0] > 4.0

    def test_allreduce_waits_recorded(self):
        comm = make_comm(2)
        comm.compute([0.0, 1.0])
        comm.allreduce(8)
        event = comm.events[-1]
        assert event.waits == (1.0, 0.0)
        assert event.cost > 0

    def test_collective_cost_grows_with_size_and_bytes(self):
        small = make_comm(2)
        large = make_comm(16)
        assert large.allreduce(1024) > small.allreduce(1024)
        comm = make_comm(4)
        assert comm.allreduce(1 << 20) > comm.allreduce(8)

    def test_send_recv_only_touches_endpoints(self):
        comm = make_comm(3)
        comm.send_recv(0, 1, 4096)
        clocks = comm.clocks
        assert clocks[0] == clocks[1] > 0
        assert clocks[2] == 0.0

    def test_send_recv_self_is_free(self):
        comm = make_comm(2)
        assert comm.send_recv(0, 0, 1 << 20) == 0.0

    def test_rank_validation(self):
        comm = make_comm(2)
        with pytest.raises(MPIError):
            comm.send_recv(0, 7, 10)
        with pytest.raises(MPIError):
            comm.delay(9, 1.0)

    def test_delay_injection(self):
        comm = make_comm(2)
        comm.delay(1, 5.0)
        assert comm.clocks[1] == 5.0

    def test_neighbor_exchange_local_sync(self):
        comm = make_comm(4)
        comm.compute([0.0, 10.0, 0.0, 0.0])
        # ring: 0-1, 1-2, 2-3
        comm.neighbor_exchange({0: [1], 1: [0, 2], 2: [1, 3], 3: [2]}, 1024)
        clocks = comm.clocks
        # ranks touching rank 1 sync to >= 10; rank 3 does not
        assert clocks[0] >= 10.0 and clocks[2] >= 10.0
        assert clocks[3] < 10.0

    def test_mpi_time_per_rank(self):
        comm = make_comm(2)
        comm.compute([0.0, 2.0])
        comm.barrier()
        per_rank = comm.mpi_time_per_rank()
        assert per_rank[0] > per_rank[1]  # rank 0 waited for rank 1

    def test_faster_network_cheaper(self):
        ib = make_comm(4, "hpc-haswell-ib")
        eth = make_comm(4, "lab-xeon-2006")
        assert ib.allreduce(1 << 16) < eth.allreduce(1 << 16)


class TestMpiP:
    def test_profile_breakdown(self):
        comm = make_comm(4)
        for _ in range(5):
            comm.compute(0.1)
            comm.allreduce(8, callsite="app.c:10")
            comm.bcast(1024, callsite="app.c:20")
        report = profile(comm)
        assert report.ranks == 4
        assert report.wall_time == pytest.approx(comm.wall_time)
        assert 0 < report.mpi_fraction < 1
        assert {c.callsite for c in report.callsites} == {"app.c:10", "app.c:20"}
        assert sum(c.share_of_mpi for c in report.callsites) == pytest.approx(1.0)

    def test_callsites_sorted_by_time(self):
        comm = make_comm(4)
        comm.compute(0.01)
        comm.allreduce(1 << 20, callsite="big")
        comm.allreduce(8, callsite="small")
        report = profile(comm)
        assert report.dominant_callsite().callsite == "big"

    def test_no_activity(self):
        comm = make_comm(2)
        comm.compute(1.0)
        report = profile(comm)
        assert report.mpi_fraction == 0.0
        with pytest.raises(MPIError):
            report.dominant_callsite()

    def test_table_export(self):
        comm = make_comm(2)
        comm.compute(0.1)
        comm.allreduce(8, callsite="x")
        table = profile(comm).to_table()
        assert table.column("callsite") == ["x"]
        assert table.column("calls") == [1]
