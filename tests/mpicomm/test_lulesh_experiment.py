"""Tests for the LULESH proxy and the noise-variability experiment."""

import pytest

from repro.common.errors import MPIError
from repro.common.rng import SeedSequenceFactory
from repro.mpicomm.experiment import run_noise_experiment, variability_stats
from repro.mpicomm.lulesh import LuleshConfig, cube_neighbors, run_lulesh
from repro.platform.sites import Site, default_sites


def small_config():
    return LuleshConfig(side=2, iterations=15, elements_per_rank=8000)


@pytest.fixture(scope="module")
def noise_table():
    return run_noise_experiment(
        LuleshConfig(side=3, iterations=30), runs=6, seed=42
    )


class TestCubeNeighbors:
    def test_single_rank(self):
        assert cube_neighbors(1) == {0: []}

    def test_corner_face_counts(self):
        neighbors = cube_neighbors(3)
        degrees = sorted(len(v) for v in neighbors.values())
        assert degrees[0] == 3          # corners
        assert degrees[-1] == 6         # center
        assert len(neighbors) == 27

    def test_symmetry(self):
        neighbors = cube_neighbors(3)
        for rank, peers in neighbors.items():
            for peer in peers:
                assert rank in neighbors[peer]

    def test_invalid_side(self):
        with pytest.raises(MPIError):
            cube_neighbors(0)


class TestLuleshRun:
    def test_runs_and_profiles(self):
        site = Site("t", "hpc-haswell-ib", capacity=8)
        result = run_lulesh(
            small_config(), list(site.allocate(8)), SeedSequenceFactory(1)
        )
        assert result.wall_time > 0
        assert 0 < result.mpi_fraction < 1
        callsites = {c.callsite for c in result.report.callsites}
        assert any("halo" in c for c in callsites)
        assert any("dtcourant" in c for c in callsites)

    def test_needs_enough_nodes(self):
        site = Site("t", "hpc-haswell-ib", capacity=4)
        with pytest.raises(MPIError):
            run_lulesh(
                LuleshConfig(side=2), list(site.allocate(3)), SeedSequenceFactory(1)
            )

    def test_noise_increases_wall_time(self):
        site = Site("t", "hpc-haswell-ib", capacity=8)
        nodes = list(site.allocate(8))
        seeds = SeedSequenceFactory(5)
        clean = run_lulesh(small_config(), nodes, seeds, noise_injection=False)
        noisy = run_lulesh(small_config(), nodes, seeds, noise_injection=True)
        assert noisy.wall_time > clean.wall_time
        assert noisy.mpi_fraction > clean.mpi_fraction

    def test_deterministic(self):
        site = Site("t", "hpc-haswell-ib", capacity=8)
        nodes = list(site.allocate(8))
        a = run_lulesh(small_config(), nodes, SeedSequenceFactory(3), run_id=1)
        b = run_lulesh(small_config(), nodes, SeedSequenceFactory(3), run_id=1)
        assert a.wall_time == b.wall_time


class TestNoiseExperiment:
    def test_table_shape(self, noise_table):
        assert len(noise_table) == 12  # 2 settings x 6 runs
        assert set(noise_table.column("noise")) == {True, False}

    def test_noise_amplifies_variability(self, noise_table):
        """The use case's headline: noisy neighbors blow up run-to-run
        spread (CoV at least 3x the quiet baseline)."""
        clean = variability_stats(noise_table, False)
        noisy = variability_stats(noise_table, True)
        assert noisy.cov_wall > 3 * clean.cov_wall
        assert noisy.mean_wall > clean.mean_wall

    def test_noise_shifts_blame_to_collectives(self, noise_table):
        noisy = noise_table.where_equals(noise=True)
        assert all(
            "dtcourant" in c for c in noisy.column("dominant_callsite")
        )

    def test_mpi_fraction_rises_under_noise(self, noise_table):
        clean = variability_stats(noise_table, False)
        noisy = variability_stats(noise_table, True)
        assert noisy.mean_mpi_fraction > 2 * clean.mean_mpi_fraction

    def test_stats_str(self, noise_table):
        text = str(variability_stats(noise_table, True))
        assert "noise=on" in text
