"""Tests for the aver command-line interface."""

import pytest

from repro.aver.cli import main
from repro.common.tables import MetricsTable


@pytest.fixture
def results_csv(tmp_path):
    table = MetricsTable(["machine", "nodes", "time"])
    for nodes in (1, 2, 4, 8):
        table.append({"machine": "m0", "nodes": nodes, "time": 50 / nodes**0.7})
    path = tmp_path / "results.csv"
    table.save_csv(path)
    return path


class TestAverCli:
    def test_passing_statement(self, results_csv, capsys):
        code = main(["-i", str(results_csv), "when machine=* expect sublinear(nodes,time)"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_failing_statement(self, results_csv, capsys):
        code = main(["-i", str(results_csv), "expect time < 1"])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_statements_from_file(self, results_csv, tmp_path, capsys):
        aver_file = tmp_path / "validations.aver"
        aver_file.write_text(
            "expect count() = 4\nwhen machine=* expect sublinear(nodes,time)\n"
        )
        code = main(["-i", str(results_csv), "-f", str(aver_file)])
        assert code == 0
        assert capsys.readouterr().out.count("PASS") >= 2

    def test_quiet_mode(self, results_csv, capsys):
        code = main(["-i", str(results_csv), "-q", "expect count() = 4"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.strip() == "PASS: expect count() = 4"

    def test_missing_input(self, tmp_path, capsys):
        code = main(["-i", str(tmp_path / "nope.csv"), "expect count() > 0"])
        assert code == 2

    def test_syntax_error(self, results_csv, capsys):
        code = main(["-i", str(results_csv), "expect ~~~"])
        assert code == 2

    def test_no_statements(self, results_csv):
        assert main(["-i", str(results_csv)]) == 2
