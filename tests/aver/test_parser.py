"""Tests for the Aver lexer and parser."""

import pytest

from repro.aver.ast import (
    WILDCARD,
    Arith,
    BoolOp,
    Column,
    Compare,
    FuncCall,
    Not,
    Number,
    String,
)
from repro.aver.lexer import TokenKind, tokenize
from repro.aver.parser import parse_file_text, parse_statement
from repro.common.errors import AverSyntaxError


class TestLexer:
    def test_listing3_tokens(self):
        tokens = tokenize("when workload=* and machine=* expect sublinear(nodes,time)")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == TokenKind.KEYWORD
        assert TokenKind.STAR in kinds
        assert kinds[-1] == TokenKind.END

    def test_numbers_and_strings(self):
        tokens = tokenize("42 3.5 1e3 'text' \"more\"")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.NUMBER,
            TokenKind.NUMBER,
            TokenKind.NUMBER,
            TokenKind.STRING,
            TokenKind.STRING,
        ]

    def test_operators(self):
        tokens = tokenize("<= >= != == = < >")
        assert all(t.kind == TokenKind.OP for t in tokens[:-1])

    def test_bad_character(self):
        with pytest.raises(AverSyntaxError):
            tokenize("expect time ~ 5")


class TestParser:
    def test_listing3(self):
        """The paper's Listing 3 parses to the expected structure."""
        statement = parse_statement(
            "when workload=* and machine=* expect sublinear(nodes, time)"
        )
        assert statement.wildcard_columns == ("workload", "machine")
        assert statement.filter_clauses == ()
        call = statement.expectation
        assert isinstance(call, FuncCall)
        assert call.name == "sublinear"
        assert call.args == (Column("nodes"), Column("time"))

    def test_expect_only(self):
        statement = parse_statement("expect time < 100")
        assert statement.when == ()
        assert isinstance(statement.expectation, Compare)

    def test_when_with_concrete_values(self):
        statement = parse_statement(
            "when machine='cloudlab' and nodes=4 expect avg(time) < 10"
        )
        clauses = {c.column: c.value for c in statement.when}
        assert clauses == {"machine": "cloudlab", "nodes": 4}

    def test_when_bareword_value(self):
        statement = parse_statement("when machine=cloudlab expect count() > 0")
        assert statement.when[0].value == "cloudlab"

    def test_wildcard_value(self):
        statement = parse_statement("when machine=* expect count() > 0")
        assert statement.when[0].value is WILDCARD

    def test_boolean_structure(self):
        statement = parse_statement("expect a < 1 and b > 2 or not c = 3")
        top = statement.expectation
        assert isinstance(top, BoolOp) and top.op == "or"
        assert isinstance(top.left, BoolOp) and top.left.op == "and"
        assert isinstance(top.right, Not)

    def test_arithmetic_precedence(self):
        statement = parse_statement("expect a + b * 2 < 10")
        compare = statement.expectation
        assert isinstance(compare.left, Arith) and compare.left.op == "+"
        assert isinstance(compare.left.right, Arith)
        assert compare.left.right.op == "*"

    def test_unary_minus(self):
        statement = parse_statement("expect a > -1")
        right = statement.expectation.right
        assert isinstance(right, Arith) and right.op == "-"

    def test_star_is_multiplication_in_expressions(self):
        statement = parse_statement("expect avg(y) < 2 * avg(x)")
        right = statement.expectation.right
        assert isinstance(right, Arith) and right.op == "*"

    def test_parenthesized(self):
        statement = parse_statement("expect (a < 1 or b < 2) and c < 3")
        assert isinstance(statement.expectation, BoolOp)
        assert statement.expectation.op == "and"

    def test_string_literal_comparison(self):
        statement = parse_statement("expect status = 'ok'")
        assert statement.expectation.right == String("ok")

    def test_nested_function_args(self):
        statement = parse_statement("expect within(time, 0, percentile(time, 99))")
        call = statement.expectation
        assert isinstance(call.args[2], FuncCall)

    def test_duplicate_when_column_rejected(self):
        with pytest.raises(AverSyntaxError, match="duplicate"):
            parse_statement("when m=1 and m=2 expect count() > 0")

    def test_missing_expect(self):
        with pytest.raises(AverSyntaxError):
            parse_statement("when machine=* sublinear(nodes, time)")

    def test_trailing_garbage(self):
        with pytest.raises(AverSyntaxError, match="trailing"):
            parse_statement("expect a < 1 bogus extra")

    def test_empty(self):
        with pytest.raises(AverSyntaxError):
            parse_statement("   ")

    def test_unbalanced_paren(self):
        with pytest.raises(AverSyntaxError):
            parse_statement("expect within(time, 0, 1")


class TestFileParsing:
    def test_multi_statement_file(self):
        text = (
            "-- integrity checks\n"
            "expect count() >= 10\n"
            "\n"
            "when machine=*  -- every machine\n"
            "expect sublinear(nodes, time)\n"
            "# trailing comment line\n"
        )
        statements = parse_file_text(text)
        assert len(statements) == 2
        assert statements[1].wildcard_columns == ("machine",)

    def test_multiline_statement_exactly_like_listing(self):
        text = "  when\n    workload=* and machine=*\n  expect\n    sublinear(nodes,time)\n"
        statements = parse_file_text(text)
        assert len(statements) == 1
        assert statements[0].wildcard_columns == ("workload", "machine")

    def test_empty_file(self):
        assert parse_file_text("-- nothing here\n") == []
