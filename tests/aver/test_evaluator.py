"""Tests for Aver evaluation semantics and builtin functions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aver.evaluator import check, check_all
from repro.aver.functions import FUNCTIONS, register_function, scaling_exponent
from repro.common.errors import AverEvalError
from repro.common.tables import MetricsTable


@pytest.fixture
def gassyfs_table():
    """Results shaped like the paper's GassyFS experiment: sublinear
    scaling on both machines and workloads."""
    table = MetricsTable(["workload", "machine", "nodes", "time"])
    for workload in ("git-compile", "kernel-untar"):
        for machine in ("cloudlab", "ec2"):
            base = 100.0 if machine == "cloudlab" else 130.0
            for nodes in (1, 2, 4, 8):
                # time ~ base / nodes**0.6 : sublinear improvement
                table.append(
                    {
                        "workload": workload,
                        "machine": machine,
                        "nodes": nodes,
                        "time": base / nodes**0.6,
                    }
                )
    return table


class TestScalingExponent:
    def test_linear_data(self):
        x = np.array([1, 2, 4, 8], dtype=float)
        assert scaling_exponent(x, 3 * x) == pytest.approx(1.0)

    def test_quadratic_data(self):
        x = np.array([1, 2, 4, 8], dtype=float)
        assert scaling_exponent(x, x**2) == pytest.approx(2.0)

    def test_needs_two_distinct_points(self):
        with pytest.raises(AverEvalError):
            scaling_exponent(np.array([2.0, 2.0]), np.array([1.0, 2.0]))

    def test_positive_only(self):
        with pytest.raises(AverEvalError):
            scaling_exponent(np.array([1.0, -2.0]), np.array([1.0, 2.0]))

    @given(
        b=st.floats(min_value=-2, max_value=3),
        c=st.floats(min_value=0.1, max_value=100),
    )
    def test_recovers_exponent(self, b, c):
        x = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
        y = c * x**b
        assert scaling_exponent(x, y) == pytest.approx(b, abs=1e-9)


class TestListing3:
    def test_paper_assertion_passes(self, gassyfs_table):
        result = check(
            "when workload=* and machine=* expect sublinear(nodes,time)",
            gassyfs_table,
        )
        assert result.passed
        assert len(result.groups) == 4  # 2 workloads x 2 machines

    def test_fails_on_linear_growth(self):
        table = MetricsTable(["machine", "nodes", "time"])
        for nodes in (1, 2, 4, 8):
            table.append({"machine": "m", "nodes": nodes, "time": 10.0 * nodes})
        result = check("when machine=* expect sublinear(nodes,time)", table)
        assert not result.passed

    def test_group_bindings_reported(self, gassyfs_table):
        result = check(
            "when workload=* and machine=* expect sublinear(nodes,time)",
            gassyfs_table,
        )
        bindings = {g.binding for g in result.groups}
        assert (("workload", "git-compile"), ("machine", "ec2")) in bindings
        assert "PASS" in result.describe()


class TestWhenSemantics:
    def test_concrete_filter(self, gassyfs_table):
        result = check(
            "when machine='cloudlab' expect max(time) <= 100", gassyfs_table
        )
        assert result.passed

    def test_filter_and_wildcard_combined(self, gassyfs_table):
        result = check(
            "when machine='ec2' and workload=* expect sublinear(nodes,time)",
            gassyfs_table,
        )
        assert result.passed
        assert len(result.groups) == 2

    def test_no_matching_rows(self, gassyfs_table):
        with pytest.raises(AverEvalError):
            check("when machine='vax' expect count() > 0", gassyfs_table)

    def test_unknown_when_column(self, gassyfs_table):
        with pytest.raises(AverEvalError):
            check("when galaxy=* expect count() > 0", gassyfs_table)

    def test_empty_table(self):
        with pytest.raises(AverEvalError):
            check("expect count() > 0", MetricsTable(["a"]))


class TestRowWiseSemantics:
    def test_universal_quantification(self):
        table = MetricsTable(["time"], [{"time": 5.0}, {"time": 9.0}])
        assert check("expect time < 10", table).passed
        assert not check("expect time < 9", table).passed

    def test_string_equality(self):
        table = MetricsTable(["status"], [{"status": "ok"}, {"status": "ok"}])
        assert check("expect status = 'ok'", table).passed
        table.append({"status": "error"})
        assert not check("expect status = 'ok'", table).passed

    def test_string_ordering_rejected(self):
        table = MetricsTable(["status"], [{"status": "ok"}])
        result = check("expect status < 'z'", table)
        assert not result.passed
        assert "non-numeric" in result.groups[0].detail

    def test_vector_vs_vector(self):
        table = MetricsTable(
            ["a", "b"], [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        )
        assert check("expect a < b", table).passed

    def test_arithmetic_on_columns(self):
        table = MetricsTable(
            ["total", "used"], [{"total": 10, "used": 4}, {"total": 8, "used": 2}]
        )
        assert check("expect used / total <= 0.5", table).passed

    def test_non_boolean_expectation_fails_gracefully(self):
        table = MetricsTable(["a"], [{"a": 1}])
        result = check("expect a + 1", table)
        assert not result.passed
        assert "boolean" in result.groups[0].detail


class TestFunctions:
    @pytest.fixture
    def table(self):
        return MetricsTable(
            ["x", "y"],
            [{"x": float(x), "y": float(x) * 2} for x in (1, 2, 4, 8)],
        )

    def test_aggregates(self, table):
        assert check("expect min(y) = 2 and max(y) = 16", table).passed
        assert check("expect avg(x) = 3.75 and sum(x) = 15", table).passed
        assert check("expect count() = 4 and count(x) = 4", table).passed
        assert check("expect median(x) = 3", table).passed

    def test_stddev_single_sample_zero(self):
        table = MetricsTable(["v"], [{"v": 7.0}])
        assert check("expect stddev(v) = 0", table).passed

    def test_percentile(self, table):
        assert check("expect percentile(y, 100) = 16", table).passed
        result = check("expect percentile(y, 150) > 0", table)
        assert not result.passed

    def test_linear_superlinear(self, table):
        assert check("expect linear(x, y)", table).passed
        assert not check("expect superlinear(x, y)", table).passed
        squared = MetricsTable(
            ["x", "y"], [{"x": float(x), "y": float(x) ** 2} for x in (1, 2, 4)]
        )
        assert check("expect superlinear(x, y)", squared).passed

    def test_monotonic(self):
        table = MetricsTable(
            ["n", "t"],
            [{"n": 4, "t": 2.0}, {"n": 1, "t": 8.0}, {"n": 2, "t": 4.0}],
        )
        assert check("expect monotonic_dec(n, t)", table).passed
        assert not check("expect monotonic_inc(n, t)", table).passed

    def test_constant(self):
        table = MetricsTable(["v"], [{"v": 10.0}, {"v": 10.2}, {"v": 9.9}])
        assert check("expect constant(v)", table).passed
        assert not check("expect constant(v, 0.001)", table).passed

    def test_within(self):
        table = MetricsTable(["v"], [{"v": 3.0}, {"v": 4.5}])
        assert check("expect within(v, 0, 5)", table).passed
        assert not check("expect within(v, 0, 4)", table).passed

    def test_within_bad_range(self):
        table = MetricsTable(["v"], [{"v": 3.0}])
        result = check("expect within(v, 5, 0)", table)
        assert not result.passed

    def test_unknown_function(self, table):
        result = check("expect holographic(x)", table)
        assert not result.passed
        assert "unknown function" in result.groups[0].detail

    def test_unknown_column(self, table):
        result = check("expect avg(ghost) > 0", table)
        assert not result.passed
        assert "no column" in result.groups[0].detail

    def test_register_custom_function(self, table):
        def always(name, args):
            return True

        register_function("always_holds", always)
        try:
            assert check("expect always_holds()", table).passed
        finally:
            del FUNCTIONS["always_holds"]

    def test_register_duplicate_rejected(self):
        with pytest.raises(AverEvalError):
            register_function("avg", lambda n, a: 0)


class TestLogicAndCheckAll:
    def test_and_or_not(self):
        table = MetricsTable(["v"], [{"v": 5.0}])
        assert check("expect v > 0 and v < 10", table).passed
        assert check("expect v > 100 or v < 10", table).passed
        assert check("expect not v > 100", table).passed

    def test_non_boolean_logic_operand(self):
        table = MetricsTable(["v"], [{"v": 5.0}])
        result = check("expect v and v < 10", table)
        assert not result.passed

    def test_check_all_from_file_text(self, tmp_path):
        table = MetricsTable(
            ["machine", "nodes", "time"],
            [
                {"machine": "m", "nodes": n, "time": 100 / n**0.5}
                for n in (1, 2, 4, 8)
            ],
        )
        text = (
            "expect count() = 4\n"
            "when machine=* expect sublinear(nodes, time)\n"
            "expect within(time, 0, 200)\n"
        )
        results = check_all(text, table)
        assert len(results) == 3
        assert all(r.passed for r in results)

    def test_division_by_zero_detail(self):
        table = MetricsTable(["v"], [{"v": 1.0}])
        result = check("expect v / 0 < 10", table)
        assert not result.passed


class TestScalingExpFunction:
    def test_bounds_exponent_directly(self):
        table = MetricsTable(
            ["nodes", "time"],
            [{"nodes": n, "time": 100 / n**0.8} for n in (1, 2, 4, 8)],
        )
        assert check("expect scaling_exp(nodes, time) < -0.5", table).passed
        assert check("expect scaling_exp(nodes, time) > -1", table).passed
        assert not check("expect scaling_exp(nodes, time) > 0", table).passed

    def test_arity(self):
        table = MetricsTable(["x"], [{"x": 1}])
        result = check("expect scaling_exp(x) < 1", table)
        assert not result.passed
