"""Tests for the shared content-addressed object pool."""

import hashlib

import pytest

from repro.common.errors import (
    CorruptObjectError,
    MissingObjectError,
    StoreError,
)
from repro.store import ContentStore


@pytest.fixture
def store(tmp_path):
    return ContentStore(tmp_path / "objects", quarantine_dir=tmp_path / "quarantine")


def oid_of(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class TestIngest:
    def test_put_bytes_round_trip(self, store):
        result = store.put_bytes(b"payload")
        assert result.oid == oid_of(b"payload")
        assert result.size == 7
        assert not result.deduped
        assert store.get_bytes(result.oid) == b"payload"

    def test_second_write_dedupes(self, store):
        first = store.put_bytes(b"same")
        second = store.put_bytes(b"same")
        assert first.oid == second.oid
        assert not first.deduped and second.deduped

    def test_put_file_matches_put_bytes(self, store, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"file contents")
        assert store.put_file(path).oid == oid_of(b"file contents")

    def test_put_file_dedupes_against_bytes(self, store, tmp_path):
        store.put_bytes(b"shared")
        path = tmp_path / "f"
        path.write_bytes(b"shared")
        assert store.put_file(path).deduped

    def test_put_nonfile_rejected(self, store, tmp_path):
        with pytest.raises(StoreError):
            store.put_file(tmp_path)

    def test_no_temp_files_left_behind(self, store, tmp_path):
        store.put_bytes(b"a")
        p = tmp_path / "f"
        p.write_bytes(b"a")
        store.put_file(p)  # dedup path discards its temp
        strays = [
            f
            for f in store.objects_dir.iterdir()
            if f.is_file() and f.name.startswith(".ingest-")
        ]
        assert strays == []


class TestRead:
    def test_missing_object(self, store):
        with pytest.raises(MissingObjectError):
            store.get_bytes("0" * 64)

    def test_short_id_rejected(self, store):
        with pytest.raises(StoreError, match="full object id"):
            store.object_path("abcd")

    def test_contains(self, store):
        oid = store.put_bytes(b"x").oid
        assert oid in store
        assert "f" * 64 not in store
        assert "short" not in store  # malformed ids are just absent

    def test_size_of(self, store):
        oid = store.put_bytes(b"12345").oid
        assert store.size_of(oid) == 5

    def test_ids_sorted(self, store):
        oids = {store.put_bytes(bytes([i])).oid for i in range(8)}
        listed = list(store.ids())
        assert listed == sorted(listed)
        assert set(listed) == oids


class TestCorruption:
    def test_bit_rot_quarantined_on_read(self, store):
        oid = store.put_bytes(b"good").oid
        store.object_path(oid).write_bytes(b"rotten")
        with pytest.raises(CorruptObjectError):
            store.get_bytes(oid)
        # The object left the pool and sits in quarantine.
        assert oid not in store
        assert store.quarantined() == [oid]
        assert store.quarantine_path(oid).read_bytes() == b"rotten"

    def test_verify_all_partitions_pool(self, store):
        good = store.put_bytes(b"good").oid
        bad = store.put_bytes(b"will rot").oid
        store.object_path(bad).write_bytes(b"zap")
        healthy, corrupt = store.verify_all()
        assert healthy == 1
        assert corrupt == [bad]
        assert good in store and bad not in store

    def test_stats_counts_quarantine(self, store):
        oid = store.put_bytes(b"abc").oid
        store.quarantine(oid)
        stats = store.stats()
        assert stats["objects"] == 0
        assert stats["bytes"] == 0
        assert stats["quarantined"] == 1
        assert stats["loose_objects"] == 0
        assert stats["packed_objects"] == 0


class TestMaterialize:
    def test_copy_round_trip(self, store, tmp_path):
        oid = store.put_bytes(b"artifact").oid
        dest = tmp_path / "out" / "artifact.bin"
        assert store.materialize(oid, dest) == 8
        assert dest.read_bytes() == b"artifact"

    def test_copy_is_independent_of_pool(self, store, tmp_path):
        oid = store.put_bytes(b"v1").oid
        dest = tmp_path / "f"
        store.materialize(oid, dest)
        dest.write_bytes(b"consumer truncates in place")
        assert store.get_bytes(oid) == b"v1"

    def test_hardlink_materialization(self, store, tmp_path):
        oid = store.put_bytes(b"linked").oid
        dest = tmp_path / "f"
        store.materialize(oid, dest, link=True)
        assert dest.read_bytes() == b"linked"

    def test_replaces_existing_destination(self, store, tmp_path):
        oid = store.put_bytes(b"new").oid
        dest = tmp_path / "f"
        dest.write_bytes(b"old")
        store.materialize(oid, dest)
        assert dest.read_bytes() == b"new"

    def test_missing_object_raises(self, store, tmp_path):
        with pytest.raises(MissingObjectError):
            store.materialize("0" * 64, tmp_path / "f")


class TestDelete:
    def test_delete(self, store):
        oid = store.put_bytes(b"x").oid
        assert store.delete(oid)
        assert not store.delete(oid)
        assert oid not in store
