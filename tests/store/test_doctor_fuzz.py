"""Doctor coverage for fuzz-state debris and profile-history damage."""

import json

import pytest

from repro.store.doctor import diagnose, repair


@pytest.fixture
def root(tmp_path):
    (tmp_path / ".pvcs" / "fuzz").mkdir(parents=True)
    return tmp_path


def kinds(report):
    return sorted(f.kind for f in report.findings)


class TestFuzzDebris:
    def test_stale_sandbox_swept(self, root):
        sandbox = root / ".pvcs" / "fuzz" / "work" / "deadbeefdeadbeef"
        (sandbox / "experiments" / "exp").mkdir(parents=True)
        (sandbox / "experiments" / "exp" / "vars.yml").write_text("a: 1\n")
        report = diagnose(root, tmp_age_s=0.0)
        assert "stale-fuzz-sandbox" in kinds(report)
        repair(report)
        assert not sandbox.exists()
        assert diagnose(root, tmp_age_s=0.0).clean

    def test_fresh_sandbox_spared_by_age_gate(self, root):
        sandbox = root / ".pvcs" / "fuzz" / "work" / "cafecafecafecafe"
        sandbox.mkdir(parents=True)
        report = diagnose(root, tmp_age_s=3600.0)
        assert "stale-fuzz-sandbox" not in kinds(report)

    def test_partial_corpus_entry_swept(self, root):
        partial = root / ".pvcs" / "fuzz" / "corpus" / "0123456789abcdef"
        (partial / "experiment").mkdir(parents=True)
        (partial / "experiment" / "vars.yml").write_text("a: 1\n")
        report = diagnose(root, tmp_age_s=0.0)
        assert "partial-corpus-entry" in kinds(report)
        repair(report)
        assert not partial.exists()

    def test_complete_corpus_entry_untouched(self, root):
        complete = root / ".pvcs" / "fuzz" / "corpus" / "fedcba9876543210"
        (complete / "experiment").mkdir(parents=True)
        (complete / "meta.json").write_text(json.dumps({"variant": "x"}))
        report = diagnose(root, tmp_age_s=0.0)
        repair(report)
        assert (complete / "meta.json").is_file()

    def test_partial_reproducer_swept_too(self, root):
        partial = root / ".pvcs" / "fuzz" / "repro" / "1111222233334444"
        partial.mkdir(parents=True)
        report = diagnose(root, tmp_age_s=0.0)
        assert "partial-corpus-entry" in kinds(report)
        repair(report)
        assert not partial.exists()

    def test_torn_corpus_index_truncated(self, root):
        index = root / ".pvcs" / "fuzz" / "corpus.jsonl"
        good = json.dumps({"variant": "a" * 64}) + "\n"
        index.write_text(good + '{"variant": "torn')
        report = diagnose(root, tmp_age_s=0.0)
        assert "torn-jsonl" in kinds(report)
        repair(report)
        assert index.read_text() == good

    def test_torn_coverage_map_truncated(self, root):
        coverage = root / ".pvcs" / "fuzz" / "coverage.jsonl"
        good = json.dumps({"variant": "a" * 64, "keys": ["event:metric"]})
        coverage.write_text(good + "\n" + '{"variant": "b", "keys": [')
        report = diagnose(root, tmp_age_s=0.0)
        assert "torn-jsonl" in kinds(report)
        repair(report)
        assert coverage.read_text() == good + "\n"


class TestProfileHistoryDamage:
    """`.pvcs/profiles/` is commit-attached perf history: a torn append
    must be diagnosed and repaired like any other JSONL store."""

    def test_torn_profile_tail_diagnosed_and_repaired(self, root):
        profiles = root / ".pvcs" / "profiles"
        profiles.mkdir(parents=True)
        target = profiles / "index.jsonl"
        good = (
            json.dumps({"commit": "c" * 40, "metric": "runtime", "mean": 1.2})
            + "\n"
        )
        target.write_text(good + '{"commit": "dddd", "metr')
        report = diagnose(root, tmp_age_s=0.0)
        findings = [f for f in report.findings if f.path == target]
        assert [f.kind for f in findings] == ["torn-jsonl"]
        repair(report)
        assert target.read_text() == good
        # one clean pass after repair: damage is gone, nothing else flagged
        assert diagnose(root, tmp_age_s=0.0).clean

    def test_healthy_profile_history_untouched(self, root):
        profiles = root / ".pvcs" / "profiles"
        profiles.mkdir(parents=True)
        content = (
            json.dumps({"commit": "c" * 40, "metric": "runtime"}) + "\n"
        )
        (profiles / "index.jsonl").write_text(content)
        report = diagnose(root, tmp_age_s=0.0)
        repair(report)
        assert (profiles / "index.jsonl").read_text() == content
