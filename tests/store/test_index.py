"""Tests for the artifact index (fingerprint -> outputs + metadata)."""

import pytest

from repro.common.errors import StoreError
from repro.store import ArtifactIndex, ArtifactOutput, ArtifactRecord

KEY_A = "a" * 64
KEY_B = "b" * 64


@pytest.fixture
def index(tmp_path):
    return ArtifactIndex(tmp_path / "index")


def outputs(oid="c" * 64):
    return (ArtifactOutput(name="results", path="results.csv", oid=oid, bytes=10),)


class TestRoundTrip:
    def test_record_and_lookup(self, index):
        index.record(KEY_A, "exp/run", outputs(), meta={"rows": 3})
        record = index.lookup(KEY_A)
        assert record.task == "exp/run"
        assert record.meta == {"rows": 3}
        assert record.outputs[0].path == "results.csv"
        assert record.total_bytes == 10
        assert record.oids() == {"c" * 64}

    def test_unknown_key_is_none(self, index):
        assert index.lookup(KEY_A) is None

    def test_rerecord_replaces(self, index):
        index.record(KEY_A, "exp/run", outputs(), meta={"rows": 3})
        index.record(KEY_A, "exp/run", outputs(), meta={"rows": 5})
        assert index.lookup(KEY_A).meta == {"rows": 5}
        assert len(index) == 1

    def test_json_round_trip(self):
        record = ArtifactRecord(
            key=KEY_A, task="t", outputs=outputs(), meta={"x": 1}, seq=7
        )
        assert ArtifactRecord.from_json(record.to_json()) == record


class TestRobustness:
    def test_bad_fingerprint_rejected(self, index):
        with pytest.raises(StoreError, match="fingerprint"):
            index.lookup("../../etc/passwd")
        with pytest.raises(StoreError, match="fingerprint"):
            index.record("", "t", outputs())

    def test_mangled_record_is_a_miss(self, index):
        index.record(KEY_A, "t", outputs())
        (index.root / f"{KEY_A}.json").write_text("{truncated", encoding="utf-8")
        assert index.lookup(KEY_A) is None
        assert index.entries() == []

    def test_remove(self, index):
        index.record(KEY_A, "t", outputs())
        assert index.remove(KEY_A)
        assert not index.remove(KEY_A)
        assert index.lookup(KEY_A) is None


class TestEntries:
    def test_entries_oldest_first(self, index):
        index.record(KEY_B, "t2", outputs())
        index.record(KEY_A, "t1", outputs())
        assert [r.key for r in index.entries()] == [KEY_B, KEY_A]
