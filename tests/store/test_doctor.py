"""``popper doctor``: every kind of crash debris is found, the repair
matrix is applied, and healthy state is never touched."""

import json
import os
import subprocess
import sys

import pytest

from repro.common.locking import LockInfo, RepoLock
from repro.store.doctor import diagnose, repair


@pytest.fixture
def root(tmp_path):
    """A bare repository skeleton: the doctor works on the tree alone."""
    (tmp_path / ".pvcs" / "locks").mkdir(parents=True)
    (tmp_path / ".pvcs" / "cache" / "objects").mkdir(parents=True)
    (tmp_path / ".pvcs" / "cache" / "index").mkdir(parents=True)
    (tmp_path / ".pvcs" / "cache" / "quarantine").mkdir(parents=True)
    return tmp_path


def dead_pid():
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def write_lock(path, pid):
    info = LockInfo(pid=pid, host=os.uname().nodename, label="t", created=1.0)
    path.write_text(info.to_json() + "\n", encoding="utf-8")


def kinds(report):
    return sorted(f.kind for f in report.findings)


class TestCleanRepo:
    def test_empty_tree_is_clean(self, root):
        report = diagnose(root)
        assert report.clean
        assert "is clean" in report.describe()

    def test_missing_root_is_clean(self, tmp_path):
        assert diagnose(tmp_path / "nope").clean

    def test_healthy_state_not_flagged(self, root):
        # Released lock (empty file), healthy journal, complete record.
        (root / ".pvcs" / "locks" / "store.lock").write_bytes(b"")
        (root / "journal.jsonl").write_text('{"event": "ok"}\n')
        oid = "ab" + "cd" * 31
        pool = root / ".pvcs" / "cache" / "objects" / oid[:2]
        pool.mkdir(parents=True)
        (pool / oid[2:]).write_bytes(b"payload")
        (root / ".pvcs" / "cache" / "index" / "k.json").write_text(
            json.dumps({"key": "k", "outputs": [{"oid": oid}]})
        )
        assert diagnose(root).clean


class TestStaleLocks:
    def test_dead_holder_flagged_and_truncated(self, root):
        path = root / ".pvcs" / "locks" / "store.lock"
        write_lock(path, dead_pid())
        report = diagnose(root)
        assert kinds(report) == ["stale-lock"]
        assert "is dead" in report.findings[0].detail
        repair(report)
        assert report.findings[0].repaired
        assert path.read_bytes() == b""
        assert diagnose(root).clean

    def test_live_holder_left_alone(self, root):
        write_lock(root / ".pvcs" / "locks" / "store.lock", os.getpid())
        assert diagnose(root).clean

    def test_unreadable_metadata_flagged(self, root):
        (root / ".pvcs" / "locks" / "refs.lock").write_text("garbage")
        report = diagnose(root)
        assert kinds(report) == ["stale-lock"]
        assert "unreadable" in report.findings[0].detail

    def test_truncated_lock_is_acquirable_again(self, root):
        path = root / ".pvcs" / "locks" / "store.lock"
        write_lock(path, dead_pid())
        repair(diagnose(root))
        with RepoLock(path, timeout_s=0.5):
            pass


class TestOrphanTemps:
    def test_old_ingest_temp_swept(self, root):
        temp = root / ".pvcs" / "cache" / "objects" / ".ingest-abc123"
        temp.write_bytes(b"half an object")
        os.utime(temp, (1.0, 1.0))
        report = diagnose(root)
        assert kinds(report) == ["orphan-temp"]
        repair(report)
        assert not temp.exists()

    def test_fresh_temp_spared_by_age_gate(self, root):
        """A young temp may belong to a live writer; doctor must be safe
        to run next to an in-flight popper run."""
        temp = root / ".pvcs" / "cache" / "objects" / ".ingest-live"
        temp.write_bytes(b"in flight")
        assert diagnose(root, tmp_age_s=60.0).clean
        assert kinds(diagnose(root, tmp_age_s=0.0)) == ["orphan-temp"]

    def test_atomic_write_temp_swept_but_locks_spared(self, root):
        temp = root / ".pvcs" / ".HEAD.x7f3"
        temp.write_text("refs/heads/main")
        os.utime(temp, (1.0, 1.0))
        lock = root / ".pvcs" / "locks" / "store.lock"
        lock.write_bytes(b"")
        os.utime(lock, (1.0, 1.0))
        report = diagnose(root)
        assert [f.path for f in report.findings] == [temp]


class TestTornJsonl:
    def test_dangling_tail_truncated_to_last_good_line(self, root):
        path = root / "experiments" / "e" / "run-state.jsonl"
        path.parent.mkdir(parents=True)
        good = '{"task": "f1"}\n'
        path.write_text(good + '{"task": "f2", "sta')
        report = diagnose(root)
        assert kinds(report) == ["torn-jsonl"]
        repair(report)
        assert path.read_text() == good
        assert diagnose(root).clean

    def test_terminated_garbage_line_truncated(self, root):
        path = root / "journal.jsonl"
        path.write_text('{"event": "ok"}\nnot json\n')
        report = diagnose(root)
        assert kinds(report) == ["torn-jsonl"]
        repair(report)
        assert path.read_text() == '{"event": "ok"}\n'

    def test_complete_record_missing_newline_is_kept(self, root):
        """A write cut exactly before the terminator lost nothing; the
        record must be completed, not discarded."""
        path = root / "journal.jsonl"
        path.write_text('{"event": "ok"}\n{"event": "late"}')
        repair(diagnose(root))
        assert path.read_text() == '{"event": "ok"}\n{"event": "late"}\n'

    def test_torn_only_line_leaves_empty_file(self, root):
        path = root / "journal.jsonl"
        path.write_text('{"event": "o')
        repair(diagnose(root))
        assert path.read_bytes() == b""

    def test_object_pool_contents_never_parsed(self, root):
        """Payloads under objects/ are opaque; a stored .jsonl artifact
        must never be 'repaired' by the doctor."""
        pool = root / ".pvcs" / "cache" / "objects" / "ab"
        pool.mkdir(parents=True)
        torn = pool / "payload.jsonl"
        torn.write_text('{"half": tr')
        assert diagnose(root).clean


class TestIndexRecords:
    def test_partial_record_unlinked(self, root):
        path = root / ".pvcs" / "cache" / "index" / "k.json"
        path.write_text('{"key": "k", "outp')
        report = diagnose(root)
        assert kinds(report) == ["partial-index-record"]
        repair(report)
        assert not path.exists()

    def test_dangling_record_unlinked(self, root):
        oid = "11" * 32
        path = root / ".pvcs" / "cache" / "index" / "k.json"
        path.write_text(json.dumps({"key": "k", "outputs": [{"oid": oid}]}))
        report = diagnose(root)
        assert kinds(report) == ["dangling-index-record"]
        repair(report)
        assert not path.exists()


class TestQuarantine:
    def test_quarantined_object_reported_not_repaired(self, root):
        path = root / ".pvcs" / "cache" / "quarantine" / ("aa" * 32)
        path.write_bytes(b"bit rot")
        report = diagnose(root)
        assert kinds(report) == ["quarantined-object"]
        assert not report.repairable
        repair(report)
        assert path.exists()
        assert "report-only" in report.findings[0].describe()


class TestReportShape:
    def test_diagnose_never_modifies(self, root):
        temp = root / ".pvcs" / "cache" / "objects" / ".ingest-x"
        temp.write_bytes(b"x")
        os.utime(temp, (1.0, 1.0))
        (root / "journal.jsonl").write_text('{"a": 1}\n{"b"')
        before = sorted(p for p in root.rglob("*") if p.is_file())
        diagnose(root)
        assert sorted(p for p in root.rglob("*") if p.is_file()) == before
        assert (root / "journal.jsonl").read_text() == '{"a": 1}\n{"b"'

    def test_repair_is_idempotent(self, root):
        (root / "journal.jsonl").write_text('{"a": 1}\n{"b"')
        repair(diagnose(root))
        second = repair(diagnose(root))
        assert second.clean

    def test_unrepaired_tracks_failures(self, root):
        write_lock(root / ".pvcs" / "locks" / "store.lock", dead_pid())
        report = diagnose(root)
        assert report.repairable and report.unrepaired == report.repairable
        repair(report)
        assert report.unrepaired == []


class TestQueueDebris:
    """Leases and results a crashed `popper serve` daemon leaves behind."""

    @pytest.fixture
    def queue_dir(self, root):
        queue = root / ".pvcs" / "queue"
        (queue / "leases").mkdir(parents=True)
        (queue / "results").mkdir(parents=True)
        return queue

    def lease(self, queue_dir, job, pid):
        path = queue_dir / "leases" / f"{job}.json"
        path.write_text(
            json.dumps({"job": job, "pid": pid, "deadline": 1.0}),
            encoding="utf-8",
        )
        return path

    def test_dead_holder_lease_unlinked(self, queue_dir, root):
        path = self.lease(queue_dir, "job-000000", dead_pid())
        report = diagnose(root)
        assert kinds(report) == ["stale-queue-lease"]
        repaired = repair(report)
        assert not repaired.unrepaired
        assert not path.exists()

    def test_live_holder_lease_untouched(self, queue_dir, root):
        # Our own pid: a daemon is "serving" right now.
        path = self.lease(queue_dir, "job-000000", os.getpid())
        assert diagnose(root).clean
        assert path.exists()

    def test_unreadable_lease_unlinked(self, queue_dir, root):
        path = queue_dir / "leases" / "job-000001.json"
        path.write_text('{"job": "job-000001", "pid":', encoding="utf-8")
        report = repair(diagnose(root))
        assert not report.unrepaired
        assert not path.exists()

    def test_partial_result_unlinked(self, queue_dir, root):
        torn = queue_dir / "results" / "job-000000.json"
        torn.write_text('{"job": "job-000000", "meta"', encoding="utf-8")
        wrong = queue_dir / "results" / "job-000001.json"
        wrong.write_text('{"unrelated": true}', encoding="utf-8")
        report = diagnose(root)
        assert kinds(report) == ["partial-queue-result"] * 2
        repaired = repair(report)
        assert not repaired.unrepaired
        assert not torn.exists() and not wrong.exists()

    def test_healthy_queue_state_not_flagged(self, queue_dir, root):
        good = queue_dir / "results" / "job-000000.json"
        good.write_text(
            json.dumps({"job": "job-000000", "meta": {"rows": 1}}),
            encoding="utf-8",
        )
        assert diagnose(root).clean
        assert good.exists()
