"""Tests for the artifact store: memoization records, fsck, gc."""

import threading

import pytest

from repro.common.errors import StoreError
from repro.store import ArtifactStore

KEY_1 = "1" * 64
KEY_2 = "2" * 64
KEY_3 = "3" * 64


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


@pytest.fixture
def workdir(tmp_path):
    root = tmp_path / "work"
    root.mkdir()
    return root


def produce(root, name="results.csv", content="a,b\n1,2\n"):
    path = root / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content)
    return path


class TestStoreAndMaterialize:
    def test_round_trip_into_another_root(self, store, workdir, tmp_path):
        path = produce(workdir)
        outcome = store.store(
            KEY_1, "exp/run", {"results": path}, root=workdir, meta={"rows": 1}
        )
        assert outcome.bytes_stored == path.stat().st_size
        assert outcome.bytes_deduped == 0

        record = store.lookup(KEY_1)
        assert record is not None and record.meta == {"rows": 1}
        other = tmp_path / "other-checkout"
        restored = store.materialize(record, other)
        assert restored == path.stat().st_size
        assert (other / "results.csv").read_text() == path.read_text()

    def test_identical_outputs_dedupe(self, store, workdir):
        path = produce(workdir)
        store.store(KEY_1, "exp-a/run", {"results": path}, root=workdir)
        outcome = store.store(KEY_2, "exp-b/run", {"results": path}, root=workdir)
        assert outcome.bytes_stored == 0
        assert outcome.bytes_deduped == path.stat().st_size
        assert store.cas.stats()["objects"] == 1

    def test_output_outside_root_rejected(self, store, workdir, tmp_path):
        stray = tmp_path / "outside.txt"
        stray.write_text("x")
        with pytest.raises(StoreError, match="outside the task root"):
            store.store(KEY_1, "t", {"stray": stray}, root=workdir)

    def test_lookup_misses_when_object_swept(self, store, workdir):
        path = produce(workdir)
        store.store(KEY_1, "t", {"results": path}, root=workdir)
        record = store.index.lookup(KEY_1)
        store.cas.delete(record.outputs[0].oid)
        assert store.lookup(KEY_1) is None


class TestVerify:
    def test_clean_store(self, store, workdir):
        store.store(KEY_1, "t", {"r": produce(workdir)}, root=workdir)
        report = store.verify()
        assert report.ok and report.healthy_objects == 1

    def test_corruption_reported_with_referrers(self, store, workdir):
        path = produce(workdir)
        store.store(KEY_1, "exp/run", {"results": path}, root=workdir)
        oid = store.index.lookup(KEY_1).outputs[0].oid
        store.cas.object_path(oid).write_bytes(b"rot")
        report = store.verify()
        assert not report.ok
        (blames,) = report.corrupt.values()
        assert any("exp/run" in blame for blame in blames)
        assert any("results.csv" in blame for blame in blames)
        # Contained: the rotten object is in quarantine, not the pool.
        assert oid in store.cas.quarantined()
        # And the record no longer hits (the object is gone).
        assert store.lookup(KEY_1) is None


class TestGc:
    def test_keeps_newest_record_per_task(self, store, workdir):
        old = produce(workdir, content="old\n")
        store.store(KEY_1, "exp/run", {"r": old}, root=workdir)
        new = produce(workdir, content="new\n")
        store.store(KEY_2, "exp/run", {"r": new}, root=workdir)

        report = store.gc(keep_last=1)
        assert report.records_removed == 1
        assert report.objects_removed == 1
        assert report.bytes_reclaimed == 4
        # The latest run's artifacts always survive gc.
        assert store.lookup(KEY_2) is not None
        assert store.lookup(KEY_1) is None

    def test_shared_objects_survive_while_referenced(self, store, workdir):
        shared = produce(workdir, content="shared\n")
        store.store(KEY_1, "exp-a/run", {"r": shared}, root=workdir)
        store.store(KEY_2, "exp-b/run", {"r": shared}, root=workdir)
        report = store.gc(keep_last=1)
        # Both tasks' newest records reference the one object: kept.
        assert report.objects_removed == 0
        assert store.lookup(KEY_1) and store.lookup(KEY_2)

    def test_keep_last_must_be_positive(self, store):
        with pytest.raises(StoreError):
            store.gc(keep_last=0)


class TestStats:
    def test_accounting(self, store, workdir):
        path = produce(workdir)
        store.store(KEY_1, "exp-a/run", {"r": path}, root=workdir)
        store.store(KEY_2, "exp-b/run", {"r": path}, root=workdir)
        stats = store.stats()
        assert stats["objects"] == 1
        assert stats["records"] == 2
        assert stats["tasks"] == 2
        assert stats["logical_bytes"] == 2 * path.stat().st_size
        assert stats["bytes_deduped"] == path.stat().st_size


class TestConcurrentWriters:
    def test_racing_writers_one_store(self, store, tmp_path):
        """Two sweeps sharing one cache cannot corrupt the pool."""
        errors = []

        def writer(worker: int) -> None:
            try:
                root = tmp_path / f"writer-{worker}"
                root.mkdir()
                for i in range(20):
                    # Half the payloads collide across workers (dedup
                    # races), half are unique to the worker.
                    content = f"shared-{i}\n" if i % 2 else f"w{worker}-{i}\n"
                    path = produce(root, name=f"out-{i}.txt", content=content)
                    key = f"{worker}{i:02d}".ljust(64, "0")
                    store.store(key, f"task-{i}", {"out": path}, root=root)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(worker,)) for worker in (1, 2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        healthy, corrupt = store.cas.verify_all()
        assert corrupt == []
        # 10 shared + 2x10 unique payloads.
        assert healthy == 30
        strays = [
            f for f in store.cas.objects_dir.iterdir() if f.is_file()
        ]
        assert strays == []
