"""Packfiles: format round trips, delta encoding, repack transparency,
doctor repairs for crashed repacks, and the CLI surface."""

import hashlib
import json

import pytest

from repro.common.crash import CrashPlan, SimulatedCrash, install_crash_plan
from repro.common.hashing import sha256_bytes
from repro.core.cli import main
from repro.store.cas import ContentStore
from repro.store.doctor import diagnose, repair
from repro.store.pack import (
    PackError,
    PackReader,
    pack_name,
    rebuild_index,
    write_pack,
)


def payloads(count=6, twin=False):
    """Deterministic blobs; ``twin=True`` shares a long affix so the
    delta encoder has something to bite on."""
    affix = hashlib.sha256(b"affix").digest() * 16 if twin else b""
    blobs = {}
    for i in range(count):
        data = affix + f"payload-{i:03d}\n".encode("ascii") * 3 + affix
        blobs[sha256_bytes(data)] = data
    return blobs


@pytest.fixture
def store(tmp_path):
    return ContentStore(tmp_path / "objects", durable=False)


class TestPackFormat:
    def test_round_trip_every_object(self, tmp_path):
        blobs = payloads()
        pack, idx = write_pack(blobs, tmp_path, durable=False)
        reader = PackReader(idx)
        assert sorted(reader.ids()) == sorted(blobs)
        for oid, data in blobs.items():
            assert reader.get_bytes(oid) == data
            assert reader.size_of(oid) == len(data)
        assert reader.verify() == []

    def test_pack_name_is_content_derived_and_write_idempotent(self, tmp_path):
        blobs = payloads()
        first = write_pack(blobs, tmp_path, durable=False)
        second = write_pack(blobs, tmp_path, durable=False)
        assert first == second
        assert first[0].name == f"{pack_name(list(blobs))}.pack"

    def test_empty_pack_refused(self, tmp_path):
        with pytest.raises(PackError):
            write_pack({}, tmp_path)

    def test_affix_twins_delta_encode_and_round_trip(self, tmp_path):
        blobs = payloads(count=8, twin=True)
        _, idx = write_pack(blobs, tmp_path, durable=False)
        reader = PackReader(idx)
        assert reader.delta_count() > 0
        logical = sum(len(v) for v in blobs.values())
        assert reader.packed_bytes < logical // 4  # the affixes collapsed
        for oid, data in blobs.items():
            assert reader.get_bytes(oid) == data

    def test_no_delta_flag_stores_whole_payloads(self, tmp_path):
        blobs = payloads(count=8, twin=True)
        _, idx = write_pack(blobs, tmp_path, delta=False, durable=False)
        assert PackReader(idx).delta_count() == 0

    def test_rebuild_index_matches_the_original(self, tmp_path):
        blobs = payloads(count=8, twin=True)
        pack, idx = write_pack(blobs, tmp_path, durable=False)
        original = json.loads(idx.read_text())
        idx.unlink()
        rebuilt = rebuild_index(pack, durable=False)
        assert json.loads(rebuilt.read_text()) == original

    def test_truncated_pack_detected(self, tmp_path):
        blobs = payloads()
        pack, idx = write_pack(blobs, tmp_path, durable=False)
        raw = pack.read_bytes()
        pack.write_bytes(raw[: len(raw) - 7])
        with pytest.raises(PackError):
            rebuild_index(pack)
        assert sorted(PackReader(idx).verify()) == sorted(blobs)


class TestStoreTransparency:
    def test_repack_folds_loose_and_reads_stay_identical(self, store):
        blobs = payloads(count=8, twin=True)
        for data in blobs.values():
            store.put_bytes(data)
        report = store.repack()
        assert not report.noop
        assert report.loose_folded == len(blobs)
        assert report.deltas > 0
        assert list(store.loose_ids()) == []
        assert list(store.ids()) == sorted(blobs)
        for oid, data in blobs.items():
            assert store.get_bytes(oid) == data
            assert oid in store
            assert store.size_of(oid) == len(data)

    def test_second_repack_is_a_noop(self, store):
        for data in payloads().values():
            store.put_bytes(data)
        assert not store.repack().noop
        assert store.repack().noop

    def test_repack_folds_old_packs_with_new_loose(self, store):
        first = payloads(count=4)
        for data in first.values():
            store.put_bytes(data)
        store.repack()
        extra = b"late arrival\n" * 4
        store.put_bytes(extra)
        report = store.repack()
        assert report.packs_folded == 1
        assert report.loose_folded == 1
        assert len(store.pack_readers()) == 1
        assert store.get_bytes(sha256_bytes(extra)) == extra
        for oid, data in first.items():
            assert store.get_bytes(oid) == data

    def test_min_objects_gate(self, store):
        store.put_bytes(b"only one object")
        assert store.repack(min_objects=2).noop

    def test_verify_all_covers_packed_objects(self, store):
        blobs = payloads()
        for data in blobs.values():
            store.put_bytes(data)
        store.repack()
        healthy, corrupt = store.verify_all()
        assert (healthy, corrupt) == (len(blobs), [])

    def test_corrupt_pack_quarantined_whole_on_read(self, store):
        blobs = payloads()
        for data in blobs.values():
            store.put_bytes(data)
        store.repack()
        reader = store.pack_readers()[0]
        raw = bytearray(reader.pack_path.read_bytes())
        for entry in reader.entries.values():
            raw[entry.offset] ^= 0xFF  # damage every payload's first byte
        reader.pack_path.write_bytes(bytes(raw))
        store._invalidate_packs()
        with pytest.raises(Exception):
            store.get_bytes(sorted(blobs)[0])
        assert store.pack_readers(refresh=True) == []
        assert any(
            p.name.endswith(".pack") for p in store.quarantine_dir.iterdir()
        )

    def test_stats_split_loose_and_packed(self, store):
        blobs = payloads(count=5, twin=True)
        for data in blobs.values():
            store.put_bytes(data)
        before = store.stats()
        assert before["loose_objects"] == 5
        assert before["packed_objects"] == 0
        store.repack()
        store.put_bytes(b"fresh loose tail")
        after = store.stats()
        assert after["loose_objects"] == 1
        assert after["packed_objects"] == 5
        assert after["objects"] == 6
        assert after["pack_files"] == 1
        assert after["pack_deltas"] > 0
        assert after["packed_logical_bytes"] == sum(
            len(v) for v in blobs.values()
        )
        assert after["bytes"] == after["loose_bytes"] + after["packed_bytes"]


class TestDoctorPackRepairs:
    def make_pool(self, tmp_path, twin=True):
        root = tmp_path / "repo" / ".pvcs" / "cache"
        store = ContentStore(root / "objects", durable=False)
        blobs = payloads(count=6, twin=twin)
        for data in blobs.values():
            store.put_bytes(data)
        return tmp_path / "repo", store, blobs

    def test_unindexed_pack_gets_its_index_rebuilt(self, tmp_path):
        repo, store, blobs = self.make_pool(tmp_path)
        install_crash_plan(CrashPlan.parse("at:pack.publish:1"))
        try:
            with pytest.raises(SimulatedCrash):
                store.repack()
        finally:
            install_crash_plan(None)
        report = diagnose(repo, tmp_age_s=0.0)
        kinds = {f.kind for f in report.findings}
        assert "unindexed-pack" in kinds
        repair(report)
        assert not report.unrepaired
        healed = ContentStore(store.objects_dir, durable=False)
        assert len(healed.pack_readers()) == 1
        for oid, data in blobs.items():
            assert healed.get_bytes(oid) == data
        assert diagnose(repo, tmp_age_s=0.0).clean

    def test_orphan_pack_temp_swept(self, tmp_path):
        repo, store, blobs = self.make_pool(tmp_path)
        install_crash_plan(CrashPlan.parse("at:pack.write.tmp:1"))
        try:
            with pytest.raises(SimulatedCrash):
                store.repack()
        finally:
            install_crash_plan(None)
        temps = list(store.packs_dir.glob(".pack-tmp-*"))
        assert temps
        report = repair(diagnose(repo, tmp_age_s=0.0))
        assert {f.kind for f in report.findings} == {"orphan-temp"}
        assert not list(store.packs_dir.glob(".pack-tmp-*"))
        # Nothing was folded: every object still reads from loose.
        for oid, data in blobs.items():
            assert store.get_bytes(oid) == data

    def test_dangling_pack_index_unlinked(self, tmp_path):
        repo, store, blobs = self.make_pool(tmp_path)
        store.repack()
        reader = store.pack_readers()[0]
        reader.pack_path.unlink()  # the sweep order crash: pack gone first
        report = repair(diagnose(repo, tmp_age_s=0.0))
        kinds = {f.kind for f in report.findings}
        assert "dangling-pack-index" in kinds
        assert not reader.idx_path.exists()

    def test_truncated_pack_quarantined(self, tmp_path):
        repo, store, blobs = self.make_pool(tmp_path)
        store.repack()
        reader = store.pack_readers()[0]
        raw = reader.pack_path.read_bytes()
        reader.pack_path.write_bytes(raw[:-9])
        report = repair(diagnose(repo, tmp_age_s=0.0))
        assert "truncated-pack" in {f.kind for f in report.findings}
        assert not report.unrepaired
        assert not reader.pack_path.exists()
        quarantine = store.objects_dir.parent / "quarantine"
        assert (quarantine / reader.pack_path.name).exists()

    def test_dangling_record_scan_knows_packed_objects(self, tmp_path):
        """A repack must not make the doctor unlink healthy records."""
        repo_dir = tmp_path / "repo"
        repo_dir.mkdir()
        assert main(["-C", str(repo_dir), "init"]) == 0
        assert main(["-C", str(repo_dir), "add", "torpor", "one"]) == 0
        assert main(["-C", str(repo_dir), "run", "--all"]) == 0
        assert main(["-C", str(repo_dir), "cache", "repack"]) == 0
        report = diagnose(repo_dir, tmp_age_s=0.0)
        assert "dangling-index-record" not in {
            f.kind for f in report.findings
        }


class TestCliSurface:
    @pytest.fixture
    def repo_dir(self, tmp_path):
        repo = tmp_path / "repo"
        repo.mkdir()
        assert main(["-C", str(repo), "init"]) == 0
        assert main(["-C", str(repo), "add", "torpor", "one"]) == 0
        assert main(["-C", str(repo), "run", "--all"]) == 0
        return repo

    def test_cache_repack_then_stats_report_packs(self, repo_dir, capsys):
        assert main(["-C", str(repo_dir), "cache", "repack"]) == 0
        out = capsys.readouterr().out
        assert "repack:" in out and "pack-" in out
        assert main(["-C", str(repo_dir), "cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "packed:" in out
        assert "dedup ratio incl. pack deltas" in out
        assert main(["-C", str(repo_dir), "cache", "verify"]) == 0

    def test_store_smoke_cli(self, repo_dir, capsys):
        assert main(["-C", str(repo_dir), "run", "--all", "--store-smoke"]) == 0
        out = capsys.readouterr().out
        assert "store smoke:" in out
        assert "publish crash repaired" in out

    def test_default_ci_matrix_includes_the_store_job(self):
        from repro.ci.config import CIConfig
        from repro.core.repo import DEFAULT_TRAVIS

        config = CIConfig.from_yaml(DEFAULT_TRAVIS)
        modes = [env.get("POPPER_RUN_MODE") for env in config.expand_matrix()]
        assert "--store-smoke" in modes
        assert len(modes) == 9
