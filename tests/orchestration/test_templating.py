"""Tests for the template/expression engine."""

import pytest

from repro.common.errors import OrchestrationError
from repro.orchestration.templating import evaluate, render, render_value


class TestRender:
    def test_simple_substitution(self):
        assert render("hello {{ name }}", {"name": "world"}) == "hello world"

    def test_multiple_placeholders(self):
        assert render("{{ a }}+{{ b }}", {"a": 1, "b": 2}) == "1+2"

    def test_dotted_access(self):
        assert render("{{ r.stdout }}", {"r": {"stdout": "out"}}) == "out"

    def test_undefined_raises(self):
        with pytest.raises(OrchestrationError, match="undefined"):
            render("{{ ghost }}", {})

    def test_default_filter(self):
        assert render("{{ ghost | default('x') }}", {}) == "x"
        assert render("{{ name | default('x') }}", {"name": "y"}) == "y"

    def test_bool_rendering(self):
        assert render("{{ flag }}", {"flag": True}) == "true"

    def test_no_placeholder_passthrough(self):
        assert render("plain text", {}) == "plain text"


class TestRenderValue:
    def test_sole_placeholder_keeps_type(self):
        assert render_value("{{ n }}", {"n": 4}) == 4
        assert render_value("{{ xs }}", {"xs": [1, 2]}) == [1, 2]

    def test_embedded_placeholder_is_string(self):
        assert render_value("n={{ n }}", {"n": 4}) == "n=4"

    def test_nested_structures(self):
        doc = {"cmd": "run {{ x }}", "list": ["{{ x }}", "lit"]}
        assert render_value(doc, {"x": 9}) == {"cmd": "run 9", "list": [9, "lit"]}

    def test_non_strings_untouched(self):
        assert render_value(42, {}) == 42
        assert render_value(None, {}) is None


class TestEvaluate:
    @pytest.mark.parametrize(
        "expr,variables,expected",
        [
            ("x == 1", {"x": 1}, True),
            ("x != 1", {"x": 1}, False),
            ("x > 3", {"x": 5}, True),
            ("x >= 5", {"x": 5}, True),
            ("x < 3 or x > 4", {"x": 5}, True),
            ("x < 3 and x > 4", {"x": 5}, False),
            ("not flag", {"flag": False}, True),
            ("name == 'node0'", {"name": "node0"}, True),
            ('name == "node0"', {"name": "node1"}, False),
            ("x in xs", {"x": 2, "xs": [1, 2, 3]}, True),
            ("'head' in groups", {"groups": ["head", "workers"]}, True),
            ("ghost is defined", {}, False),
            ("ghost is not defined", {}, True),
            ("x is defined", {"x": 0}, True),
            ("(x > 1) and (x < 10)", {"x": 5}, True),
            ("x | default(7) == 7", {}, True),
            ("xs | length == 2", {"xs": [1, 2]}, True),
            ("s | int > 3", {"s": "5"}, True),
            ("d.k == 'v'", {"d": {"k": "v"}}, True),
            ("xs[1] == 20", {"xs": [10, 20]}, True),
            ("m['a'] == 1", {"m": {"a": 1}}, True),
            ("x == 1.5", {"x": 1.5}, True),
            ("flag == true", {"flag": True}, True),
        ],
    )
    def test_expressions(self, expr, variables, expected):
        assert evaluate(expr, variables) is expected

    def test_undefined_comparison_raises(self):
        with pytest.raises(OrchestrationError):
            evaluate("ghost == 1", {})

    def test_bare_undefined_raises(self):
        with pytest.raises(OrchestrationError):
            evaluate("ghost", {})

    def test_unknown_filter(self):
        with pytest.raises(OrchestrationError, match="unknown filter"):
            evaluate("x | upper", {"x": "a"})

    def test_trailing_garbage(self):
        with pytest.raises(OrchestrationError):
            evaluate("x == 1 garbage", {"x": 1})

    def test_empty_expression(self):
        with pytest.raises(OrchestrationError):
            evaluate("   ", {})
