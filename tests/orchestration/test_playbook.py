"""Tests for inventory, modules and playbook execution."""

import pytest

from repro.common.errors import OrchestrationError
from repro.orchestration.connection import ContainerConnection, UnreachableConnection
from repro.orchestration.inventory import Inventory
from repro.orchestration.modules import TaskResult, run_module
from repro.orchestration.playbook import Playbook, PlaybookRunner, Task


def make_inventory(n=3, group="workers"):
    inventory = Inventory()
    for i in range(n):
        inventory.add_host(
            f"node{i}",
            groups=[group] if i else [group, "head"],
            connection=ContainerConnection(name=f"node{i}"),
        )
    return inventory


class TestInventory:
    def test_from_yaml(self):
        inventory = Inventory.from_yaml(
            "hosts:\n"
            "  - name: node0\n"
            "    groups: [head]\n"
            "    vars: {role: master}\n"
            "  - name: node1\n"
            "group_vars:\n"
            "  head: {port: 8080}\n"
        )
        assert [h.name for h in inventory.hosts()] == ["node0", "node1"]
        head = inventory.host("node0")
        merged = inventory.effective_vars(head)
        assert merged["role"] == "master" and merged["port"] == 8080
        assert merged["inventory_hostname"] == "node0"

    def test_duplicate_host_rejected(self):
        inventory = Inventory()
        inventory.add_host("a")
        with pytest.raises(OrchestrationError):
            inventory.add_host("a")

    def test_match_all(self):
        inventory = make_inventory(3)
        assert len(inventory.match("all")) == 3

    def test_match_group(self):
        inventory = make_inventory(3)
        assert [h.name for h in inventory.match("head")] == ["node0"]

    def test_match_union_and_exclusion(self):
        inventory = make_inventory(3)
        names = [h.name for h in inventory.match("workers,!node1")]
        assert names == ["node0", "node2"]

    def test_match_unknown_term(self):
        inventory = make_inventory(1)
        with pytest.raises(OrchestrationError):
            inventory.match("ghosts")

    def test_host_vars_override_group_vars(self):
        inventory = Inventory()
        inventory.add_host("a", groups=["g"], variables={"x": 1})
        inventory.set_group_vars("g", {"x": 2, "y": 3})
        merged = inventory.effective_vars(inventory.host("a"))
        assert merged["x"] == 1 and merged["y"] == 3


class TestModules:
    def test_command_captures_output(self):
        conn = ContainerConnection()
        result = run_module("command", conn, {"cmd": "echo hi"})
        assert result.ok and result.data["stdout"] == "hi\n"

    def test_command_failure(self):
        conn = ContainerConnection()
        result = run_module("command", conn, {"cmd": "false"})
        assert result.failed and result.data["rc"] == 1

    def test_copy_idempotent(self):
        conn = ContainerConnection()
        first = run_module("copy", conn, {"dest": "/f", "content": "x"})
        second = run_module("copy", conn, {"dest": "/f", "content": "x"})
        assert first.changed and not second.changed

    def test_copy_from_local_src(self, tmp_path):
        source = tmp_path / "vars.yml"
        source.write_text("n: 1\n")
        conn = ContainerConnection()
        result = run_module("copy", conn, {"dest": "/vars.yml", "src": str(source)})
        assert result.changed
        assert conn.fetch_file("/vars.yml") == b"n: 1\n"

    def test_fetch_to_host_file(self, tmp_path):
        conn = ContainerConnection()
        conn.put_file("/results.csv", b"a,b\n")
        dest = tmp_path / "out" / "results.csv"
        result = run_module("fetch", conn, {"src": "/results.csv", "dest": str(dest)})
        assert result.data["content"] == "a,b\n"
        assert dest.read_bytes() == b"a,b\n"

    def test_fetch_missing(self):
        conn = ContainerConnection()
        assert run_module("fetch", conn, {"src": "/ghost"}).failed

    def test_package_idempotent(self):
        conn = ContainerConnection()
        first = run_module("package", conn, {"name": ["git", "make"]})
        second = run_module("package", conn, {"name": ["git", "make"]})
        assert first.changed and not second.changed

    def test_package_unknown(self):
        conn = ContainerConnection()
        assert run_module("package", conn, {"name": "leftpad"}).failed

    def test_file_states(self):
        conn = ContainerConnection()
        assert run_module("file", conn, {"path": "/f", "state": "touch"}).changed
        assert not run_module("file", conn, {"path": "/f", "state": "touch"}).changed
        assert run_module("file", conn, {"path": "/f", "state": "absent"}).changed
        assert not run_module("file", conn, {"path": "/f", "state": "absent"}).changed

    def test_unknown_module(self):
        with pytest.raises(OrchestrationError):
            run_module("teleport", ContainerConnection(), {})

    def test_facts_include_packages_and_node(self):
        from repro.platform.sites import Site

        node = Site("s", "cloudlab-c220g1", capacity=1).node(0)
        conn = ContainerConnection(node=node, name="n0")
        conn.run("pkg install git")
        facts = conn.facts()
        assert "git" in facts["installed_packages"]
        assert facts["machine"] == "cloudlab-c220g1"
        assert facts["cores"] == 16

    def test_unreachable_connection(self):
        conn = UnreachableConnection("down0")
        with pytest.raises(OrchestrationError):
            conn.run("echo x")


class TestPlaybookExecution:
    def test_end_to_end(self):
        inventory = make_inventory(3)
        playbook = Playbook.from_yaml(
            "- name: setup\n"
            "  hosts: all\n"
            "  vars: {content: payload}\n"
            "  tasks:\n"
            "    - name: install\n"
            "      package: {name: [git]}\n"
            "    - name: write\n"
            "      copy: {dest: /exp/data.txt, content: '{{ content }}'}\n"
            "    - name: check\n"
            "      command: {cmd: cat /exp/data.txt}\n"
            "      register: out\n"
            "    - name: verify\n"
            "      assert:\n"
            "        that: [\"'payload' in out.stdout\"]\n"
        )
        recap = PlaybookRunner(inventory).run(playbook)
        assert recap.ok
        assert all(s.ok == 4 for s in recap.stats.values())

    def test_when_skips(self):
        inventory = make_inventory(3)
        playbook = Playbook.from_yaml(
            "- hosts: all\n"
            "  tasks:\n"
            "    - name: only head\n"
            "      command: {cmd: echo head}\n"
            "      when: inventory_hostname == 'node0'\n"
        )
        recap = PlaybookRunner(inventory).run(playbook)
        results = recap.results_for("only head")
        assert not results["node0"].skipped
        assert results["node1"].skipped and results["node2"].skipped

    def test_failure_stops_host_but_not_others(self):
        inventory = make_inventory(2)
        playbook = Playbook.from_yaml(
            "- hosts: all\n"
            "  tasks:\n"
            "    - name: maybe fail\n"
            "      command: {cmd: false}\n"
            "      when: inventory_hostname == 'node0'\n"
            "    - name: continue\n"
            "      command: {cmd: echo on}\n"
        )
        recap = PlaybookRunner(inventory).run(playbook)
        assert not recap.ok
        assert recap.stats["node0"].failed == 1
        assert recap.stats["node1"].skipped == 1
        assert recap.stats["node1"].ok == 1
        later = recap.results_for("continue")
        assert "node0" not in later and "node1" in later

    def test_ignore_errors_continues(self):
        inventory = make_inventory(1)
        playbook = Playbook.from_yaml(
            "- hosts: all\n"
            "  tasks:\n"
            "    - name: flaky\n"
            "      command: {cmd: false}\n"
            "      ignore_errors: true\n"
            "    - name: after\n"
            "      command: {cmd: echo ok}\n"
        )
        recap = PlaybookRunner(inventory).run(playbook)
        assert recap.ok
        assert "node0" in recap.results_for("after")

    def test_register_feeds_later_tasks(self):
        inventory = make_inventory(1)
        playbook = Playbook.from_yaml(
            "- hosts: all\n"
            "  tasks:\n"
            "    - name: produce\n"
            "      command: {cmd: echo result-value}\n"
            "      register: produced\n"
            "    - name: consume\n"
            "      copy: {dest: /out.txt, content: '{{ produced.stdout }}'}\n"
        )
        recap = PlaybookRunner(inventory).run(playbook)
        assert recap.ok
        conn = inventory.host("node0").connection
        assert b"result-value" in conn.fetch_file("/out.txt")

    def test_loop(self):
        inventory = make_inventory(1)
        playbook = Playbook.from_yaml(
            "- hosts: all\n"
            "  tasks:\n"
            "    - name: touch many\n"
            "      file: {path: '/f{{ item }}', state: touch}\n"
            "      loop: [1, 2, 3]\n"
        )
        recap = PlaybookRunner(inventory).run(playbook)
        assert recap.ok
        conn = inventory.host("node0").connection
        for i in (1, 2, 3):
            assert conn.file_exists(f"/f{i}")

    def test_set_fact_and_facts(self):
        inventory = make_inventory(1)
        playbook = Playbook.from_yaml(
            "- hosts: all\n"
            "  tasks:\n"
            "    - name: remember\n"
            "      set_fact: {answer: 42}\n"
            "    - name: use\n"
            "      assert:\n"
            "        that: ['answer == 42', 'facts.hostname is defined']\n"
        )
        recap = PlaybookRunner(inventory).run(playbook)
        assert recap.ok

    def test_extra_vars_win(self):
        inventory = make_inventory(1)
        playbook = Playbook.from_yaml(
            "- hosts: all\n"
            "  vars: {n: 1}\n"
            "  tasks:\n"
            "    - name: check\n"
            "      assert: {that: ['n == 5']}\n"
        )
        recap = PlaybookRunner(inventory, extra_vars={"n": 5}).run(playbook)
        assert recap.ok

    def test_no_matching_hosts(self):
        inventory = make_inventory(1)
        playbook = Playbook.from_yaml("- hosts: ghosts\n  tasks: []\n")
        with pytest.raises(OrchestrationError):
            PlaybookRunner(inventory).run(playbook)

    def test_task_requires_single_module(self):
        with pytest.raises(OrchestrationError):
            Task.from_dict({"command": "x", "copy": {"dest": "/f"}})

    def test_unknown_module_in_task(self):
        with pytest.raises(OrchestrationError):
            Task.from_dict({"warp": {}})

    def test_unreachable_host_fails_cleanly(self):
        inventory = Inventory()
        inventory.add_host("up", connection=ContainerConnection(name="up"))
        inventory.add_host("down", connection=UnreachableConnection("down"))
        playbook = Playbook.from_yaml(
            "- hosts: all\n"
            "  gather_facts: false\n"
            "  tasks:\n"
            "    - name: ping\n"
            "      command: {cmd: echo pong}\n"
        )
        recap = PlaybookRunner(inventory).run(playbook)
        assert not recap.ok
        assert recap.stats["down"].failed == 1
        assert recap.stats["up"].ok == 1


class TestRetries:
    class FlakyConnection:
        """Fails the first N run() calls, then succeeds."""

        def __init__(self, failures):
            self.remaining = failures
            self.calls = 0

        def run(self, command):
            from repro.container.runtime import ExecResult

            self.calls += 1
            if self.remaining > 0:
                self.remaining -= 1
                return ExecResult(1, stderr="transient failure\n")
            return ExecResult(0, stdout="recovered\n")

        def facts(self):
            return {}

    def _run(self, failures, retries):
        inventory = Inventory()
        conn = self.FlakyConnection(failures)
        inventory.add_host("flaky", connection=conn)
        playbook = Playbook.from_yaml(
            "- hosts: all\n"
            "  gather_facts: false\n"
            "  tasks:\n"
            "    - name: flaky step\n"
            "      command: {cmd: echo try}\n"
            f"      retries: {retries}\n"
        )
        return PlaybookRunner(inventory).run(playbook), conn

    def test_retry_recovers(self):
        recap, conn = self._run(failures=2, retries=3)
        assert recap.ok
        assert conn.calls == 3  # two failures + one success

    def test_retries_exhausted(self):
        recap, conn = self._run(failures=5, retries=2)
        assert not recap.ok
        assert conn.calls == 3  # initial + 2 retries

    def test_no_retries_by_default(self):
        recap, conn = self._run(failures=1, retries=0)
        assert not recap.ok
        assert conn.calls == 1
